#include "core/case_binder.h"

#include <algorithm>

#include "algorithms/discretizer.h"

namespace dmx {

namespace {

// Normalizes a cell for dictionary use: numeric values keep their kind
// (Value's hash/equality unify 3 and 3.0), NULL stays NULL.
bool UsableValue(const Value& v) { return !v.is_null() && !v.is_table(); }

const ModelColumn* FindNestedKey(const ModelColumn& table) {
  for (const ModelColumn& col : table.nested) {
    if (col.is_key()) return &col;
  }
  return nullptr;
}

}  // namespace

AttributeSet CaseBinder::BuildAttributeSet(const ModelDefinition& def) {
  AttributeSet attrs;
  for (const ModelColumn& col : def.columns) {
    switch (col.role) {
      case ContentRole::kKey:
      case ContentRole::kQualifier:
        break;
      case ContentRole::kAttribute:
      case ContentRole::kRelation: {
        Attribute attr;
        attr.name = col.name;
        attr.declared_type = col.role == ContentRole::kRelation
                                 ? AttributeType::kDiscrete
                                 : col.attr_type;
        attr.hint = col.distribution;
        attr.existence_only = col.model_existence_only;
        attr.is_input = col.is_input();
        attr.is_output = col.is_output();
        attr.is_continuous =
            !attr.existence_only &&
            (attr.declared_type == AttributeType::kContinuous ||
             attr.declared_type == AttributeType::kSequenceTime);
        if (attr.existence_only) {
          attr.InternCategory(Value::Bool(false));
          attr.InternCategory(Value::Bool(true));
        }
        if (attr.declared_type == AttributeType::kDiscretized) {
          attr.discretization = col.discretization;
          attr.requested_buckets = col.discretization_buckets;
        }
        attrs.attributes.push_back(std::move(attr));
        break;
      }
      case ContentRole::kTable: {
        NestedGroup group;
        group.name = col.name;
        group.is_input = col.is_input();
        group.is_output = col.is_output();
        for (const ModelColumn& nested : col.nested) {
          if (nested.role == ContentRole::kAttribute) {
            if (nested.attr_type == AttributeType::kSequenceTime) {
              group.sequence_time_value =
                  static_cast<int>(group.value_names.size());
            }
            group.value_names.push_back(nested.name);
          }
        }
        attrs.groups.push_back(std::move(group));
        // Relation-derived group: items are the classifier's values.
        const ModelColumn* key = FindNestedKey(col);
        for (const ModelColumn& nested : col.nested) {
          if (nested.role == ContentRole::kRelation && key != nullptr &&
              EqualsCi(nested.related_to, key->name)) {
            NestedGroup derived;
            derived.name = col.name + "." + nested.name;
            derived.is_input = col.is_input();
            derived.is_output = false;
            attrs.groups.push_back(std::move(derived));
          }
        }
        break;
      }
    }
  }
  return attrs;
}

Status CaseBinder::BindScalarSource(const Schema& source,
                                    const std::string& source_name,
                                    ScalarBinding* binding) {
  int idx = source.FindColumn(source_name);
  if (idx < 0) {
    return BindError() << "model column '" << binding->spec->name
                       << "' maps to source column '" << source_name
                       << "', which does not exist (source: "
                       << source.ToString() << ")";
  }
  binding->source_column = idx;
  return Status::OK();
}

Result<CaseBinder> CaseBinder::CreateForTraining(
    const ModelDefinition& def, const Schema& source,
    const std::vector<InsertColumn>* mapping) {
  CaseBinder binder;
  AttributeSet skeleton = BuildAttributeSet(def);
  binder.attribute_count_ = skeleton.attributes.size();
  binder.group_count_ = skeleton.groups.size();

  auto mapped = [&](const std::string& name,
                    const InsertColumn** entry) -> bool {
    if (mapping == nullptr) return true;
    for (const InsertColumn& col : *mapping) {
      if (EqualsCi(col.name, name)) {
        if (entry != nullptr) *entry = &col;
        return true;
      }
    }
    return false;
  };
  auto nested_mapped = [](const InsertColumn* entry,
                          const std::string& name) -> bool {
    if (entry == nullptr || entry->nested.empty()) return true;
    for (const std::string& nested : entry->nested) {
      if (EqualsCi(nested, name)) return true;
    }
    return false;
  };

  bool bound_any = false;
  for (const ModelColumn& col : def.columns) {
    const InsertColumn* entry = nullptr;
    switch (col.role) {
      case ContentRole::kKey: {
        if (!mapped(col.name, &entry)) break;
        int idx = source.FindColumn(col.name);
        if (idx < 0 && mapping != nullptr) {
          return BindError() << "key column '" << col.name
                             << "' is missing from the source rowset";
        }
        binder.key_source_column_ = idx;
        if (idx >= 0) bound_any = true;
        break;
      }
      case ContentRole::kAttribute:
      case ContentRole::kRelation: {
        ScalarBinding binding;
        binding.spec = &col;
        binding.attribute = skeleton.FindAttribute(col.name);
        if (mapped(col.name, &entry)) {
          int idx = source.FindColumn(col.name);
          if (idx < 0 && mapping != nullptr) {
            return BindError() << "model column '" << col.name
                               << "' is listed in the INSERT column list but "
                                  "missing from the source rowset (source: "
                               << source.ToString() << ")";
          }
          binding.source_column = idx;
          if (idx >= 0) bound_any = true;
        }
        binder.scalars_.push_back(binding);
        break;
      }
      case ContentRole::kQualifier: {
        if (!mapped(col.name, &entry)) break;
        int idx = source.FindColumn(col.name);
        if (idx < 0) break;  // Qualifier columns are optional in the source.
        if (col.qualifier == QualifierKind::kSupport) {
          binder.weight_column_ = idx;
        }
        // PROBABILITY OF is wired to its target after the scalar loop.
        break;
      }
      case ContentRole::kTable: {
        GroupBinding binding;
        binding.spec = &col;
        binding.group = skeleton.FindGroup(col.name);
        if (mapped(col.name, &entry)) {
          int idx = source.FindColumn(col.name);
          if (idx < 0 && mapping != nullptr) {
            return BindError() << "nested table column '" << col.name
                               << "' is missing from the source rowset";
          }
          if (idx >= 0) {
            const ColumnDef& source_col = source.column(idx);
            if (source_col.type != DataType::kTable ||
                source_col.nested == nullptr) {
              return BindError() << "model column '" << col.name
                                 << "' is a TABLE but source column '"
                                 << source_col.name << "' is "
                                 << DataTypeToString(source_col.type);
            }
            binding.source_column = idx;
            bound_any = true;
            const Schema& nested_schema = *source_col.nested;
            const ModelColumn* key = FindNestedKey(col);
            for (const ModelColumn& nested : col.nested) {
              if (!nested_mapped(entry, nested.name) &&
                  !nested.is_key()) {
                continue;
              }
              int nested_idx = nested_schema.FindColumn(nested.name);
              if (nested.is_key()) {
                if (nested_idx < 0) {
                  return BindError()
                         << "nested key '" << nested.name
                         << "' of table '" << col.name
                         << "' is missing from the source nested schema ("
                         << nested_schema.ToString() << ")";
                }
                binding.key_nested_column = nested_idx;
              } else if (nested.role == ContentRole::kAttribute) {
                binding.value_nested_columns.push_back(nested_idx);
              } else if (nested.role == ContentRole::kRelation &&
                         key != nullptr &&
                         EqualsCi(nested.related_to, key->name)) {
                binding.relation_nested_column = nested_idx;
                binding.derived_group =
                    skeleton.FindGroup(col.name + "." + nested.name);
              }
            }
            // Align value columns with NestedGroup::value_names: the loop
            // above appends in model order but may skip unmapped columns;
            // rebuild aligned (missing -> -1).
            const NestedGroup& group = skeleton.groups[binding.group];
            std::vector<int> aligned(group.value_names.size(), -1);
            size_t v = 0;
            for (const ModelColumn& nested : col.nested) {
              if (nested.role != ContentRole::kAttribute) continue;
              if (nested_mapped(entry, nested.name)) {
                aligned[v] = nested_schema.FindColumn(nested.name);
              }
              ++v;
            }
            binding.value_nested_columns = std::move(aligned);
          }
        }
        binder.groups_.push_back(binding);
        break;
      }
    }
  }
  // Wire PROBABILITY OF qualifiers to their target attribute bindings.
  for (const ModelColumn& col : def.columns) {
    if (col.role != ContentRole::kQualifier ||
        col.qualifier != QualifierKind::kProbability) {
      continue;
    }
    if (mapping != nullptr && !mapped(col.name, nullptr)) continue;
    int idx = source.FindColumn(col.name);
    if (idx < 0) continue;
    for (ScalarBinding& binding : binder.scalars_) {
      if (EqualsCi(binding.spec->name, col.related_to)) {
        binding.probability_column = idx;
      }
    }
  }
  if (!bound_any) {
    return BindError() << "no model column of '" << def.model_name
                       << "' matches the source rowset (" << source.ToString()
                       << ")";
  }
  return binder;
}

Result<CaseBinder> CaseBinder::CreateForPrediction(
    const ModelDefinition& def, const Schema& source,
    const std::string& source_alias, const std::vector<OnPair>* on) {
  if (on == nullptr) {
    // NATURAL: bind by name, outputs included when present (PREDICT columns
    // are inputs too), nothing mandatory.
    return CreateForTraining(def, source, nullptr);
  }
  CaseBinder binder;
  AttributeSet skeleton = BuildAttributeSet(def);
  binder.attribute_count_ = skeleton.attributes.size();
  binder.group_count_ = skeleton.groups.size();
  // Start with everything unbound.
  for (const ModelColumn& col : def.columns) {
    if (col.role == ContentRole::kAttribute ||
        col.role == ContentRole::kRelation) {
      ScalarBinding binding;
      binding.spec = &col;
      binding.attribute = skeleton.FindAttribute(col.name);
      binder.scalars_.push_back(binding);
    } else if (col.role == ContentRole::kTable) {
      GroupBinding binding;
      binding.spec = &col;
      binding.group = skeleton.FindGroup(col.name);
      const NestedGroup& group = skeleton.groups[binding.group];
      binding.value_nested_columns.assign(group.value_names.size(), -1);
      binder.groups_.push_back(binding);
    } else if (col.role == ContentRole::kKey) {
      binder.key_source_column_ = source.FindColumn(col.name);
    }
  }

  for (const OnPair& pair : *on) {
    // Classify: the side whose first segment is the model name is the model
    // path.
    const std::vector<std::string>* model_path = nullptr;
    const std::vector<std::string>* source_path = nullptr;
    if (!pair.left.empty() && EqualsCi(pair.left[0], def.model_name)) {
      model_path = &pair.left;
      source_path = &pair.right;
    } else if (!pair.right.empty() &&
               EqualsCi(pair.right[0], def.model_name)) {
      model_path = &pair.right;
      source_path = &pair.left;
    } else {
      return BindError() << "ON condition has no side starting with model '"
                         << def.model_name << "'";
    }
    std::vector<std::string> model_rest(model_path->begin() + 1,
                                        model_path->end());
    std::vector<std::string> source_rest = *source_path;
    if (!source_rest.empty() && !source_alias.empty() &&
        EqualsCi(source_rest[0], source_alias)) {
      source_rest.erase(source_rest.begin());
    }
    if (model_rest.empty() || source_rest.empty()) {
      return BindError() << "incomplete ON path";
    }

    if (model_rest.size() == 1) {
      // Scalar model column.
      bool found = false;
      for (ScalarBinding& binding : binder.scalars_) {
        if (!EqualsCi(binding.spec->name, model_rest[0])) continue;
        if (source_rest.size() != 1) {
          return BindError() << "scalar model column '" << model_rest[0]
                             << "' joined to a nested source path";
        }
        DMX_RETURN_IF_ERROR(
            BindScalarSource(source, source_rest[0], &binding));
        found = true;
      }
      if (!found) {
        return BindError() << "model '" << def.model_name
                           << "' has no attribute column '" << model_rest[0]
                           << "'";
      }
      continue;
    }
    if (model_rest.size() == 2) {
      // Nested: [Table].[Column].
      bool found = false;
      for (GroupBinding& binding : binder.groups_) {
        if (!EqualsCi(binding.spec->name, model_rest[0])) continue;
        found = true;
        if (source_rest.size() != 2) {
          return BindError() << "nested model path '" << model_rest[0] << "."
                             << model_rest[1]
                             << "' joined to a non-nested source path";
        }
        int table_idx = source.FindColumn(source_rest[0]);
        if (table_idx < 0 ||
            source.column(table_idx).type != DataType::kTable) {
          return BindError() << "source column '" << source_rest[0]
                             << "' is not a nested table";
        }
        if (binding.source_column >= 0 && binding.source_column != table_idx) {
          return BindError() << "nested table '" << model_rest[0]
                             << "' joined to two different source tables";
        }
        binding.source_column = table_idx;
        const Schema& nested_schema = *source.column(table_idx).nested;
        int nested_idx = nested_schema.FindColumn(source_rest[1]);
        if (nested_idx < 0) {
          return BindError() << "source nested column '" << source_rest[1]
                             << "' does not exist";
        }
        // Which nested model column is it?
        const ModelColumn* key = FindNestedKey(*binding.spec);
        bool matched = false;
        size_t value_pos = 0;
        for (const ModelColumn& nested : binding.spec->nested) {
          if (EqualsCi(nested.name, model_rest[1])) {
            matched = true;
            if (nested.is_key()) {
              binding.key_nested_column = nested_idx;
            } else if (nested.role == ContentRole::kAttribute) {
              binding.value_nested_columns[value_pos] = nested_idx;
            } else if (nested.role == ContentRole::kRelation && key != nullptr &&
                       EqualsCi(nested.related_to, key->name)) {
              binding.relation_nested_column = nested_idx;
              binding.derived_group = skeleton.FindGroup(
                  binding.spec->name + "." + nested.name);
            }
            break;
          }
          if (nested.role == ContentRole::kAttribute) ++value_pos;
        }
        if (!matched) {
          return BindError() << "nested table '" << model_rest[0]
                             << "' has no column '" << model_rest[1] << "'";
        }
      }
      if (!found) {
        return BindError() << "model '" << def.model_name
                           << "' has no nested table '" << model_rest[0]
                           << "'";
      }
      continue;
    }
    return BindError() << "ON paths may have at most two segments after the "
                          "model name";
  }
  return binder;
}

Status CaseBinder::CollectStatistics(const Row& row, AttributeSet* attrs) {
  for (const ScalarBinding& binding : scalars_) {
    if (binding.source_column < 0) continue;
    const Value& v = row[binding.source_column];
    if (!UsableValue(v)) continue;
    Attribute& attr = attrs->attributes[binding.attribute];
    if (attr.existence_only) continue;
    if (attr.is_discretized()) {
      // Bounds are computed once; afterwards sampling would only leak.
      if (attr.bucket_bounds.empty()) {
        auto d = v.AsDouble();
        if (d.ok()) samples_[binding.attribute].push_back(*d);
      }
    } else if (!attr.is_continuous) {
      attr.InternCategory(v);
    }
  }
  for (const GroupBinding& binding : groups_) {
    if (binding.source_column < 0 || binding.key_nested_column < 0) continue;
    const Value& cell = row[binding.source_column];
    if (!cell.is_table() || cell.table_value() == nullptr) continue;
    NestedGroup& group = attrs->groups[binding.group];
    for (const Row& nested : cell.table_value()->rows()) {
      const Value& key = nested[binding.key_nested_column];
      if (UsableValue(key)) group.InternKey(key);
      if (binding.relation_nested_column >= 0 && binding.derived_group >= 0) {
        const Value& relation = nested[binding.relation_nested_column];
        if (UsableValue(relation)) {
          attrs->groups[binding.derived_group].InternKey(relation);
        }
      }
    }
  }
  return Status::OK();
}

Status CaseBinder::FinalizeStatistics(AttributeSet* attrs,
                                      bool first_training) {
  for (auto& [attribute, samples] : samples_) {
    Attribute& attr = attrs->attributes[attribute];
    if (!attr.bucket_bounds.empty()) continue;  // Bounds are fixed forever.
    DMX_ASSIGN_OR_RETURN(
        attr.bucket_bounds,
        ComputeBucketBounds(std::move(samples), attr.discretization,
                            attr.requested_buckets));
  }
  samples_.clear();
  if (first_training) {
    for (Attribute& attr : attrs->attributes) {
      if (attr.declared_type != AttributeType::kOrdered &&
          attr.declared_type != AttributeType::kCyclical) {
        continue;
      }
      std::sort(attr.categories.begin(), attr.categories.end(),
                [](const Value& a, const Value& b) {
                  return a.Compare(b) < 0;
                });
      attr.category_index.clear();
      for (size_t i = 0; i < attr.categories.size(); ++i) {
        attr.category_index.emplace(attr.categories[i], static_cast<int>(i));
      }
    }
  }
  return Status::OK();
}

Status CaseBinder::BindCaseIntoImpl(const Row& row, const AttributeSet& attrs,
                                    AttributeSet* intern_into,
                                    DataCase* out) const {
  const bool allow_intern = intern_into != nullptr;
  DataCase& c = *out;
  c.values.assign(attribute_count_, kMissing);
  c.weight = 1.0;
  c.confidences.clear();
  // clear() per group keeps the item capacity from the previous case.
  if (c.groups.size() != group_count_) c.groups.resize(group_count_);
  for (auto& group_items : c.groups) group_items.clear();
  if (weight_column_ >= 0 && !row[weight_column_].is_null()) {
    DMX_ASSIGN_OR_RETURN(c.weight, row[weight_column_].AsDouble());
    if (c.weight < 0) {
      return InvalidArgument() << "negative SUPPORT weight " << c.weight;
    }
  }
  for (const ScalarBinding& binding : scalars_) {
    const Attribute& attr = attrs.attributes[binding.attribute];
    const Value* v = binding.source_column >= 0 ? &row[binding.source_column]
                                                : nullptr;
    if (attr.existence_only) {
      c.values[binding.attribute] =
          (v != nullptr && !v->is_null()) ? 1.0 : 0.0;
      continue;
    }
    if (v == nullptr || !UsableValue(*v)) continue;
    if (attr.is_continuous) {
      auto d = v->AsDouble();
      if (d.ok()) c.values[binding.attribute] = *d;
    } else if (attr.is_discretized()) {
      auto d = v->AsDouble();
      if (d.ok()) {
        c.values[binding.attribute] = attr.BucketOf(*d);
      }
    } else {
      int state =
          allow_intern
              ? intern_into->attributes[binding.attribute].InternCategory(*v)
              : attr.LookupCategory(*v);
      if (state >= 0) c.values[binding.attribute] = state;
    }
    if (binding.probability_column >= 0 &&
        !row[binding.probability_column].is_null()) {
      auto p = row[binding.probability_column].AsDouble();
      if (p.ok()) {
        if (c.confidences.empty()) c.confidences.assign(attribute_count_, 1.0);
        c.confidences[binding.attribute] = std::clamp(*p, 0.0, 1.0);
      }
    }
  }
  std::vector<int> derived_items;
  for (const GroupBinding& binding : groups_) {
    if (binding.source_column < 0 || binding.key_nested_column < 0) continue;
    const Value& cell = row[binding.source_column];
    if (!cell.is_table() || cell.table_value() == nullptr) continue;
    const NestedGroup& group = attrs.groups[binding.group];
    derived_items.clear();
    for (const Row& nested : cell.table_value()->rows()) {
      const Value& key = nested[binding.key_nested_column];
      if (!UsableValue(key)) continue;
      int key_index =
          allow_intern ? intern_into->groups[binding.group].InternKey(key)
                       : group.LookupKey(key);
      if (key_index >= 0) {
        CaseItem item;
        item.key = key_index;
        item.values.reserve(binding.value_nested_columns.size());
        for (int col : binding.value_nested_columns) {
          double value = kMissing;
          if (col >= 0 && !nested[col].is_null()) {
            auto d = nested[col].AsDouble();
            if (d.ok()) value = *d;
          }
          item.values.push_back(value);
        }
        c.groups[binding.group].push_back(std::move(item));
      }
      if (binding.relation_nested_column >= 0 && binding.derived_group >= 0) {
        const Value& relation = nested[binding.relation_nested_column];
        if (UsableValue(relation)) {
          int idx = allow_intern
                        ? intern_into->groups[binding.derived_group]
                              .InternKey(relation)
                        : attrs.groups[binding.derived_group]
                              .LookupKey(relation);
          if (idx >= 0) derived_items.push_back(idx);
        }
      }
    }
    if (binding.derived_group >= 0) {
      std::sort(derived_items.begin(), derived_items.end());
      derived_items.erase(
          std::unique(derived_items.begin(), derived_items.end()),
          derived_items.end());
      for (int idx : derived_items) {
        CaseItem item;
        item.key = idx;
        c.groups[binding.derived_group].push_back(std::move(item));
      }
    }
  }
  return Status::OK();
}

}  // namespace dmx
