#include "core/mining_model.h"

#include "common/exec_guard.h"

namespace dmx {

MiningModel::MiningModel(ModelDefinition definition,
                         std::shared_ptr<MiningService> service,
                         ParamMap params)
    : definition_(std::move(definition)),
      service_(std::move(service)),
      params_(std::move(params)),
      attrs_(CaseBinder::BuildAttributeSet(definition_)) {}

Status MiningModel::InsertCases(RowsetReader* reader,
                                const std::vector<InsertColumn>* mapping) {
  DMX_ASSIGN_OR_RETURN(
      CaseBinder binder,
      CaseBinder::CreateForTraining(definition_, *reader->schema(), mapping));

  const bool incremental = service_->capabilities().supports_incremental;
  const bool first_training = !is_trained() && case_cache_.empty();

  if (incremental) {
    Row row;
    DataCase scratch;
    if (trained_ == nullptr) {
      // Bootstrap: buffer a prefix to pin bucket bounds and dictionaries.
      std::vector<Row> bootstrap;
      bootstrap.reserve(kBootstrapCases);
      // dmx-hot-begin(insert-stream)
      while (bootstrap.size() < kBootstrapCases) {
        DMX_RETURN_IF_ERROR(GuardCheck());
        // Next() overwrites the row outright, so the moved-from buffer needs
        // no reset here.
        DMX_ASSIGN_OR_RETURN(bool has, reader->Next(&row));
        if (!has) break;
        DMX_RETURN_IF_ERROR(binder.CollectStatistics(row, &attrs_));
        bootstrap.push_back(std::move(row));
      }
      DMX_RETURN_IF_ERROR(binder.FinalizeStatistics(&attrs_, first_training));
      DMX_RETURN_IF_ERROR(service_->ValidateBinding(attrs_));
      DMX_ASSIGN_OR_RETURN(trained_, service_->CreateEmpty(attrs_, params_));
      for (const Row& buffered : bootstrap) {
        DMX_RETURN_IF_ERROR(binder.BindCaseInto(buffered, &attrs_, &scratch));
        DMX_RETURN_IF_ERROR(trained_->ConsumeCase(attrs_, scratch));
      }
    }
    // Stream the remainder (or, on refresh, the whole caseset) one case at a
    // time — the paper's consumption model; nothing is cached.
    while (true) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      DMX_ASSIGN_OR_RETURN(bool has, reader->Next(&row));
      if (!has) break;
      DMX_RETURN_IF_ERROR(binder.CollectStatistics(row, &attrs_));
      DMX_RETURN_IF_ERROR(binder.BindCaseInto(row, &attrs_, &scratch));
      DMX_RETURN_IF_ERROR(trained_->ConsumeCase(attrs_, scratch));
    }
    // dmx-hot-end(insert-stream)
    return Status::OK();
  }

  // Non-incremental: two passes over the new rows, then retrain on the
  // cached union.
  DMX_ASSIGN_OR_RETURN(Rowset rows, reader->ReadAll());
  // dmx-hot-begin(insert-retrain)
  for (const Row& row : rows.rows()) {
    DMX_RETURN_IF_ERROR(binder.CollectStatistics(row, &attrs_));
  }
  DMX_RETURN_IF_ERROR(binder.FinalizeStatistics(&attrs_, first_training));
  DMX_RETURN_IF_ERROR(service_->ValidateBinding(attrs_));
  case_cache_.reserve(case_cache_.size() + rows.num_rows());
  for (const Row& row : rows.rows()) {
    // The case cache is the dominant memory cost of non-incremental training;
    // each retained case counts against the working-set budget.
    DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(1));
    // The cache owns each bound case for later retraining, so there is no
    // scratch buffer to reuse.
    DMX_ASSIGN_OR_RETURN(DataCase c,  // dmx-lint: allow(hot-loop-alloc)
                         binder.BindCase(row, &attrs_));
    case_cache_.push_back(std::move(c));
  }
  // dmx-hot-end(insert-retrain)
  if (case_cache_.empty()) {
    return InvalidState() << "INSERT INTO '" << definition_.model_name
                          << "' delivered zero cases";
  }
  DMX_ASSIGN_OR_RETURN(trained_, service_->Train(attrs_, case_cache_, params_));
  return Status::OK();
}

Result<CasePrediction> MiningModel::Predict(const DataCase& input,
                                            const PredictOptions& options) const {
  if (trained_ == nullptr) {
    return InvalidState() << "model '" << definition_.model_name
                          << "' has not been trained (INSERT INTO it first)";
  }
  return trained_->Predict(attrs_, input, options);
}

Result<ContentNodePtr> MiningModel::BuildContent() const {
  if (trained_ == nullptr) {
    return InvalidState() << "model '" << definition_.model_name
                          << "' has no content: it has not been trained";
  }
  return trained_->BuildContent(attrs_);
}

Status MiningModel::Reset() {
  trained_.reset();
  case_cache_.clear();
  attrs_ = CaseBinder::BuildAttributeSet(definition_);
  return Status::OK();
}

}  // namespace dmx
