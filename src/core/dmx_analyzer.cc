#include "core/dmx_analyzer.h"

#include <algorithm>

#include "core/catalog.h"
#include "core/dmx_parser.h"
#include "relational/database.h"
#include "relational/sql_parser.h"

namespace dmx {

namespace {

const char* SeverityToString(DiagSeverity severity) {
  return severity == DiagSeverity::kError ? "error" : "warning";
}

/// Collector with the emit helpers all checks share.
class Diagnostics {
 public:
  explicit Diagnostics(std::vector<Diagnostic>* out) : out_(out) {}

  Diagnostic& Error(const char* rule, SourceSpan span, std::string message) {
    return Emit(DiagSeverity::kError, rule, span, std::move(message));
  }
  Diagnostic& Warn(const char* rule, SourceSpan span, std::string message) {
    return Emit(DiagSeverity::kWarning, rule, span, std::move(message));
  }

 private:
  Diagnostic& Emit(DiagSeverity severity, const char* rule, SourceSpan span,
                   std::string message) {
    Diagnostic diag;
    diag.severity = severity;
    diag.rule = rule;
    diag.span = span;
    diag.message = std::move(message);
    out_->push_back(std::move(diag));
    return out_->back();
  }

  std::vector<Diagnostic>* out_;
};

bool IsDiscreteValued(const ModelColumn& col) {
  return col.attr_type == AttributeType::kDiscrete ||
         col.attr_type == AttributeType::kOrdered ||
         col.attr_type == AttributeType::kCyclical ||
         col.attr_type == AttributeType::kDiscretized;
}

bool NeedsNumericType(const ModelColumn& col) {
  return col.attr_type == AttributeType::kContinuous ||
         col.attr_type == AttributeType::kDiscretized ||
         col.attr_type == AttributeType::kSequenceTime;
}

const ModelColumn* FindColumnCi(const std::vector<ModelColumn>& columns,
                                const std::string& name) {
  for (const ModelColumn& col : columns) {
    if (EqualsCi(col.name, name)) return &col;
  }
  return nullptr;
}

std::string LevelName(const ModelColumn* parent) {
  return parent == nullptr ? std::string("the case level")
                           : "nested table '" + parent->name + "'";
}

// ---------------------------------------------------------------------------
// Definition-level checks (the paper's §3.2 column-metadata contract)
// ---------------------------------------------------------------------------

/// Checks one nesting level of a column list. `parent` is the enclosing
/// TABLE column (null at the case level).
void CheckColumnLevel(const std::vector<ModelColumn>& columns,
                      const ModelColumn* parent, const SourceSpan& level_span,
                      Diagnostics* diags) {
  const bool top_level = parent == nullptr;

  // duplicate-column: every repeat after the first is flagged.
  for (size_t i = 0; i < columns.size(); ++i) {
    for (size_t j = 0; j < i; ++j) {
      if (EqualsCi(columns[i].name, columns[j].name)) {
        diags->Error(rules::kDuplicateColumn, columns[i].span,
                     "duplicate column name '" + columns[i].name + "' in " +
                         LevelName(parent))
            .fix_hint = "rename or remove one of the duplicates";
        break;
      }
    }
  }

  // key-count / table-nested-key: exactly one KEY per nesting level.
  int key_count = 0;
  for (const ModelColumn& col : columns) {
    if (col.is_key()) ++key_count;
  }
  if (key_count != 1) {
    const char* rule = top_level ? rules::kKeyCount : rules::kTableNestedKey;
    SourceSpan span = level_span;
    if (key_count > 1) {
      // Point at the second KEY.
      int seen = 0;
      for (const ModelColumn& col : columns) {
        if (col.is_key() && ++seen == 2) {
          span = col.span;
          break;
        }
      }
    }
    diags->Error(rule, span,
                 LevelName(parent) + " needs exactly one KEY column, got " +
                     std::to_string(key_count))
        .fix_hint = key_count == 0
                        ? "mark the row-identifying column KEY"
                        : "keep one KEY and make the others attributes";
  }

  // duplicate-qualifier: at most one qualifier of each kind per target
  // column. The second PROBABILITY OF x (say) could only shadow or disagree
  // with the first, so every repeat is flagged.
  for (size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].role != ContentRole::kQualifier) continue;
    for (size_t j = 0; j < i; ++j) {
      if (columns[j].role == ContentRole::kQualifier &&
          columns[j].qualifier == columns[i].qualifier &&
          EqualsCi(columns[j].related_to, columns[i].related_to)) {
        diags->Error(rules::kDuplicateQualifier, columns[i].span,
                     std::string(QualifierKindToString(columns[i].qualifier)) +
                         " OF '" + columns[i].related_to +
                         "' is already declared by column '" +
                         columns[j].name + "'; '" + columns[i].name +
                         "' duplicates it")
            .fix_hint = "keep one qualifier of each kind per target column";
        break;
      }
    }
  }

  const ModelColumn* sequence_time = nullptr;
  for (const ModelColumn& col : columns) {
    switch (col.role) {
      case ContentRole::kKey:
        if (col.is_output()) {
          diags->Error(rules::kKeyPredict, col.span,
                       "KEY column '" + col.name + "' cannot be PREDICT")
              .fix_hint = "keys identify cases; predict an attribute instead";
        }
        break;

      case ContentRole::kAttribute:
        if (NeedsNumericType(col) && col.data_type == DataType::kText) {
          diags->Error(rules::kNumericAttribute, col.span,
                       std::string("a ") + AttributeTypeToString(col.attr_type) +
                           " attribute must have a numeric data type, but '" +
                           col.name + "' is TEXT")
              .fix_hint = "declare the column LONG or DOUBLE";
        }
        break;

      case ContentRole::kRelation: {
        const ModelColumn* target = FindColumnCi(columns, col.related_to);
        if (target == nullptr) {
          diags->Error(rules::kRelatedToTarget, col.span,
                       "RELATED TO target '" + col.related_to +
                           "' of column '" + col.name +
                           "' is not a column at the same level")
              .fix_hint = "RELATED TO must name a sibling column";
        } else if (target->role == ContentRole::kTable) {
          diags->Error(rules::kRelatedToTarget, col.span,
                       "RELATED TO target '" + col.related_to +
                           "' cannot be a TABLE column");
        } else if (target->role == ContentRole::kAttribute &&
                   !IsDiscreteValued(*target)) {
          diags->Error(rules::kRelatedToTarget, col.span,
                       "RELATED TO target '" + col.related_to +
                           "' must be a discrete-valued column or a KEY, not " +
                           AttributeTypeToString(target->attr_type))
              .fix_hint = "classifications relate discrete columns";
        }
        break;
      }

      case ContentRole::kQualifier: {
        const ModelColumn* target = FindColumnCi(columns, col.related_to);
        if (target == nullptr) {
          diags->Error(rules::kQualifierTarget, col.span,
                       "qualifier '" + col.name + "' modifies '" +
                           col.related_to +
                           "', which is not a column at the same level")
              .fix_hint = "the OF clause must name a sibling column";
        } else if (target->role != ContentRole::kAttribute &&
                   target->role != ContentRole::kKey) {
          diags->Error(rules::kQualifierTarget, col.span,
                       "qualifier '" + col.name +
                           "' must modify an attribute or KEY column, but '" +
                           col.related_to + "' is a " +
                           ContentRoleToString(target->role) + " column");
        } else if (!target->is_output() &&
                   (col.qualifier == QualifierKind::kProbability ||
                    col.qualifier == QualifierKind::kVariance ||
                    col.qualifier == QualifierKind::kProbabilityVariance)) {
          diags->Warn(rules::kQualifierOfInput, col.span,
                      std::string(QualifierKindToString(col.qualifier)) +
                          " OF qualifies a prediction statistic, but '" +
                          col.related_to + "' is not a PREDICT column")
              .fix_hint = "mark '" + col.related_to +
                          "' PREDICT, or drop the qualifier";
        }
        if (col.data_type == DataType::kText ||
            col.data_type == DataType::kTable) {
          diags->Error(rules::kNumericAttribute, col.span,
                       "qualifier '" + col.name +
                           "' must have a numeric data type")
              .fix_hint = "declare the column LONG or DOUBLE";
        }
        break;
      }

      case ContentRole::kTable: {
        if (!top_level) {
          diags->Error(rules::kNestingDepth, col.span,
                       "nested table '" + col.name +
                           "' inside a nested table: only one level of "
                           "nesting is supported")
              .fix_hint = "flatten the inner table into its parent";
          break;
        }
        if (col.nested.empty()) {
          diags->Error(rules::kTableNestedKey, col.span,
                       "TABLE column '" + col.name +
                           "' has no nested columns; it needs at least a "
                           "nested KEY")
              .fix_hint = "declare the nested row's KEY column";
          break;
        }
        bool has_non_key = false;
        for (const ModelColumn& nested : col.nested) {
          if (!nested.is_key()) has_non_key = true;
        }
        if (!has_non_key && !col.is_output()) {
          diags->Warn(rules::kUnusedColumn, col.span,
                      "nested table '" + col.name +
                          "' contains only its KEY and is not PREDICT; it "
                          "contributes nothing to the model")
              .fix_hint = "add nested attributes, mark the table PREDICT, or "
                          "drop it";
        }
        CheckColumnLevel(col.nested, &col, col.span, diags);
        break;
      }
    }

    // Distribution hints describe continuous densities (paper §3.2.3).
    if (col.distribution != DistributionHint::kNone &&
        (col.role != ContentRole::kAttribute ||
         col.attr_type != AttributeType::kContinuous)) {
      diags->Error(rules::kDistributionContinuous, col.span,
                   std::string("distribution hint ") +
                       DistributionHintToString(col.distribution) +
                       " on column '" + col.name +
                       "' is only meaningful for CONTINUOUS attributes")
          .fix_hint = "declare the column CONTINUOUS or drop the hint";
    }

    // SEQUENCE_TIME ordering constraints.
    if (col.role == ContentRole::kAttribute &&
        col.attr_type == AttributeType::kSequenceTime) {
      if (sequence_time != nullptr) {
        diags->Error(rules::kSequenceTime, col.span,
                     "more than one SEQUENCE_TIME column in " +
                         LevelName(parent) + " ('" + sequence_time->name +
                         "' and '" + col.name +
                         "'); rows can only be ordered by one clock")
            .fix_hint = "keep a single SEQUENCE_TIME column per table";
      }
      sequence_time = &col;
      if (col.is_output()) {
        diags->Error(rules::kSequenceTime, col.span,
                     "SEQUENCE_TIME column '" + col.name +
                         "' cannot be PREDICT: it orders the rows the "
                         "prediction is computed from")
            .fix_hint = "predict the sequenced attribute, not its clock";
      }
      if (top_level) {
        diags->Warn(rules::kSequenceTimeCaseLevel, col.span,
                    "SEQUENCE_TIME column '" + col.name +
                        "' at the case level has no effect: sequence "
                        "ordering applies to nested-table rows")
            .fix_hint = "move the column into the nested table it orders";
      }
    }
  }
}

bool HasOutputColumn(const std::vector<ModelColumn>& columns) {
  for (const ModelColumn& col : columns) {
    if (col.is_output()) return true;
    if (col.is_table() && HasOutputColumn(col.nested)) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Statement-level checks
// ---------------------------------------------------------------------------

std::string JoinColumnNames(const std::vector<ModelColumn>& columns) {
  std::string out;
  for (const ModelColumn& col : columns) {
    if (!out.empty()) out += ", ";
    out += col.name;
  }
  return out;
}

/// Resolves `name` against the catalog; emits unknown-model when absent.
/// Returns null (without a diagnostic) when no catalog was provided.
const MiningModel* ResolveModel(const AnalyzerContext& context,
                                const std::string& name, SourceSpan span,
                                Diagnostics* diags) {
  if (context.catalog == nullptr) return nullptr;
  auto model = context.catalog->GetModel(name);
  if (!model.ok()) {
    diags->Error(rules::kUnknownModel, span,
                 "mining model '" + name + "' does not exist")
        .fix_hint = "CREATE MINING MODEL it first (\\models lists the "
                    "catalog)";
    return nullptr;
  }
  return *model;
}

void CheckInsertInto(const InsertIntoStatement& stmt,
                     const AnalyzerContext& context, Diagnostics* diags) {
  const MiningModel* model =
      ResolveModel(context, stmt.model_name, stmt.model_span, diags);
  if (model == nullptr || stmt.columns.empty()) return;
  const ModelDefinition& def = model->definition();

  for (const InsertColumn& col : stmt.columns) {
    const ModelColumn* spec = FindColumnCi(def.columns, col.name);
    if (spec == nullptr) {
      diags->Error(rules::kUnknownColumn, col.span,
                   "model '" + def.model_name + "' has no column '" +
                       col.name + "'")
          .fix_hint = "model columns are: " + JoinColumnNames(def.columns);
      continue;
    }
    if (col.is_table != spec->is_table()) {
      diags->Error(rules::kUnknownColumn, col.span,
                   col.is_table
                       ? "column '" + col.name + "' is not a TABLE column"
                       : "TABLE column '" + col.name +
                             "' needs a nested column list");
      continue;
    }
    for (const std::string& nested : col.nested) {
      if (FindColumnCi(spec->nested, nested) == nullptr) {
        diags->Error(rules::kUnknownColumn, col.span,
                     "nested table '" + col.name + "' has no column '" +
                         nested + "'")
            .fix_hint = "nested columns are: " + JoinColumnNames(spec->nested);
      }
    }
  }

  // unused-column: trainable model columns the explicit list leaves out.
  for (const ModelColumn& spec : def.columns) {
    if (spec.is_key()) continue;  // The key is bound implicitly.
    bool mapped = false;
    for (const InsertColumn& col : stmt.columns) {
      if (EqualsCi(col.name, spec.name)) mapped = true;
    }
    if (!mapped) {
      diags->Warn(rules::kUnusedColumn, stmt.model_span,
                  "model column '" + spec.name +
                      "' is not populated by this INSERT; it will train as "
                      "missing")
          .fix_hint = "add it to the column list or drop it from the model";
    }
  }
}

/// Flags column-path expressions that are explicitly rooted at the model but
/// do not resolve to a model column.
void CheckModelPathExpr(const DmxExpr& expr, const ModelDefinition& def,
                        Diagnostics* diags) {
  if (expr.kind == DmxExpr::Kind::kFunction) {
    for (const DmxExpr& arg : expr.args) {
      CheckModelPathExpr(arg, def, diags);
    }
    return;
  }
  if (expr.kind != DmxExpr::Kind::kColumnPath || expr.path.size() < 2) return;
  if (!EqualsCi(expr.path[0], def.model_name)) return;
  const ModelColumn* col = FindColumnCi(def.columns, expr.path[1]);
  if (col == nullptr) {
    diags->Error(rules::kUnknownColumn, expr.span,
                 "model '" + def.model_name + "' has no column '" +
                     expr.path[1] + "'")
        .fix_hint = "model columns are: " + JoinColumnNames(def.columns);
  } else if (expr.path.size() > 2 && col->is_table() &&
             FindColumnCi(col->nested, expr.path[2]) == nullptr) {
    diags->Error(rules::kUnknownColumn, expr.span,
                 "nested table '" + col->name + "' has no column '" +
                     expr.path[2] + "'")
        .fix_hint = "nested columns are: " + JoinColumnNames(col->nested);
  }
}

void CheckPredictionJoin(const PredictionJoinStatement& stmt,
                         const AnalyzerContext& context, Diagnostics* diags) {
  const MiningModel* model =
      ResolveModel(context, stmt.model_name, stmt.model_span, diags);
  if (model == nullptr) return;
  const ModelDefinition& def = model->definition();

  // predict-presence: a prediction join against a model with no outputs can
  // never produce a prediction — except for segmentation services, whose
  // Cluster()-style UDFs predict membership without declared outputs.
  if (!HasOutputColumn(def.columns) &&
      !model->service().capabilities().is_segmentation) {
    diags->Error(rules::kPredictPresence, stmt.model_span,
                 "model '" + def.model_name +
                     "' has no PREDICT column; a PREDICTION JOIN against it "
                     "cannot predict anything")
        .fix_hint = "recreate the model with PREDICT / PREDICT_ONLY columns";
  }

  // shadowed-alias: the source alias hiding the model (or one of its
  // columns) makes unqualified references ambiguous to readers.
  if (!stmt.source_alias.empty()) {
    if (EqualsCi(stmt.source_alias, def.model_name)) {
      diags->Warn(rules::kShadowedAlias, stmt.alias_span,
                  "source alias '" + stmt.source_alias +
                      "' shadows the model name")
          .fix_hint = "pick a distinct alias (e.g. AS t)";
    } else if (FindColumnCi(def.columns, stmt.source_alias) != nullptr) {
      diags->Warn(rules::kShadowedAlias, stmt.alias_span,
                  "source alias '" + stmt.source_alias +
                      "' shadows model column '" + stmt.source_alias + "'")
          .fix_hint = "pick an alias that is not a model column name";
    }
  }

  for (const DmxSelectItem& item : stmt.items) {
    CheckModelPathExpr(item.expr, def, diags);
  }
  for (const DmxFilter& filter : stmt.where) {
    CheckModelPathExpr(filter.lhs, def, diags);
    CheckModelPathExpr(filter.rhs, def, diags);
  }
  for (const OnPair& pair : stmt.on) {
    for (const std::vector<std::string>* side : {&pair.left, &pair.right}) {
      if (side->size() < 2 || !EqualsCi((*side)[0], def.model_name)) continue;
      DmxExpr as_expr;
      as_expr.kind = DmxExpr::Kind::kColumnPath;
      as_expr.path = *side;
      as_expr.span = stmt.model_span;
      CheckModelPathExpr(as_expr, def, diags);

      // predict-input: binding a PREDICT column from the source means the
      // statement supplies the very value it asks the model to predict —
      // usually a copy-paste of the training column list. A RELATED TO
      // column depending on the target legitimizes it (the known value
      // conditions its dependents), as does plain PREDICT usage when the
      // caller wants the input treated as evidence.
      if (side->size() != 2) continue;
      const ModelColumn* bound = FindColumnCi(def.columns, (*side)[1]);
      if (bound == nullptr || !bound->is_output()) continue;
      bool related_covers = false;
      for (const ModelColumn& other : def.columns) {
        if (other.role == ContentRole::kRelation &&
            EqualsCi(other.related_to, bound->name)) {
          related_covers = true;
          break;
        }
      }
      if (!related_covers) {
        diags->Warn(rules::kPredictInput, stmt.model_span,
                    "ON binds PREDICT column '" + bound->name +
                        "' from the source: the join supplies the value the "
                        "model is asked to predict")
            .fix_hint = "drop '" + bound->name +
                        "' from ON (read it with Predict(...)), or add a "
                        "RELATED TO column if feeding it back is intended";
      }
    }
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Diagnostic / AnalysisReport rendering
// ---------------------------------------------------------------------------

std::string Diagnostic::ToString(std::string_view source) const {
  std::string out = SeverityToString(severity);
  out += " [";
  out += rule;
  out += "]";
  std::string at = FormatSpan(source, span);
  if (!at.empty()) {
    out += " at ";
    out += at;
  }
  out += ": ";
  out += message;
  if (!fix_hint.empty()) {
    out += "  (hint: ";
    out += fix_hint;
    out += ")";
  }
  return out;
}

size_t AnalysisReport::error_count() const {
  return static_cast<size_t>(
      std::count_if(diagnostics.begin(), diagnostics.end(),
                    [](const Diagnostic& d) {
                      return d.severity == DiagSeverity::kError;
                    }));
}

size_t AnalysisReport::warning_count() const {
  return diagnostics.size() - error_count();
}

bool AnalysisReport::HasRule(std::string_view rule) const {
  return std::any_of(
      diagnostics.begin(), diagnostics.end(),
      [rule](const Diagnostic& d) { return d.rule == rule; });
}

std::string AnalysisReport::ToString(std::string_view source) const {
  if (diagnostics.empty()) return "no issues found\n";
  std::string out;
  for (const Diagnostic& diag : diagnostics) {
    out += diag.ToString(source);
    out += '\n';
  }
  out += std::to_string(error_count()) + " error(s), " +
         std::to_string(warning_count()) + " warning(s)\n";
  return out;
}

Status AnalysisReport::ToStatus(std::string_view source) const {
  if (ok()) return Status::OK();
  return InvalidArgument() << ToString(source);
}

// ---------------------------------------------------------------------------
// DmxAnalyzer entry points
// ---------------------------------------------------------------------------

AnalysisReport DmxAnalyzer::AnalyzeDefinition(const ModelDefinition& def) const {
  AnalysisReport report;
  Diagnostics diags(&report.diagnostics);
  if (def.columns.empty()) {
    diags.Error(rules::kKeyCount, def.name_span,
                "mining model '" + def.model_name +
                    "' needs at least one column")
        .fix_hint = "declare a KEY column and the attributes to model";
    return report;
  }
  CheckColumnLevel(def.columns, /*parent=*/nullptr, def.name_span, &diags);
  if (!HasOutputColumn(def.columns)) {
    // Segmentation services legitimately mine models with no declared
    // outputs (Cluster() UDFs), so this only hardens into an error when the
    // service is known to require prediction targets.
    auto service = context_.services != nullptr
                       ? context_.services->Find(def.service_name)
                       : Result<std::shared_ptr<MiningService>>(
                             NotFound() << "no service registry");
    bool segmentation_ok =
        !service.ok() || (*service)->capabilities().is_segmentation;
    std::string message = "mining model '" + def.model_name +
                          "' has no PREDICT column";
    if (segmentation_ok) {
      diags.Warn(rules::kPredictPresence, def.name_span,
                 message + "; only segmentation-style services can mine it")
          .fix_hint = "mark at least one column PREDICT or PREDICT_ONLY";
    } else {
      diags.Error(rules::kPredictPresence, def.name_span,
                  message + ": service '" + def.service_name +
                      "' needs a prediction target")
          .fix_hint = "mark at least one column PREDICT or PREDICT_ONLY";
    }
  }
  if (context_.services != nullptr &&
      !context_.services->Find(def.service_name).ok()) {
    diags.Error(rules::kUnknownService, def.service_span,
                "unknown mining service '" + def.service_name + "'")
        .fix_hint = "\\services lists the installed services";
  }
  return report;
}

AnalysisReport DmxAnalyzer::AnalyzeStatement(const DmxStatement& statement) const {
  AnalysisReport report;
  Diagnostics diags(&report.diagnostics);

  if (const auto* create = std::get_if<CreateModelStatement>(&statement)) {
    return AnalyzeDefinition(create->definition);
  }
  if (const auto* insert = std::get_if<InsertIntoStatement>(&statement)) {
    CheckInsertInto(*insert, context_, &diags);
  } else if (const auto* join =
                 std::get_if<PredictionJoinStatement>(&statement)) {
    return AnalyzePredictionJoin(*join);
  } else if (const auto* content =
                 std::get_if<SelectContentStatement>(&statement)) {
    ResolveModel(context_, content->model_name, content->model_span, &diags);
  } else if (const auto* drop = std::get_if<DropModelStatement>(&statement)) {
    ResolveModel(context_, drop->model_name, drop->model_span, &diags);
  } else if (const auto* del =
                 std::get_if<DeleteFromModelStatement>(&statement)) {
    // DELETE FROM is shared syntax: only flag the name when it is neither a
    // model nor (when a database is available) a base table.
    if (context_.catalog != nullptr &&
        !context_.catalog->HasModel(del->model_name) &&
        (context_.database == nullptr ||
         !context_.database->HasTable(del->model_name))) {
      diags.Error(rules::kUnknownModel, del->model_span,
                  "'" + del->model_name + "' is neither a mining model nor a "
                                          "base table");
    }
  } else if (const auto* export_stmt =
                 std::get_if<ExportModelStatement>(&statement)) {
    ResolveModel(context_, export_stmt->model_name, export_stmt->model_span,
                 &diags);
  }
  // ImportModelStatement: nothing to check before reading the file.
  return report;
}

AnalysisReport DmxAnalyzer::AnalyzePredictionJoin(
    const PredictionJoinStatement& stmt) const {
  AnalysisReport report;
  Diagnostics diags(&report.diagnostics);
  CheckPredictionJoin(stmt, context_, &diags);
  return report;
}

AnalysisReport DmxAnalyzer::AnalyzeText(const std::string& text) const {
  auto parsed = ParseDmx(text);
  AnalysisReport report;
  if (!parsed.ok()) {
    Diagnostic diag;
    diag.severity = DiagSeverity::kError;
    diag.rule = rules::kParseError;
    diag.message = parsed.status().message();
    report.diagnostics.push_back(std::move(diag));
    return report;
  }
  if (parsed->is_sql || !parsed->statement.has_value()) {
    // Plain SQL: the relational binder owns semantic diagnostics, but text
    // that parses as neither DMX nor SQL should not report "no issues".
    auto sql = rel::ParseSql(text);
    if (!sql.ok()) {
      Diagnostic diag;
      diag.severity = DiagSeverity::kError;
      diag.rule = rules::kParseError;
      diag.message = sql.status().message();
      report.diagnostics.push_back(std::move(diag));
    }
    return report;
  }
  return AnalyzeStatement(*parsed->statement);
}

}  // namespace dmx
