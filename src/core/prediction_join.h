// PREDICTION JOIN execution (paper §3.3): joins a caseset against a mining
// model's "truth table" of possible cases — implemented, as the paper's
// logical view licenses, by binding each source case to the model's
// attribute space and computing posteriors — then evaluates the SELECT
// projection (column echoes, predicted values, statistic UDFs, nested-table
// histograms) per case. FLATTENED unnests table-valued projection columns.

#ifndef DMX_CORE_PREDICTION_JOIN_H_
#define DMX_CORE_PREDICTION_JOIN_H_

#include <optional>

#include "common/rowset.h"
#include "core/catalog.h"
#include "core/dmx_ast.h"
#include "relational/database.h"

namespace dmx {

/// Executes one prediction-join statement. `preloaded_source` carries the
/// statement's OPENROWSET payload when it has one (see
/// PreloadCasesetSource): the caller reads the file before taking the
/// catalog lock so prediction never blocks on I/O while holding it.
Result<Rowset> ExecutePredictionJoin(
    const rel::Database& db, ModelCatalog* catalog,
    const PredictionJoinStatement& stmt,
    std::optional<Rowset>* preloaded_source = nullptr);

/// Unnests every TABLE column of `input`: each nested row becomes one output
/// row (cases with an empty nested table keep one row of NULLs); nested
/// columns are renamed "<table column>.<nested column>". Exposed for tests.
Result<Rowset> FlattenRowset(const Rowset& input);

}  // namespace dmx

#endif  // DMX_CORE_PREDICTION_JOIN_H_
