// DMX parser. Because the provider exposes ONE command pipe for both DMX and
// SQL (the OLE DB command metaphor), ParseDmx first classifies the statement:
// text that is plain SQL (CREATE TABLE, INSERT ... VALUES, ordinary SELECT,
// DROP TABLE) returns kNotDmx so the caller can fall through to the
// relational engine. DELETE FROM <name> is genuinely ambiguous at parse time
// and is returned as a DMX DeleteFromModelStatement; the provider re-routes
// it to SQL when <name> turns out to be a base table.

#ifndef DMX_CORE_DMX_PARSER_H_
#define DMX_CORE_DMX_PARSER_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "core/dmx_ast.h"

namespace dmx {

/// Outcome of classification + parse.
struct DmxParseResult {
  /// Set when the text is a DMX statement.
  std::optional<DmxStatement> statement;
  /// True when the text should be executed by the relational engine instead.
  bool is_sql = false;
};

/// Classifies and parses one command string.
Result<DmxParseResult> ParseDmx(const std::string& text);

/// Parses a CREATE MINING MODEL statement (exposed for tests).
Result<ModelDefinition> ParseCreateMiningModel(const std::string& text);

}  // namespace dmx

#endif  // DMX_CORE_DMX_PARSER_H_
