// Schema rowsets: "the standard mechanism in OLE DB whereby a provider
// describes information about itself to potential consumers" (paper §3) —
// supported capabilities, algorithm parameters, installed models, model
// columns, and model content.

#ifndef DMX_CORE_SCHEMA_ROWSETS_H_
#define DMX_CORE_SCHEMA_ROWSETS_H_

#include <string>

#include "common/rowset.h"
#include "core/catalog.h"
#include "model/service_registry.h"

namespace dmx {

enum class SchemaRowsetKind {
  kMiningServices,     ///< One row per installed mining service.
  kServiceParameters,  ///< One row per (service, parameter).
  kMiningModels,       ///< One row per model in the catalog.
  kMiningColumns,      ///< One row per (model, column), nested included.
  kMiningModelContent, ///< Content rows of every populated model.
  kMiningFunctions,    ///< One row per prediction UDF the provider ships.
};

/// Generates a schema rowset. `model_filter` (optional, kMiningColumns /
/// kMiningModelContent) restricts to one model.
Result<Rowset> GetSchemaRowset(SchemaRowsetKind kind,
                               const ServiceRegistry& services,
                               const ModelCatalog& models,
                               const std::string& model_filter = "");

/// The MINING_MODEL_CONTENT rows of one model (SELECT * FROM m.CONTENT).
Result<Rowset> GetContentRowset(const MiningModel& model);

}  // namespace dmx

#endif  // DMX_CORE_SCHEMA_ROWSETS_H_
