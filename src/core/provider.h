// Provider / Connection: the in-process stand-in for the COM OLE DB provider
// objects (substitution documented in DESIGN.md). A Provider owns the three
// catalogs of Figure 1's server — relational tables, mining services and
// mining models; a Connection executes command strings against all of them
// through one pipe, the way ICommandText does:
//
//   dmx::Provider provider;
//   auto conn = provider.Connect();
//   conn->Execute("CREATE MINING MODEL ...");
//   conn->Execute("INSERT INTO [Age Prediction] (...) SHAPE {...} ...");
//   auto rowset = conn->Execute("SELECT ... PREDICTION JOIN ...");

#ifndef DMX_CORE_PROVIDER_H_
#define DMX_CORE_PROVIDER_H_

#include <memory>
#include <string>

#include "common/env.h"
#include "common/rowset.h"
#include "core/catalog.h"
#include "core/schema_rowsets.h"
#include "model/service_registry.h"
#include "relational/database.h"
#include "store/store.h"

namespace dmx {

class Connection;

/// \brief The data-mining provider: owns the database, the service registry
/// (preloaded with the built-in services) and the model catalog.
class Provider {
 public:
  Provider();
  ~Provider();  // out-of-line: CatalogStoreClient is defined in provider.cc

  rel::Database* database() { return &database_; }
  const rel::Database& database() const { return database_; }
  ServiceRegistry* services() { return &services_; }
  const ServiceRegistry& services() const { return services_; }
  ModelCatalog* models() { return &models_; }
  const ModelCatalog& models() const { return models_; }

  /// Opens a session. Connections are lightweight views onto the provider.
  std::unique_ptr<Connection> Connect();

  /// \brief Attaches a durable store rooted at `store_dir` (created if
  /// missing): recovers any existing snapshot + WAL into this provider's
  /// catalogs, then journals every subsequent successful DDL/DML statement.
  ///
  /// Call once, before serving traffic. Pre-existing in-memory objects that
  /// collide with recovered ones are replaced by the recovered state (the
  /// store is authoritative).
  Status OpenStore(const std::string& store_dir,
                   store::StoreOptions options = {});

  /// The attached store, or nullptr when running purely in memory.
  store::DurableStore* store() { return store_.get(); }

  /// Forces a snapshot + WAL rotation (InvalidState without a store).
  Status Checkpoint();

 private:
  class CatalogStoreClient;

  rel::Database database_;
  ServiceRegistry services_;
  ModelCatalog models_;
  std::unique_ptr<CatalogStoreClient> store_client_;
  std::unique_ptr<store::DurableStore> store_;
};

/// \brief One session: the command execution surface.
class Connection {
 public:
  explicit Connection(Provider* provider) : provider_(provider) {}

  /// Executes one DMX or SQL statement. DDL/DML return an empty rowset.
  Result<Rowset> Execute(const std::string& command);

  /// Provider self-description (paper §3's schema rowsets).
  Result<Rowset> GetSchemaRowset(SchemaRowsetKind kind,
                                 const std::string& model_filter = "") const;

  Provider* provider() { return provider_; }

 private:
  Provider* provider_;
};

}  // namespace dmx

#endif  // DMX_CORE_PROVIDER_H_
