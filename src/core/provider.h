// Provider / Connection: the in-process stand-in for the COM OLE DB provider
// objects (substitution documented in DESIGN.md). A Provider owns the three
// catalogs of Figure 1's server — relational tables, mining services and
// mining models; a Connection executes command strings against all of them
// through one pipe, the way ICommandText does:
//
//   dmx::Provider provider;
//   auto conn = provider.Connect();
//   conn->Execute("CREATE MINING MODEL ...");
//   conn->Execute("INSERT INTO [Age Prediction] (...) SHAPE {...} ...");
//   auto rowset = conn->Execute("SELECT ... PREDICTION JOIN ...");
//
// The provider is a *server* object: Connection::Execute is safe to call
// from many threads against one Provider. A catalog-level reader/writer lock
// regime serializes DDL/DML against concurrent reads (see DESIGN.md
// "Concurrency & execution guards" and "Static enforcement"), every
// statement runs under an ExecGuard (deadline, cancellation, row budgets —
// ExecLimits per connection), and an optional admission cap bounds how many
// statements execute at once. The lock regime is compiler-enforced: every
// catalog field is GUARDED_BY(catalog_mu_) and the read/write dispatch paths
// carry REQUIRES_SHARED / REQUIRES annotations checked by -Wthread-safety.

#ifndef DMX_CORE_PROVIDER_H_
#define DMX_CORE_PROVIDER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/env.h"
#include "common/exec_guard.h"
#include "common/mutex.h"
#include "common/rowset.h"
#include "common/thread_annotations.h"
#include "core/admission.h"
#include "core/catalog.h"
#include "core/dmx_parser.h"
#include "core/schema_rowsets.h"
#include "model/service_registry.h"
#include "relational/database.h"
#include "relational/sql_ast.h"
#include "store/store.h"

namespace dmx {

class Connection;

/// \brief The data-mining provider: owns the database, the service registry
/// (preloaded with the built-in services) and the model catalog.
class Provider {
 public:
  Provider();
  ~Provider();  // out-of-line: CatalogStoreClient is defined in provider.cc

  /// Direct catalog accessors. These return the address of guarded state
  /// without taking the lock — the pointer escape the thread-safety analysis
  /// cannot track. They exist for *configuration time* (populating tables,
  /// inspecting catalogs in tests) before concurrent traffic starts; in a
  /// multi-threaded setting, mutate catalogs through Connection::Execute.
  rel::Database* database() { return &database_; }
  const rel::Database* database() const { return &database_; }
  ServiceRegistry* services() { return &services_; }
  const ServiceRegistry* services() const { return &services_; }
  ModelCatalog* models() { return &models_; }
  const ModelCatalog* models() const { return &models_; }

  /// Opens a session. Connections are lightweight views onto the provider;
  /// each carries its own ExecLimits. A connection itself is not thread-safe
  /// (its limits are plain fields) — open one per thread.
  std::unique_ptr<Connection> Connect();

  /// \brief Caps concurrent statement execution: at most `max_active`
  /// statements run at once, up to `max_queued` more wait for a slot, and
  /// anything beyond fails fast with kResourceExhausted. `max_active == 0`
  /// (the default) disables admission control.
  void SetAdmissionLimits(uint32_t max_active, uint32_t max_queued);

  /// \brief Per-tenant quota layered under the global cap: each named
  /// tenant (Connection::set_tenant; the server's session tenant id) is
  /// held to its own active/queued bounds. 0 disables the tenant layer.
  void SetTenantAdmissionLimits(uint32_t max_active, uint32_t max_queued);

  /// The admission gate (internally synchronized) — the serving front end
  /// reads its retry-after hint and occupancy from here.
  AdmissionController* admission() { return &admission_; }

  /// \brief Attaches a durable store rooted at `store_dir` (created if
  /// missing): recovers any existing snapshot + WAL into this provider's
  /// catalogs, then journals every subsequent successful DDL/DML statement.
  ///
  /// Call once, before serving traffic: a second call — whether or not the
  /// first succeeded against the same directory — returns kInvalidState and
  /// leaves the attached store untouched.
  Status OpenStore(const std::string& store_dir,
                   store::StoreOptions options = {})
      DMX_EXCLUDES(catalog_mu_);

  /// The attached store, or nullptr when running purely in memory. Takes the
  /// catalog lock shared for the read; the DurableStore itself is
  /// thread-safe, so the returned pointer may be used without it.
  store::DurableStore* store() DMX_EXCLUDES(catalog_mu_) {
    ReaderMutexLock lock(&catalog_mu_);
    return store_.get();
  }

  /// Forces a snapshot + WAL rotation (InvalidState without a store).
  /// Serialized against all statement execution.
  Status Checkpoint() DMX_EXCLUDES(catalog_mu_);

  /// Re-adopts a quarantined shard — by shard id ("catalog", "m000003") or
  /// by the name of a degraded model — and lifts the affected degradation.
  /// Serialized against all statement execution, like Checkpoint.
  Status Repair(const std::string& target,
                store::RepairStats* stats = nullptr) DMX_EXCLUDES(catalog_mu_);

  /// (model, reason) for every model currently degraded by a quarantined
  /// shard; empty when the store is healthy or absent.
  std::vector<std::pair<std::string, std::string>> DegradedModels() const
      DMX_EXCLUDES(catalog_mu_);

  /// True while the store's catalog shard is quarantined: every mutating
  /// statement is refused with kUnavailable; reads still serve.
  bool StoreReadOnly() const DMX_EXCLUDES(catalog_mu_) {
    ReaderMutexLock lock(&catalog_mu_);
    return store_read_only_;
  }

 private:
  friend class Connection;
  class CatalogStoreClient;

  /// Recovery-replay session: bypasses guards and admission, and instead of
  /// locking *asserts* the catalog lock (the caller — OpenStore — already
  /// holds it exclusively; re-locking would self-deadlock).
  std::unique_ptr<Connection> ConnectInternal();

  /// Journals one successfully executed statement; no-op without a store.
  /// A journal failure means the in-memory effect is NOT durable — it is
  /// surfaced to the caller, who sees the pre-statement state after reopen.
  /// The exclusive catalog lock serializes WAL appends across sessions.
  Status JournalStatementLocked(const std::string& text)
      DMX_REQUIRES(catalog_mu_);

  /// One model's degradation: its WAL shard failed recovery.
  struct DegradedState {
    std::string shard_id;
    std::string reason;
  };

  /// Rebuilds the degraded-model map and the read-only flag from the store's
  /// current quarantine set (after OpenStore and after Repair).
  void RefreshDegradedLocked() DMX_REQUIRES(catalog_mu_);

  /// kUnavailable when `name` is a degraded model, with a context frame
  /// naming the quarantined shard. Callers check this *before* resolving the
  /// name so clients see kUnavailable rather than kNotFound.
  Status CheckModelServable(const std::string& name) const
      DMX_REQUIRES_SHARED(catalog_mu_);

  /// kUnavailable for every mutating statement while the catalog shard is
  /// quarantined (the store-wide read-only degraded mode).
  Status CheckStoreWritable() const DMX_REQUIRES_SHARED(catalog_mu_);

  /// Catalog-level lock: DDL/DML and store maintenance take it exclusively,
  /// SELECT / PREDICTION JOIN / schema rowsets take it shared. Timed so
  /// writers blocked behind long readers can honour their deadline.
  mutable SharedMutex catalog_mu_{"provider.catalog_mu"};
  AdmissionController admission_;  // Internally synchronized.

  rel::Database database_ DMX_GUARDED_BY(catalog_mu_);
  ServiceRegistry services_ DMX_GUARDED_BY(catalog_mu_);
  ModelCatalog models_ DMX_GUARDED_BY(catalog_mu_);

  std::unique_ptr<CatalogStoreClient> store_client_
      DMX_GUARDED_BY(catalog_mu_);
  std::unique_ptr<store::DurableStore> store_ DMX_GUARDED_BY(catalog_mu_);

  /// Models whose WAL shard is quarantined: they keep their recovered base
  /// state in memory (Repair replays on top of it) but every statement that
  /// touches them returns kUnavailable.
  std::map<std::string, DegradedState> degraded_models_
      DMX_GUARDED_BY(catalog_mu_);
  bool store_read_only_ DMX_GUARDED_BY(catalog_mu_) = false;
};

/// \brief One session: the command execution surface.
class Connection {
 public:
  explicit Connection(Provider* provider) : provider_(provider) {}

  /// Executes one DMX or SQL statement. DDL/DML return an empty rowset.
  /// Thread-safe with respect to other connections on the same provider;
  /// runs under this connection's ExecLimits.
  Result<Rowset> Execute(const std::string& command);

  /// \brief Session-scoped execute: runs under `guard`, which the caller
  /// armed and keeps after the call. The serving front end uses this so
  /// one guard (deadline + cancel token) spans admission, execution *and*
  /// the response streaming that follows. `limits_` is ignored.
  Result<Rowset> ExecuteGuarded(const std::string& command, ExecGuard* guard);

  /// Provider self-description (paper §3's schema rowsets). Takes the
  /// catalog lock shared, like any other read.
  Result<Rowset> GetSchemaRowset(SchemaRowsetKind kind,
                                 const std::string& model_filter = "") const;

  /// Execution limits armed for every subsequent Execute on this connection
  /// (deadline, cancellation token, row budgets). Default: no limits.
  void set_limits(ExecLimits limits) { limits_ = std::move(limits); }
  const ExecLimits& limits() const { return limits_; }

  /// Tenant id this session's statements are admitted under ("" = no
  /// tenant accounting). The server sets it from the session handshake.
  void set_tenant(std::string tenant) { tenant_ = std::move(tenant); }
  const std::string& tenant() const { return tenant_; }

  Provider* provider() { return provider_; }

 private:
  friend class Provider;

  Connection(Provider* provider, bool internal)
      : provider_(provider), internal_(internal) {}

  /// File payloads of one statement. Execution under the catalog lock never
  /// touches the filesystem: PrepareStatementIo reads every external input
  /// (IMPORT document, OPENROWSET caseset) *before* the lock is taken, and
  /// FinishStatementIo performs the deferred EXPORT write *after* it is
  /// released. A blocked disk therefore stalls only this statement, never
  /// every session queued behind the catalog mutex.
  struct StatementIo {
    std::optional<std::string> import_document;  ///< IMPORT: file contents.
    std::optional<Rowset> caseset_rows;  ///< OPENROWSET: loaded CSV rows.
    std::string export_path;             ///< EXPORT: destination path.
    std::string export_model;            ///< EXPORT: model name (context).
    std::optional<std::string> export_document;  ///< EXPORT: serialized.
  };

  /// Reads every external input of the statement into `io`. Lock-free: runs
  /// before admission and before any catalog lock is taken (on internal
  /// replay connections, before the caller's lock ownership is asserted).
  Status PrepareStatementIo(const DmxParseResult& parsed, StatementIo* io);

  /// Writes the deferred EXPORT document, if any. Runs after the catalog
  /// lock is released and only when execution succeeded.
  Status FinishStatementIo(StatementIo& io);

  /// Dispatches one parsed read-only statement (SELECT, PREDICTION JOIN,
  /// CONTENT, EXPORT) against the catalogs under at least a shared lock.
  /// `sql` carries the relational parse when `parsed.is_sql` (so SQL text is
  /// parsed exactly once per Execute).
  Result<Rowset> DispatchRead(DmxParseResult& parsed,
                              std::optional<rel::SqlStatement>& sql,
                              StatementIo& io)
      DMX_REQUIRES_SHARED(provider_->catalog_mu_);

  /// Dispatches one parsed mutating statement (DDL/DML/IMPORT) under the
  /// exclusive lock; journals it to the store on success.
  Result<Rowset> DispatchWrite(DmxParseResult& parsed,
                               std::optional<rel::SqlStatement>& sql,
                               const std::string& command,
                               const ExecGuard* guard, StatementIo& io)
      DMX_REQUIRES(provider_->catalog_mu_);

  /// Journals one catalog-shard statement — unless this is an internal
  /// (recovery/repair) connection: replayed statements are already durable
  /// in the shard being replayed, and re-journaling them under Repair would
  /// self-deadlock on the store's mutex.
  Status JournalLocked(const std::string& command)
      DMX_REQUIRES(provider_->catalog_mu_);

  Provider* provider_;
  ExecLimits limits_;
  std::string tenant_;
  /// Recovery-replay connection: skips guards and admission; asserts (rather
  /// than takes) the exclusive catalog lock its caller holds.
  bool internal_ = false;
};

}  // namespace dmx

#endif  // DMX_CORE_PROVIDER_H_
