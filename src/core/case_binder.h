// CaseBinder: structural binding between a mining model's column specs and a
// concrete caseset (paper §3.2's "the columns the caseset must have").
//
// Binding is by column NAME (case-insensitive), the way the Analysis Server
// provider binds: the INSERT INTO column list declares which model columns
// are populated, and each maps to the equally named source column — extra
// source columns (e.g. the RELATE key of a SHAPE child) are ignored. This is
// what makes the paper's own INSERT example well-formed, where the child
// SELECT carries [CustID] but the model's nested table does not.
//
// Responsibilities:
//   * training pass 1 — intern categorical dictionaries, collect samples for
//     DISCRETIZED columns, then finalize (bucket bounds via the
//     discretization service, ordered/cyclical dictionaries sorted);
//   * training pass 2 / prediction — convert each hierarchical Row into a
//     DataCase (prediction binding never extends dictionaries: unseen values
//     become missing);
//   * qualifier routing — SUPPORT OF -> case weight, PROBABILITY OF ->
//     per-attribute confidence;
//   * RELATION expansion — a nested RELATION column (Product Type RELATED TO
//     Product Name) derives a second item group ("Product Purchases.Product
//     Type") so services can generalize over the classification.

#ifndef DMX_CORE_CASE_BINDER_H_
#define DMX_CORE_CASE_BINDER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rowset.h"
#include "core/dmx_ast.h"
#include "model/attribute_set.h"
#include "model/model_definition.h"

namespace dmx {

/// \brief Bound mapping from one source schema to one model definition.
class CaseBinder {
 public:
  /// Builds the AttributeSet skeleton for a definition (flags set, empty
  /// dictionaries). Called once at CREATE MINING MODEL time.
  static AttributeSet BuildAttributeSet(const ModelDefinition& def);

  /// Training binder. `mapping` (the INSERT column list) restricts which
  /// model columns are populated; nullptr populates every model column that
  /// has a same-named source column, erroring only if none match.
  static Result<CaseBinder> CreateForTraining(
      const ModelDefinition& def, const Schema& source,
      const std::vector<InsertColumn>* mapping);

  /// Prediction binder. `on == nullptr` means NATURAL (bind by name);
  /// otherwise only the ON pairs bind. Output-only columns stay unbound.
  static Result<CaseBinder> CreateForPrediction(const ModelDefinition& def,
                                                const Schema& source,
                                                const std::string& source_alias,
                                                const std::vector<OnPair>* on);

  /// Pass 1: extends dictionaries and collects discretizer samples.
  Status CollectStatistics(const Row& row, AttributeSet* attrs);

  /// Ends pass 1: computes DISCRETIZED bucket bounds and (on the first
  /// training only — later reorderings would invalidate existing case
  /// bindings) sorts ordered/cyclical dictionaries. Bounds are never
  /// recomputed on later INSERTs.
  Status FinalizeStatistics(AttributeSet* attrs, bool first_training);

  /// Converts one source row into a DataCase, extending dictionaries with
  /// unseen values (the training path).
  Result<DataCase> BindCase(const Row& row, AttributeSet* attrs) const {
    DataCase c;
    DMX_RETURN_IF_ERROR(BindCaseIntoImpl(row, *attrs, attrs, &c));
    return c;
  }

  /// Read-only binding (the prediction path): unseen categorical values and
  /// items read as missing; `attrs` is never mutated.
  Result<DataCase> BindCase(const Row& row, const AttributeSet& attrs) const {
    DataCase c;
    DMX_RETURN_IF_ERROR(BindCaseIntoImpl(row, attrs, nullptr, &c));
    return c;
  }

  /// Like BindCase, but into a caller-owned DataCase whose buffers are
  /// reused across calls — the form the per-case training and prediction
  /// loops use to avoid re-allocating values/groups for every row.
  Status BindCaseInto(const Row& row, AttributeSet* attrs,
                      DataCase* out) const {
    return BindCaseIntoImpl(row, *attrs, attrs, out);
  }
  Status BindCaseInto(const Row& row, const AttributeSet& attrs,
                      DataCase* out) const {
    return BindCaseIntoImpl(row, attrs, nullptr, out);
  }

  /// The source column bound to the case-level KEY (-1 when unbound);
  /// prediction queries use it to echo the case id.
  int key_source_column() const { return key_source_column_; }

 private:
  struct ScalarBinding {
    const ModelColumn* spec = nullptr;
    int attribute = -1;          ///< AttributeSet slot.
    int source_column = -1;      ///< -1: unbound (missing at bind time).
    int probability_column = -1; ///< PROBABILITY OF this attribute.
  };

  struct GroupBinding {
    const ModelColumn* spec = nullptr;
    int group = -1;                 ///< AttributeSet group slot.
    int source_column = -1;         ///< TABLE column in the source schema.
    int key_nested_column = -1;     ///< Nested KEY position in the source.
    std::vector<int> value_nested_columns;  ///< Aligned with value_names.
    int relation_nested_column = -1;
    int derived_group = -1;         ///< Relation-derived group slot.
  };

  CaseBinder() = default;

  /// Shared binding body; `intern_into` is non-null on the training path and
  /// receives dictionary growth (it aliases `attrs`). `out` is reset (not
  /// shrunk) before binding so callers can reuse one DataCase per loop.
  Status BindCaseIntoImpl(const Row& row, const AttributeSet& attrs,
                          AttributeSet* intern_into, DataCase* out) const;

  static Status BindScalarSource(const Schema& source,
                                 const std::string& source_name,
                                 ScalarBinding* binding);

  std::vector<ScalarBinding> scalars_;
  std::vector<GroupBinding> groups_;
  int weight_column_ = -1;        ///< SUPPORT OF qualifier source column.
  int key_source_column_ = -1;
  size_t attribute_count_ = 0;
  size_t group_count_ = 0;
  /// Discretizer samples per attribute index (training pass 1).
  std::map<int, std::vector<double>> samples_;
};

}  // namespace dmx

#endif  // DMX_CORE_CASE_BINDER_H_
