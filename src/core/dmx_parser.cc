#include "core/dmx_parser.h"

#include "common/tokenizer.h"
#include "relational/sql_parser.h"
#include "shape/shape_parser.h"

namespace dmx {

namespace {

/// Source range of one token (re-adds the quoting stripped by the lexer).
SourceSpan TokenSpan(const Token& t) {
  size_t length = t.text.size();
  if (t.kind == TokenKind::kString ||
      (t.kind == TokenKind::kIdentifier && t.quoted)) {
    length += 2;
  }
  return SourceSpan{t.offset, length == 0 ? 1 : length};
}

// ---------------------------------------------------------------------------
// CREATE MINING MODEL
// ---------------------------------------------------------------------------

Result<ModelColumn> ParseScalarOrTableColumn(TokenStream* tokens,
                                             bool top_level);

Result<std::vector<ModelColumn>> ParseColumnList(TokenStream* tokens,
                                                 bool top_level) {
  std::vector<ModelColumn> columns;
  DMX_RETURN_IF_ERROR(tokens->ExpectPunct("("));
  while (true) {
    DMX_ASSIGN_OR_RETURN(ModelColumn col,
                         ParseScalarOrTableColumn(tokens, top_level));
    columns.push_back(std::move(col));
    if (tokens->MatchPunct(",")) continue;
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
    break;
  }
  return columns;
}

// Parses the modifier tail of a scalar column (everything after the data
// type): content types, qualifiers, hints, flags, prediction markers.
Status ParseColumnModifiers(TokenStream* tokens, ModelColumn* col) {
  while (true) {
    const Token& t = tokens->Peek();
    if (t.kind != TokenKind::kIdentifier || t.quoted) break;
    if (tokens->MatchKeyword("KEY")) {
      col->role = ContentRole::kKey;
      continue;
    }
    if (tokens->MatchKeyword("DISCRETE")) {
      col->attr_type = AttributeType::kDiscrete;
      continue;
    }
    if (tokens->MatchKeyword("ORDERED")) {
      col->attr_type = AttributeType::kOrdered;
      continue;
    }
    if (tokens->MatchKeyword("CYCLICAL")) {
      col->attr_type = AttributeType::kCyclical;
      continue;
    }
    if (tokens->MatchKeyword("CONTINUOUS") || tokens->MatchKeyword("CONTINOUS")) {
      // The paper itself spells it "CONTINOUS" in §3.2.2; accept both.
      col->attr_type = AttributeType::kContinuous;
      continue;
    }
    if (tokens->MatchKeyword("SEQUENCE_TIME")) {
      col->attr_type = AttributeType::kSequenceTime;
      continue;
    }
    if (tokens->MatchKeyword("DISCRETIZED")) {
      col->attr_type = AttributeType::kDiscretized;
      if (tokens->MatchPunct("(")) {
        DMX_ASSIGN_OR_RETURN(std::string method,
                             tokens->ExpectIdentifier("discretization method"));
        DMX_ASSIGN_OR_RETURN(col->discretization,
                             DiscretizationMethodFromString(method));
        if (tokens->MatchPunct(",")) {
          const Token& n = tokens->Peek();
          if (n.kind != TokenKind::kLong) {
            return tokens->ErrorHere("expected bucket count");
          }
          col->discretization_buckets = static_cast<int>(n.long_value);
          tokens->Next();
        }
        DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
      }
      continue;
    }
    // Distribution hints.
    struct HintMap {
      const char* kw;
      DistributionHint hint;
    };
    static const HintMap kHints[] = {
        {"NORMAL", DistributionHint::kNormal},
        {"LOG_NORMAL", DistributionHint::kLogNormal},
        {"UNIFORM", DistributionHint::kUniform},
        {"BINOMIAL", DistributionHint::kBinomial},
        {"MULTINOMIAL", DistributionHint::kMultinomial},
        {"POISSON", DistributionHint::kPoisson},
        {"MIXTURE", DistributionHint::kMixture},
    };
    bool matched_hint = false;
    for (const HintMap& h : kHints) {
      if (tokens->MatchKeyword(h.kw)) {
        col->distribution = h.hint;
        matched_hint = true;
        break;
      }
    }
    if (matched_hint) continue;
    // Qualifiers: <KIND> OF <column>.
    struct QualMap {
      const char* kw;
      QualifierKind kind;
    };
    static const QualMap kQuals[] = {
        {"PROBABILITY", QualifierKind::kProbability},
        {"VARIANCE", QualifierKind::kVariance},
        {"SUPPORT", QualifierKind::kSupport},
        {"PROBABILITY_VARIANCE", QualifierKind::kProbabilityVariance},
        {"ORDER", QualifierKind::kOrder},
    };
    bool matched_qual = false;
    for (const QualMap& q : kQuals) {
      if (tokens->Peek().IsKeyword(q.kw) && tokens->Peek(1).IsKeyword("OF")) {
        tokens->Next();
        tokens->Next();
        col->role = ContentRole::kQualifier;
        col->qualifier = q.kind;
        DMX_ASSIGN_OR_RETURN(col->related_to,
                             tokens->ExpectIdentifier("qualified column"));
        matched_qual = true;
        break;
      }
    }
    if (matched_qual) continue;
    if (tokens->MatchKeywords({"RELATED", "TO"})) {
      col->role = ContentRole::kRelation;
      DMX_ASSIGN_OR_RETURN(col->related_to,
                           tokens->ExpectIdentifier("related column"));
      continue;
    }
    if (tokens->MatchKeywords({"NOT", "NULL"})) {
      col->not_null = true;
      continue;
    }
    if (tokens->MatchKeyword("MODEL_EXISTENCE_ONLY")) {
      col->model_existence_only = true;
      continue;
    }
    if (tokens->MatchKeyword("PREDICT_ONLY")) {
      col->usage = PredictUsage::kPredictOnly;
      continue;
    }
    if (tokens->MatchKeyword("PREDICT")) {
      col->usage = PredictUsage::kPredict;
      continue;
    }
    break;  // Unrecognized keyword: stop (',' / ')' / USING follows).
  }
  return Status::OK();
}

Result<ModelColumn> ParseScalarOrTableColumn(TokenStream* tokens,
                                             bool top_level) {
  ModelColumn col;
  col.span = TokenSpan(tokens->Peek());
  DMX_ASSIGN_OR_RETURN(col.name, tokens->ExpectIdentifier("column name"));
  if (tokens->Peek().IsKeyword("TABLE")) {
    if (!top_level) {
      return tokens->ErrorHere("nested tables cannot contain TABLE columns");
    }
    tokens->Next();
    col.role = ContentRole::kTable;
    col.data_type = DataType::kTable;
    DMX_ASSIGN_OR_RETURN(col.nested,
                         ParseColumnList(tokens, /*top_level=*/false));
    // PREDICT / PREDICT_ONLY may follow a TABLE column.
    if (tokens->MatchKeyword("PREDICT_ONLY")) {
      col.usage = PredictUsage::kPredictOnly;
    } else if (tokens->MatchKeyword("PREDICT")) {
      col.usage = PredictUsage::kPredict;
    }
    return col;
  }
  DMX_ASSIGN_OR_RETURN(std::string type_name,
                       tokens->ExpectIdentifier("data type"));
  DMX_ASSIGN_OR_RETURN(col.data_type, DataTypeFromString(type_name));
  DMX_RETURN_IF_ERROR(ParseColumnModifiers(tokens, &col));
  return col;
}

Result<ModelDefinition> ParseCreateFrom(TokenStream* tokens) {
  // "CREATE MINING MODEL" already consumed.
  ModelDefinition def;
  def.name_span = TokenSpan(tokens->Peek());
  DMX_ASSIGN_OR_RETURN(def.model_name, tokens->ExpectIdentifier("model name"));
  DMX_ASSIGN_OR_RETURN(def.columns, ParseColumnList(tokens, /*top_level=*/true));
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("USING"));
  def.service_span = TokenSpan(tokens->Peek());
  DMX_ASSIGN_OR_RETURN(def.service_name,
                       tokens->ExpectIdentifier("mining service name"));
  if (tokens->MatchPunct("(")) {
    while (true) {
      AlgorithmParam param;
      DMX_ASSIGN_OR_RETURN(param.name,
                           tokens->ExpectIdentifier("parameter name"));
      DMX_RETURN_IF_ERROR(tokens->ExpectPunct("="));
      const Token& t = tokens->Peek();
      switch (t.kind) {
        case TokenKind::kLong:
          param.value = Value::Long(t.long_value);
          tokens->Next();
          break;
        case TokenKind::kDouble:
          param.value = Value::Double(t.double_value);
          tokens->Next();
          break;
        case TokenKind::kString:
          param.value = Value::Text(t.text);
          tokens->Next();
          break;
        default:
          return tokens->ErrorHere("expected parameter value");
      }
      def.parameters.push_back(std::move(param));
      if (tokens->MatchPunct(",")) continue;
      DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
      break;
    }
  }
  return def;
}

// ---------------------------------------------------------------------------
// Caseset sources
// ---------------------------------------------------------------------------

Result<CasesetSource> ParseSource(TokenStream* tokens) {
  if (tokens->Peek().IsKeyword("SHAPE")) {
    DMX_ASSIGN_OR_RETURN(shape::ShapeStatement stmt,
                         shape::ParseShapeFrom(tokens));
    return CasesetSource(std::move(stmt));
  }
  if (tokens->Peek().IsKeyword("SELECT")) {
    DMX_ASSIGN_OR_RETURN(rel::SelectStatement stmt,
                         rel::ParseSelectFrom(tokens));
    return CasesetSource(std::move(stmt));
  }
  if (tokens->MatchKeyword("OPENROWSET")) {
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct("("));
    OpenRowsetSource source;
    const Token& format = tokens->Peek();
    if (format.kind != TokenKind::kString) {
      return tokens->ErrorHere("expected OPENROWSET format string");
    }
    source.format = format.text;
    tokens->Next();
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct(","));
    const Token& path = tokens->Peek();
    if (path.kind != TokenKind::kString) {
      return tokens->ErrorHere("expected OPENROWSET path string");
    }
    source.path = path.text;
    tokens->Next();
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
    return CasesetSource(std::move(source));
  }
  return tokens->ErrorHere("expected SHAPE, SELECT or OPENROWSET source");
}

// ---------------------------------------------------------------------------
// INSERT INTO
// ---------------------------------------------------------------------------

Result<InsertIntoStatement> ParseInsertInto(TokenStream* tokens) {
  // "INSERT INTO" consumed.
  InsertIntoStatement stmt;
  stmt.model_span = TokenSpan(tokens->Peek());
  DMX_ASSIGN_OR_RETURN(stmt.model_name, tokens->ExpectIdentifier("model name"));
  if (tokens->MatchPunct("(")) {
    while (true) {
      InsertColumn col;
      col.span = TokenSpan(tokens->Peek());
      DMX_ASSIGN_OR_RETURN(col.name, tokens->ExpectIdentifier("column name"));
      if (tokens->MatchPunct("(")) {
        col.is_table = true;
        while (true) {
          DMX_ASSIGN_OR_RETURN(std::string nested,
                               tokens->ExpectIdentifier("nested column name"));
          col.nested.push_back(std::move(nested));
          if (tokens->MatchPunct(",")) continue;
          DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
          break;
        }
      }
      stmt.columns.push_back(std::move(col));
      if (tokens->MatchPunct(",")) continue;
      DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
      break;
    }
  }
  DMX_ASSIGN_OR_RETURN(stmt.source, ParseSource(tokens));
  return stmt;
}

// ---------------------------------------------------------------------------
// DMX expressions (prediction-join projections)
// ---------------------------------------------------------------------------

Result<DmxExpr> ParseDmxExpr(TokenStream* tokens) {
  // Recurses through function-call arguments (Predict(Predict(...)); bound
  // the depth so fuzzed nesting fails cleanly instead of overflowing the
  // stack.
  TokenStream::RecursionScope depth(tokens);
  DMX_RETURN_IF_ERROR(depth.Check());
  DmxExpr expr;
  expr.span = TokenSpan(tokens->Peek());
  // Negative numeric literals.
  if (tokens->Peek().IsPunct("-") &&
      (tokens->Peek(1).kind == TokenKind::kLong ||
       tokens->Peek(1).kind == TokenKind::kDouble)) {
    tokens->Next();
    const Token& number = tokens->Next();
    expr.kind = DmxExpr::Kind::kLiteral;
    expr.literal = number.kind == TokenKind::kLong
                       ? Value::Long(-number.long_value)
                       : Value::Double(-number.double_value);
    return expr;
  }
  const Token& t = tokens->Peek();
  if (t.IsPunct("$")) {
    tokens->Next();
    expr.kind = DmxExpr::Kind::kDollar;
    DMX_ASSIGN_OR_RETURN(expr.dollar,
                         tokens->ExpectIdentifier("statistic name"));
    return expr;
  }
  switch (t.kind) {
    case TokenKind::kString:
      tokens->Next();
      expr.kind = DmxExpr::Kind::kLiteral;
      expr.literal = Value::Text(t.text);
      return expr;
    case TokenKind::kLong:
      tokens->Next();
      expr.kind = DmxExpr::Kind::kLiteral;
      expr.literal = Value::Long(t.long_value);
      return expr;
    case TokenKind::kDouble:
      tokens->Next();
      expr.kind = DmxExpr::Kind::kLiteral;
      expr.literal = Value::Double(t.double_value);
      return expr;
    case TokenKind::kIdentifier:
      break;
    default:
      return tokens->ErrorHere("expected projection expression");
  }
  // Function call: bare identifier followed by '('.
  if (!t.quoted && tokens->Peek(1).IsPunct("(")) {
    expr.kind = DmxExpr::Kind::kFunction;
    expr.function = tokens->Next().text;
    tokens->Next();  // '('
    if (!tokens->MatchPunct(")")) {
      while (true) {
        DMX_ASSIGN_OR_RETURN(DmxExpr arg, ParseDmxExpr(tokens));
        expr.args.push_back(std::move(arg));
        if (tokens->MatchPunct(",")) continue;
        DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
        break;
      }
    }
    return expr;
  }
  // Column path.
  expr.kind = DmxExpr::Kind::kColumnPath;
  DMX_ASSIGN_OR_RETURN(std::string first, tokens->ExpectIdentifier("column"));
  expr.path.push_back(std::move(first));
  while (tokens->MatchPunct(".")) {
    DMX_ASSIGN_OR_RETURN(std::string segment,
                         tokens->ExpectIdentifier("path segment"));
    expr.path.push_back(std::move(segment));
  }
  return expr;
}

Result<std::vector<std::string>> ParsePath(TokenStream* tokens) {
  std::vector<std::string> path;
  DMX_ASSIGN_OR_RETURN(std::string first, tokens->ExpectIdentifier("column"));
  path.push_back(std::move(first));
  while (tokens->MatchPunct(".")) {
    DMX_ASSIGN_OR_RETURN(std::string segment,
                         tokens->ExpectIdentifier("path segment"));
    path.push_back(std::move(segment));
  }
  return path;
}

// ---------------------------------------------------------------------------
// SELECT ... PREDICTION JOIN / SELECT * FROM model.CONTENT
// ---------------------------------------------------------------------------

Result<DmxStatement> ParseDmxSelect(TokenStream* tokens) {
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("SELECT"));
  PredictionJoinStatement stmt;
  stmt.flattened = tokens->MatchKeyword("FLATTENED");
  if (tokens->MatchKeyword("TOP")) {
    const Token& n = tokens->Peek();
    if (n.kind != TokenKind::kLong) {
      return tokens->ErrorHere("expected row count after TOP");
    }
    stmt.top = n.long_value;
    tokens->Next();
  }
  bool star = false;
  if (tokens->MatchPunct("*")) {
    star = true;
  } else {
    while (true) {
      DmxSelectItem item;
      DMX_ASSIGN_OR_RETURN(item.expr, ParseDmxExpr(tokens));
      if (tokens->MatchKeyword("AS")) {
        DMX_ASSIGN_OR_RETURN(item.alias,
                             tokens->ExpectIdentifier("column alias"));
      }
      stmt.items.push_back(std::move(item));
      if (tokens->MatchPunct(",")) {
        if (tokens->Peek().IsKeyword("FROM")) break;  // tolerate trailing ','
        continue;
      }
      break;
    }
  }
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("FROM"));
  stmt.model_span = TokenSpan(tokens->Peek());
  DMX_ASSIGN_OR_RETURN(stmt.model_name, tokens->ExpectIdentifier("model name"));

  // SELECT * FROM <model>.CONTENT
  if (tokens->MatchPunct(".")) {
    DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("CONTENT"));
    if (!star) {
      return tokens->ErrorHere(
          "only 'SELECT * FROM <model>.CONTENT' is supported for content "
          "browsing");
    }
    SelectContentStatement content;
    content.model_name = stmt.model_name;
    content.model_span = stmt.model_span;
    if (tokens->MatchKeyword("WHERE")) {
      DMX_ASSIGN_OR_RETURN(content.where, rel::ParseExpression(tokens));
    }
    return DmxStatement(std::move(content));
  }
  if (star) {
    return tokens->ErrorHere("prediction queries need an explicit SELECT list");
  }

  stmt.natural = tokens->MatchKeyword("NATURAL");
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("PREDICTION"));
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("JOIN"));
  DMX_RETURN_IF_ERROR(tokens->ExpectPunct("("));
  DMX_ASSIGN_OR_RETURN(stmt.source, ParseSource(tokens));
  DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
  if (tokens->MatchKeyword("AS")) {
    stmt.alias_span = TokenSpan(tokens->Peek());
    DMX_ASSIGN_OR_RETURN(stmt.source_alias,
                         tokens->ExpectIdentifier("source alias"));
  } else if (tokens->Peek().kind == TokenKind::kIdentifier &&
             !tokens->Peek().IsKeyword("ON")) {
    stmt.alias_span = TokenSpan(tokens->Peek());
    stmt.source_alias = tokens->Next().text;
  }
  if (tokens->MatchKeyword("ON")) {
    if (stmt.natural) {
      return tokens->ErrorHere("NATURAL PREDICTION JOIN takes no ON clause");
    }
    while (true) {
      OnPair pair;
      DMX_ASSIGN_OR_RETURN(pair.left, ParsePath(tokens));
      DMX_RETURN_IF_ERROR(tokens->ExpectPunct("="));
      DMX_ASSIGN_OR_RETURN(pair.right, ParsePath(tokens));
      stmt.on.push_back(std::move(pair));
      if (!tokens->MatchKeyword("AND")) break;
    }
  } else if (!stmt.natural) {
    return tokens->ErrorHere("PREDICTION JOIN needs an ON clause (or NATURAL)");
  }
  if (tokens->MatchKeyword("WHERE")) {
    while (true) {
      DmxFilter filter;
      DMX_ASSIGN_OR_RETURN(filter.lhs, ParseDmxExpr(tokens));
      static const char* kOps[] = {"=", "<>", "<=", ">=", "<", ">"};
      bool matched = false;
      for (const char* op : kOps) {
        if (tokens->MatchPunct(op)) {
          filter.op = op;
          matched = true;
          break;
        }
      }
      if (!matched) {
        return tokens->ErrorHere("expected a comparison operator in WHERE");
      }
      DMX_ASSIGN_OR_RETURN(filter.rhs, ParseDmxExpr(tokens));
      stmt.where.push_back(std::move(filter));
      if (!tokens->MatchKeyword("AND")) break;
    }
  }
  return DmxStatement(std::move(stmt));
}

// ---------------------------------------------------------------------------
// Classification
// ---------------------------------------------------------------------------

// Scans the token vector to decide whether a SELECT is DMX (prediction join
// or content browse) rather than plain SQL.
bool SelectLooksLikeDmx(const std::vector<Token>& tokens) {
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].IsKeyword("PREDICTION") && tokens[i + 1].IsKeyword("JOIN")) {
      return true;
    }
    if (tokens[i].IsPunct(".") && tokens[i + 1].IsKeyword("CONTENT")) {
      return true;
    }
  }
  return false;
}

// INSERT INTO <name> [(...)] <what>: DMX when <what> is SHAPE / SELECT /
// OPENROWSET, SQL when VALUES.
bool InsertLooksLikeDmx(const std::vector<Token>& tokens) {
  size_t i = 2;  // skip INSERT INTO
  if (i < tokens.size() && tokens[i].kind == TokenKind::kIdentifier) ++i;
  if (i < tokens.size() && tokens[i].IsPunct("(")) {
    int depth = 1;
    ++i;
    while (i < tokens.size() && depth > 0) {
      if (tokens[i].IsPunct("(")) ++depth;
      if (tokens[i].IsPunct(")")) --depth;
      ++i;
    }
  }
  if (i >= tokens.size()) return false;
  return tokens[i].IsKeyword("SHAPE") || tokens[i].IsKeyword("SELECT") ||
         tokens[i].IsKeyword("OPENROWSET");
}

}  // namespace

Result<ModelDefinition> ParseCreateMiningModel(const std::string& text) {
  DMX_ASSIGN_OR_RETURN(std::vector<Token> token_list, Tokenize(text));
  TokenStream tokens(std::move(token_list));
  DMX_RETURN_IF_ERROR(tokens.ExpectKeyword("CREATE"));
  DMX_RETURN_IF_ERROR(tokens.ExpectKeyword("MINING"));
  DMX_RETURN_IF_ERROR(tokens.ExpectKeyword("MODEL"));
  DMX_ASSIGN_OR_RETURN(ModelDefinition def, ParseCreateFrom(&tokens));
  tokens.MatchPunct(";");
  if (!tokens.AtEnd()) {
    return tokens.ErrorHere("unexpected trailing input");
  }
  return def;
}

Result<DmxParseResult> ParseDmx(const std::string& text) {
  DMX_ASSIGN_OR_RETURN(std::vector<Token> token_list, Tokenize(text));
  DmxParseResult result;
  if (token_list.empty()) {
    return ParseError() << "empty command";
  }
  TokenStream tokens(token_list);

  if (tokens.MatchKeywords({"CREATE", "MINING", "MODEL"})) {
    DMX_ASSIGN_OR_RETURN(ModelDefinition def, ParseCreateFrom(&tokens));
    result.statement = CreateModelStatement{std::move(def)};
  } else if (token_list[0].IsKeyword("INSERT")) {
    if (!InsertLooksLikeDmx(token_list)) {
      result.is_sql = true;
      return result;
    }
    tokens.MatchKeywords({"INSERT", "INTO"});
    DMX_ASSIGN_OR_RETURN(InsertIntoStatement stmt, ParseInsertInto(&tokens));
    result.statement = std::move(stmt);
  } else if (token_list[0].IsKeyword("SELECT")) {
    if (!SelectLooksLikeDmx(token_list)) {
      result.is_sql = true;
      return result;
    }
    DMX_ASSIGN_OR_RETURN(DmxStatement stmt, ParseDmxSelect(&tokens));
    result.statement = std::move(stmt);
  } else if (tokens.MatchKeywords({"DROP", "MINING", "MODEL"})) {
    DropModelStatement stmt;
    stmt.model_span = TokenSpan(tokens.Peek());
    DMX_ASSIGN_OR_RETURN(stmt.model_name,
                         tokens.ExpectIdentifier("model name"));
    result.statement = std::move(stmt);
  } else if (tokens.MatchKeywords({"EXPORT", "MINING", "MODEL"})) {
    ExportModelStatement stmt;
    stmt.model_span = TokenSpan(tokens.Peek());
    DMX_ASSIGN_OR_RETURN(stmt.model_name,
                         tokens.ExpectIdentifier("model name"));
    DMX_RETURN_IF_ERROR(tokens.ExpectKeyword("TO"));
    if (tokens.Peek().kind != TokenKind::kString) {
      return tokens.ErrorHere("expected a quoted file path");
    }
    stmt.path = tokens.Next().text;
    result.statement = std::move(stmt);
  } else if (tokens.MatchKeywords({"IMPORT", "MINING", "MODEL"})) {
    ImportModelStatement stmt;
    DMX_RETURN_IF_ERROR(tokens.ExpectKeyword("FROM"));
    if (tokens.Peek().kind != TokenKind::kString) {
      return tokens.ErrorHere("expected a quoted file path");
    }
    stmt.path = tokens.Next().text;
    result.statement = std::move(stmt);
  } else if (token_list[0].IsKeyword("DELETE")) {
    // DELETE FROM <name> with no WHERE may target a model; anything more is
    // SQL. The provider re-routes when <name> is a base table.
    tokens.MatchKeywords({"DELETE", "FROM"});
    SourceSpan name_span = TokenSpan(tokens.Peek());
    auto name = tokens.ExpectIdentifier("name");
    if (name.ok() && (tokens.AtEnd() || tokens.Peek().IsPunct(";"))) {
      DeleteFromModelStatement stmt;
      stmt.model_name = std::move(name).value();
      stmt.model_span = name_span;
      result.statement = std::move(stmt);
      return result;
    }
    result.is_sql = true;
    return result;
  } else {
    result.is_sql = true;
    return result;
  }
  tokens.MatchPunct(";");
  if (!tokens.AtEnd()) {
    return tokens.ErrorHere("unexpected trailing input");
  }
  return result;
}

}  // namespace dmx
