#include "server/client.h"

#include <algorithm>
#include <utility>

namespace dmx::server {

DmxClient::DmxClient(std::unique_ptr<Transport> transport,
                     ClientOptions options, RetryClock* clock)
    : transport_(std::move(transport)),
      options_(std::move(options)),
      clock_(clock != nullptr ? clock : &system_clock_),
      jitter_(options_.retry.jitter_seed) {}

DmxClient::~DmxClient() { Close(); }

Result<std::unique_ptr<DmxClient>> DmxClient::Connect(const std::string& host,
                                                      uint16_t port,
                                                      ClientOptions options,
                                                      RetryClock* clock) {
  Result<std::unique_ptr<Transport>> transport =
      ConnectTcp(host, port, options.connect_timeout_ms);
  if (!transport.ok()) {
    return transport.status().WithContext("connecting to DMX server");
  }
  auto client = std::unique_ptr<DmxClient>(
      new DmxClient(std::move(*transport), std::move(options), clock));
  client->host_ = host;
  client->port_ = port;
  client->can_reconnect_ = true;
  Status handshake = client->DoHandshake();
  if (!handshake.ok()) {
    return handshake.WithContext("handshaking with DMX server");
  }
  return client;
}

Result<std::unique_ptr<DmxClient>> DmxClient::Handshake(
    std::unique_ptr<Transport> transport, ClientOptions options,
    RetryClock* clock) {
  auto client = std::unique_ptr<DmxClient>(
      new DmxClient(std::move(transport), std::move(options), clock));
  Status handshake = client->DoHandshake();
  if (!handshake.ok()) {
    return handshake.WithContext("handshaking with DMX server");
  }
  return client;
}

Status DmxClient::DoHandshake() {
  HelloBody hello;
  hello.tenant = options_.tenant;
  DMX_RETURN_IF_ERROR(
      transport_->Write(EncodeFrame(FrameType::kHello, EncodeHello(hello)),
                        options_.io_timeout_ms));
  FrameReader reader(transport_.get());
  Result<std::optional<Frame>> frame = reader.Next(options_.io_timeout_ms);
  if (!frame.ok()) {
    return frame.status().WithContext("awaiting HelloAck");
  }
  if (!frame->has_value()) {
    return Unavailable() << "server closed the connection during handshake";
  }
  if ((*frame)->type == FrameType::kDone) {
    // The server refused the handshake with a typed error.
    Result<DoneBody> done = DecodeDone((*frame)->body);
    if (done.ok()) return done->ToStatus().WithContext("handshake refused");
    return done.status().WithContext("decoding handshake refusal");
  }
  if ((*frame)->type != FrameType::kHelloAck) {
    return Corruption() << "expected HelloAck, got frame type '"
                        << static_cast<char>((*frame)->type) << "'";
  }
  Result<HelloAckBody> ack = DecodeHelloAck((*frame)->body);
  if (!ack.ok()) return ack.status().WithContext("decoding HelloAck");
  if (ack->version != kProtocolVersion) {
    return NotSupported() << "server speaks protocol version "
                          << ack->version << ", this client speaks "
                          << kProtocolVersion;
  }
  session_id_ = ack->session_id;
  broken_ = false;
  return Status::OK();
}

Status DmxClient::Reconnect() {
  if (!can_reconnect_) {
    return Unavailable() << "session transport is broken and this client "
                            "cannot reconnect (adopted transport)";
  }
  transport_->Close();
  Result<std::unique_ptr<Transport>> transport =
      ConnectTcp(host_, port_, options_.connect_timeout_ms);
  if (!transport.ok()) {
    return transport.status().WithContext("reconnecting to DMX server");
  }
  transport_ = std::move(*transport);
  return DoHandshake().WithContext("re-handshaking after reconnect");
}

Result<Rowset> DmxClient::Execute(const std::string& statement,
                                  uint64_t deadline_ms) {
  if (closed_) return InvalidState() << "Execute on a closed client";
  last_attempts_ = 0;
  last_backoff_ms_ = 0;
  Status last_error = Internal() << "retry loop never ran";
  for (int attempt = 1; attempt <= options_.retry.max_attempts; ++attempt) {
    last_attempts_ = attempt;
    if (broken_) {
      Status reconnected = Reconnect();
      if (!reconnected.ok()) {
        // Reconnects target connection-refused blips; anything else (or an
        // adopted transport) ends the retry loop — nothing was sent.
        return reconnected;
      }
    }
    DoneBody done;
    bool consumed_response = false;
    Result<Rowset> result =
        ExecuteOnce(statement, deadline_ms, &done, &consumed_response);
    if (result.ok()) return result;
    last_error = result.status();

    // The retry gate. `done.retryable` is the server's explicit guarantee
    // that execution never began; everything else — transport errors after
    // the send, decode errors, mid-stream failures — must not be retried
    // (the statement may have executed).
    bool retryable = done.retryable && !consumed_response;
    if (!retryable || attempt == options_.retry.max_attempts) {
      return last_error;
    }
    int backoff = options_.retry.initial_backoff_ms;
    for (int i = 1; i < attempt; ++i) {
      backoff = std::min(backoff * 2, options_.retry.max_backoff_ms);
    }
    // Full jitter over [backoff/2, backoff], floored at the server's hint.
    int jittered =
        backoff / 2 +
        static_cast<int>(jitter_.Uniform(
            static_cast<uint64_t>(backoff - backoff / 2) + 1));
    jittered = std::max(jittered, static_cast<int>(done.retry_after_ms));
    last_backoff_ms_ += jittered;
    clock_->SleepMs(jittered);
  }
  return last_error;
}

Result<Rowset> DmxClient::ExecuteOnce(const std::string& statement,
                                      uint64_t deadline_ms, DoneBody* done,
                                      bool* consumed_response) {
  RequestBody request;
  request.request_id = next_request_id_++;
  request.deadline_ms = deadline_ms;
  request.statement = statement;
  Status sent = transport_->Write(
      EncodeFrame(FrameType::kRequest, EncodeRequest(request)),
      options_.io_timeout_ms);
  if (!sent.ok()) {
    broken_ = true;
    return sent.WithContext("sending request");
  }

  // Receive budget: the statement deadline plus slack for queueing jitter,
  // or the io timeout when no deadline rides the request.
  int receive_timeout = options_.io_timeout_ms;
  if (deadline_ms > 0) {
    receive_timeout = static_cast<int>(
        std::min<uint64_t>(deadline_ms + 2'000,
                           static_cast<uint64_t>(options_.io_timeout_ms)));
  }

  FrameReader reader(transport_.get());
  std::shared_ptr<const Schema> schema;
  std::vector<Row> rows;
  while (true) {
    Result<std::optional<Frame>> next = reader.Next(receive_timeout);
    if (!next.ok()) {
      broken_ = true;
      return next.status().WithContext("reading response");
    }
    if (!next->has_value()) {
      broken_ = true;
      return Unavailable() << "server closed the connection mid-response";
    }
    Frame frame = std::move(**next);
    switch (frame.type) {
      case FrameType::kSchema: {
        Result<SchemaBody> body = DecodeSchemaBody(frame.body);
        if (!body.ok()) {
          broken_ = true;
          return body.status().WithContext("decoding response schema");
        }
        if (body->request_id != request.request_id) {
          broken_ = true;
          return Corruption() << "response for request " << body->request_id
                              << " while awaiting " << request.request_id;
        }
        *consumed_response = true;
        schema = body->schema;
        continue;
      }
      case FrameType::kChunk: {
        Result<ChunkBody> body = DecodeChunk(frame.body);
        if (!body.ok()) {
          broken_ = true;
          return body.status().WithContext("decoding response chunk");
        }
        if (body->request_id != request.request_id) {
          broken_ = true;
          return Corruption() << "response for request " << body->request_id
                              << " while awaiting " << request.request_id;
        }
        *consumed_response = true;
        for (Row& row : body->rows) rows.push_back(std::move(row));
        continue;
      }
      case FrameType::kDone: {
        Result<DoneBody> body = DecodeDone(frame.body);
        if (!body.ok()) {
          broken_ = true;
          return body.status().WithContext("decoding terminal frame");
        }
        // A Done for an *older* request can only mean the server and
        // client disagree about the stream position: poison the session.
        if (body->request_id != request.request_id &&
            body->request_id != 0) {
          broken_ = true;
          return Corruption() << "terminal frame for request "
                              << body->request_id << " while awaiting "
                              << request.request_id;
        }
        *done = std::move(*body);
        Status status = done->ToStatus();
        if (!status.ok()) return status;
        if (schema == nullptr) schema = Schema::Make({});
        return Rowset(std::move(schema), std::move(rows));
      }
      default:
        broken_ = true;
        return Corruption() << "unexpected frame type '"
                            << static_cast<char>(frame.type)
                            << "' in response stream";
    }
  }
}

void DmxClient::Close() {
  if (closed_) return;
  closed_ = true;
  if (!broken_) {
    (void)transport_->Write(EncodeFrame(FrameType::kGoodbye, ""),
                            /*timeout_ms=*/1'000);
  }
  transport_->ShutdownWrite();
  transport_->Close();
}

}  // namespace dmx::server
