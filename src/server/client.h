// DmxClient: the in-repo client of the serving front end (dmxsh --connect
// and the server tests). One client is one session: a Transport, a
// handshake, then serial Execute calls.
//
// Retry contract (DESIGN.md §13): an attempt is retried ONLY when it is
// provably side-effect free —
//   * ConnectTcp found nothing listening (kUnavailable: nothing was sent);
//   * the server answered a Done frame with `retryable` set, which it does
//     only for rejections made *before* execution began (admission quota,
//     drain refusal).
// A transport error after the request was sent, or any error after a
// response frame was consumed, is NEVER retried: the statement may have
// executed, and re-running DDL/DML would double-apply it. Backoff between
// attempts is exponential with jitter, floored at the server's
// retry-after hint, and sleeps through the injectable RetryClock (bare
// sleep_for is banned in src/ — dmx_lint raw-sleep).

#ifndef DMX_SERVER_CLIENT_H_
#define DMX_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/random.h"
#include "common/rowset.h"
#include "common/status.h"
#include "server/transport.h"
#include "server/wire.h"

namespace dmx::server {

struct RetryPolicy {
  int max_attempts = 4;           ///< Total tries, first included.
  int initial_backoff_ms = 50;    ///< Doubled per retry...
  int max_backoff_ms = 2'000;     ///< ...up to this cap.
  uint64_t jitter_seed = 1;       ///< Deterministic jitter (tests).
};

struct ClientOptions {
  std::string tenant;
  int connect_timeout_ms = 5'000;
  /// Per-frame receive/send budget while a response streams.
  int io_timeout_ms = 30'000;
  RetryPolicy retry;
};

/// \brief One client session. NOT thread-safe — open one per thread, like
/// Connection.
class DmxClient {
 public:
  ~DmxClient();
  DmxClient(const DmxClient&) = delete;
  DmxClient& operator=(const DmxClient&) = delete;

  /// Connects over TCP and performs the handshake. `clock` (borrowed, may
  /// be nullptr for the system clock) paces retry backoff.
  static Result<std::unique_ptr<DmxClient>> Connect(
      const std::string& host, uint16_t port, ClientOptions options,
      RetryClock* clock = nullptr);

  /// Adopts an already-connected transport (in-memory pipes in tests) and
  /// performs the handshake. Such a client cannot reconnect, so only
  /// server-side retryable rejections are retried.
  static Result<std::unique_ptr<DmxClient>> Handshake(
      std::unique_ptr<Transport> transport, ClientOptions options,
      RetryClock* clock = nullptr);

  /// Executes one statement, retrying per the policy. `deadline_ms` rides
  /// the frame header and becomes the server-side guard deadline (0 = no
  /// deadline).
  Result<Rowset> Execute(const std::string& statement,
                         uint64_t deadline_ms = 0);

  uint64_t session_id() const { return session_id_; }
  /// Attempts consumed by the last Execute (tests assert retry schedules).
  int last_attempts() const { return last_attempts_; }
  /// Backoff actually slept by the last Execute, in ms (tests).
  int last_backoff_ms() const { return last_backoff_ms_; }

  /// Sends Goodbye and half-closes. Idempotent; also run by the dtor.
  void Close();

 private:
  DmxClient(std::unique_ptr<Transport> transport, ClientOptions options,
            RetryClock* clock);

  /// Hello/HelloAck over the current transport.
  Status DoHandshake();
  /// Tears down and re-establishes the TCP transport + handshake.
  Status Reconnect();

  /// One attempt: send the request, consume Schema/Chunk*/Done.
  /// `*done` carries the terminal frame when the server produced one;
  /// `*consumed_response` flips as soon as any response frame for this
  /// request arrives (the no-retry-after-partial-consumption latch).
  Result<Rowset> ExecuteOnce(const std::string& statement,
                             uint64_t deadline_ms, DoneBody* done,
                             bool* consumed_response);

  std::unique_ptr<Transport> transport_;
  ClientOptions options_;
  RetryClock* clock_;  ///< Borrowed; falls back to system_clock_.
  SystemRetryClock system_clock_;
  Rng jitter_;

  std::string host_;  ///< Set only for Connect()-made clients (reconnect).
  uint16_t port_ = 0;
  bool can_reconnect_ = false;

  uint64_t session_id_ = 0;
  uint64_t next_request_id_ = 1;
  bool broken_ = false;  ///< Transport no longer frame-aligned.
  bool closed_ = false;
  int last_attempts_ = 0;
  int last_backoff_ms_ = 0;
};

}  // namespace dmx::server

#endif  // DMX_SERVER_CLIENT_H_
