// DmxServer: the multi-session network front end over Provider (ROADMAP
// item 3, DESIGN.md §13). One accept thread plus one thread per session;
// each session speaks the framed protocol of wire.h over a Transport, so
// the whole server is testable against in-memory pipes and injected
// faults without a socket.
//
// Robustness contract:
//   * A malformed, torn or hostile byte stream terminates *that session*
//     with a well-formed error (or a disconnect once framing is lost) —
//     never the server.
//   * The request deadline in the frame header arms the statement's
//     ExecGuard *and* bounds response streaming, so one number covers
//     queueing + execution + the writes back to the client.
//   * A stalled reader trips the per-write send budget (write timeout) and
//     the session is dropped instead of buffering without bound.
//   * Drain (SIGTERM in dmxsh --serve) runs the state machine: stop
//     accepting -> refuse new statements with retryable kUnavailable ->
//     grace period for in-flight statements -> cancel stragglers through
//     their CancelToken -> join sessions -> checkpoint the store.

#ifndef DMX_SERVER_SERVER_H_
#define DMX_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_guard.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "core/provider.h"
#include "server/transport.h"
#include "server/wire.h"

namespace dmx::server {

struct ServerOptions {
  std::string host;  ///< Bind address, empty = 127.0.0.1.
  uint16_t port = 0;  ///< 0 = ephemeral (tests); port() reports the result.
  /// A session with no complete frame for this long is dropped.
  int idle_timeout_ms = 60'000;
  /// Per-write send budget: a client that cannot drain a response write
  /// within this bound is a stalled reader and loses its session.
  int write_timeout_ms = 10'000;
  /// Drain: how long in-flight statements get to finish before their
  /// CancelTokens fire.
  int drain_grace_ms = 2'000;
  /// Rows per Chunk frame when streaming a result.
  size_t chunk_rows = 256;
  /// Cumulative response-byte budget per session, 0 = unlimited. A session
  /// exceeding it gets kResourceExhausted and is closed — the cap that
  /// keeps one pathological client from monopolizing the write path.
  uint64_t max_session_send_bytes = 0;
};

/// \brief The serving front end. Owns the listener, the accept thread and
/// every session thread; `provider` must outlive the server.
class DmxServer {
 public:
  DmxServer(Provider* provider, ServerOptions options);
  ~DmxServer();

  DmxServer(const DmxServer&) = delete;
  DmxServer& operator=(const DmxServer&) = delete;

  /// Binds the listener and starts accepting. Fails with the bind error
  /// (port taken, sandboxed environment) without touching the provider.
  Status Start();

  /// The bound port (valid after Start; the ephemeral answer for port 0).
  uint16_t port() const { return port_; }

  /// Flags the drain state machine from any thread (async-signal-safe: one
  /// atomic store). New statements are refused with retryable
  /// kUnavailable; Drain() completes the shutdown.
  void RequestDrain() { draining_.store(true, std::memory_order_release); }
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  /// Graceful drain to completion: stop accepting, give in-flight
  /// statements `drain_grace_ms`, cancel stragglers via their CancelToken,
  /// join every session, checkpoint the store (when one is attached).
  /// Idempotent; also runs from the destructor as a last resort.
  Status Drain();

  /// \brief Serves one already-connected transport on the calling thread
  /// until the session ends (tests and the fuzz harness drive hostile
  /// byte streams through here without a listener).
  void ServeConnection(std::unique_ptr<Transport> transport);

  /// Leak/health counters for tests: after every client disconnects,
  /// sessions_closed == sessions_opened.
  struct Stats {
    uint64_t sessions_opened = 0;
    uint64_t sessions_closed = 0;
    uint64_t statements_ok = 0;
    uint64_t statements_failed = 0;
    uint64_t frames_rejected = 0;  ///< Sessions killed by protocol errors.
  };
  Stats stats() const;

 private:
  struct Session {
    uint64_t id = 0;
    std::string tenant;
    std::thread thread;
    std::atomic<bool> done{false};
    /// The in-flight statement's cancel token, set for the duration of one
    /// Execute; Drain() fires it to reclaim a straggler session.
    std::shared_ptr<CancelToken> cancel;
    Mutex mu{"server.session.mu"};  ///< Guards `cancel` only.
  };

  void AcceptLoop();
  /// The per-session protocol loop (body of ServeConnection).
  void RunSession(Session* session, Transport* transport);
  /// Executes one Request and streams Schema/Chunk/Done. Returns false
  /// when the session must end (write failure / budget exhausted).
  bool HandleRequest(Session* session, Transport* transport,
                     const RequestBody& request, uint64_t* sent_bytes);
  /// Joins finished session threads (accept loop housekeeping + drain).
  void ReapSessions(bool all) DMX_EXCLUDES(sessions_mu_);

  Provider* provider_;
  ServerOptions options_;
  std::unique_ptr<TcpListener> listener_;
  uint16_t port_ = 0;
  std::thread accept_thread_;
  std::atomic<bool> draining_{false};
  std::atomic<bool> stopped_{false};
  std::atomic<uint64_t> next_session_id_{1};

  mutable Mutex sessions_mu_{"server.sessions_mu"};
  /// Never held across Execute or a transport write: sessions register /
  /// deregister only (lockdep class "server.sessions_mu").
  std::vector<std::unique_ptr<Session>> sessions_ DMX_GUARDED_BY(sessions_mu_);

  mutable Mutex stats_mu_{"server.stats_mu"};
  Stats stats_ DMX_GUARDED_BY(stats_mu_);
};

}  // namespace dmx::server

#endif  // DMX_SERVER_SERVER_H_
