#include "server/wire.h"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/nested_table.h"
#include "server/transport.h"
#include "store/crc32c.h"
#include "store/log_format.h"

namespace dmx::server {

namespace {

using store::GetFixed32;
using store::GetFixed64;
using store::GetLengthPrefixed;
using store::PutFixed32;
using store::PutFixed64;
using store::PutLengthPrefixed;

// Same masking as the store's record framing (store/log_format.cc): the
// value on the wire is never the raw CRC of its input, and the length word
// is covered, so a zero run can never frame as a valid record.
constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

uint32_t FrameCrc(uint32_t size, std::string_view payload) {
  std::string size_bytes;
  PutFixed32(&size_bytes, size);
  uint32_t crc = store::Crc32cExtend(0, size_bytes.data(), size_bytes.size());
  crc = store::Crc32cExtend(crc, payload.data(), payload.size());
  return MaskCrc(crc);
}

// Nesting bound for recursive schema/value decoding: deeper than any real
// caseset, shallow enough that hostile input cannot overflow the stack.
constexpr int kMaxWireDepth = 16;

// DataType <-> wire tag. The tag is NOT the enum value: the enum may be
// reordered freely, the wire may not.
constexpr uint8_t kTypeTagBool = 1;
constexpr uint8_t kTypeTagLong = 2;
constexpr uint8_t kTypeTagDouble = 3;
constexpr uint8_t kTypeTagText = 4;
constexpr uint8_t kTypeTagTable = 5;

uint8_t TypeToTag(DataType type) {
  switch (type) {
    case DataType::kBool: return kTypeTagBool;
    case DataType::kLong: return kTypeTagLong;
    case DataType::kDouble: return kTypeTagDouble;
    case DataType::kText: return kTypeTagText;
    case DataType::kTable: return kTypeTagTable;
  }
  return kTypeTagText;
}

bool TagToType(uint8_t tag, DataType* out) {
  switch (tag) {
    case kTypeTagBool: *out = DataType::kBool; return true;
    case kTypeTagLong: *out = DataType::kLong; return true;
    case kTypeTagDouble: *out = DataType::kDouble; return true;
    case kTypeTagText: *out = DataType::kText; return true;
    case kTypeTagTable: *out = DataType::kTable; return true;
    default: return false;
  }
}

// Value kind tags.
constexpr uint8_t kValueTagNull = 0;
constexpr uint8_t kValueTagBool = 1;
constexpr uint8_t kValueTagLong = 2;
constexpr uint8_t kValueTagDouble = 3;
constexpr uint8_t kValueTagText = 4;
constexpr uint8_t kValueTagTable = 5;

bool GetByte(std::string_view* src, uint8_t* out) {
  if (src->empty()) return false;
  *out = static_cast<uint8_t>((*src)[0]);
  src->remove_prefix(1);
  return true;
}

/// Decodes a row of `num_columns` self-describing values.
bool DecodeWireRow(std::string_view* src, size_t num_columns, Row* out,
                   int depth) {
  out->clear();
  for (size_t i = 0; i < num_columns; ++i) {
    Value value;
    if (!DecodeWireValue(src, &value, depth)) return false;
    out->push_back(std::move(value));
  }
  return true;
}

}  // namespace

void EncodeWireSchema(std::string* dst, const Schema& schema) {
  PutFixed32(dst, static_cast<uint32_t>(schema.num_columns()));
  for (const ColumnDef& col : schema.columns()) {
    dst->push_back(static_cast<char>(TypeToTag(col.type)));
    PutLengthPrefixed(dst, col.name);
    if (col.type == DataType::kTable) {
      // A TABLE column always carries its nested schema (possibly empty).
      static const Schema kEmpty;
      EncodeWireSchema(dst, col.nested != nullptr ? *col.nested : kEmpty);
    }
  }
}

bool DecodeWireSchema(std::string_view* src,
                      std::shared_ptr<const Schema>* out, int depth) {
  if (depth > kMaxWireDepth) return false;
  uint32_t num_columns = 0;
  if (!GetFixed32(src, &num_columns)) return false;
  // Each column consumes >= 5 bytes, so a huge declared count fails here
  // before any allocation can be sized from it.
  if (static_cast<uint64_t>(num_columns) * 5 > src->size()) return false;
  std::vector<ColumnDef> columns;
  columns.reserve(num_columns);
  for (uint32_t i = 0; i < num_columns; ++i) {
    uint8_t tag = 0;
    std::string_view name;
    DataType type = DataType::kText;
    if (!GetByte(src, &tag) || !TagToType(tag, &type) ||
        !GetLengthPrefixed(src, &name)) {
      return false;
    }
    if (type == DataType::kTable) {
      std::shared_ptr<const Schema> nested;
      if (!DecodeWireSchema(src, &nested, depth + 1)) return false;
      columns.emplace_back(std::string(name), std::move(nested));
    } else {
      columns.emplace_back(std::string(name), type);
    }
  }
  *out = Schema::Make(std::move(columns));
  return true;
}

void EncodeWireValue(std::string* dst, const Value& value) {
  switch (value.kind()) {
    case Value::Kind::kNull:
      dst->push_back(static_cast<char>(kValueTagNull));
      return;
    case Value::Kind::kBool:
      dst->push_back(static_cast<char>(kValueTagBool));
      dst->push_back(value.bool_value() ? '\1' : '\0');
      return;
    case Value::Kind::kLong:
      dst->push_back(static_cast<char>(kValueTagLong));
      PutFixed64(dst, static_cast<uint64_t>(value.long_value()));
      return;
    case Value::Kind::kDouble: {
      dst->push_back(static_cast<char>(kValueTagDouble));
      double d = value.double_value();
      uint64_t bits = 0;
      static_assert(sizeof(bits) == sizeof(d));
      std::memcpy(&bits, &d, sizeof(bits));
      PutFixed64(dst, bits);
      return;
    }
    case Value::Kind::kText:
      dst->push_back(static_cast<char>(kValueTagText));
      PutLengthPrefixed(dst, value.text_value());
      return;
    case Value::Kind::kTable: {
      dst->push_back(static_cast<char>(kValueTagTable));
      const auto& table = value.table_value();
      static const Schema kEmpty;
      const Schema& schema =
          table != nullptr && table->schema() != nullptr ? *table->schema()
                                                         : kEmpty;
      EncodeWireSchema(dst, schema);
      uint32_t rows = table != nullptr
                          ? static_cast<uint32_t>(table->num_rows())
                          : 0;
      PutFixed32(dst, rows);
      if (table != nullptr) {
        for (const Row& row : table->rows()) {
          for (const Value& cell : row) EncodeWireValue(dst, cell);
        }
      }
      return;
    }
  }
}

bool DecodeWireValue(std::string_view* src, Value* out, int depth) {
  if (depth > kMaxWireDepth) return false;
  uint8_t tag = 0;
  if (!GetByte(src, &tag)) return false;
  switch (tag) {
    case kValueTagNull:
      *out = Value::Null();
      return true;
    case kValueTagBool: {
      uint8_t b = 0;
      if (!GetByte(src, &b)) return false;
      *out = Value::Bool(b != 0);
      return true;
    }
    case kValueTagLong: {
      uint64_t bits = 0;
      if (!GetFixed64(src, &bits)) return false;
      *out = Value::Long(static_cast<int64_t>(bits));
      return true;
    }
    case kValueTagDouble: {
      uint64_t bits = 0;
      if (!GetFixed64(src, &bits)) return false;
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      *out = Value::Double(d);
      return true;
    }
    case kValueTagText: {
      std::string_view text;
      if (!GetLengthPrefixed(src, &text)) return false;
      *out = Value::Text(std::string(text));
      return true;
    }
    case kValueTagTable: {
      std::shared_ptr<const Schema> schema;
      if (!DecodeWireSchema(src, &schema, depth + 1)) return false;
      uint32_t num_rows = 0;
      if (!GetFixed32(src, &num_rows)) return false;
      // A row with zero columns consumes no bytes, so a huge row count over
      // an empty schema would loop without progress: reject it up front.
      if (schema->num_columns() == 0 && num_rows > 0) return false;
      if (static_cast<uint64_t>(num_rows) * schema->num_columns() >
          src->size()) {
        return false;
      }
      std::vector<Row> rows;
      rows.reserve(num_rows);
      for (uint32_t i = 0; i < num_rows; ++i) {
        Row row;
        if (!DecodeWireRow(src, schema->num_columns(), &row, depth + 1)) {
          return false;
        }
        rows.push_back(std::move(row));
      }
      *out = Value::Table(NestedTable::Make(std::move(schema),
                                            std::move(rows)));
      return true;
    }
    default:
      return false;
  }
}

Status DoneBody::ToStatus() const {
  if (code == StatusCode::kOk) return Status::OK();
  Status status(code, message);
  // WithContext appends innermost-first, so reattach in stored order.
  for (const std::string& frame : context) {
    status = status.WithContext(frame);
  }
  return status;
}

void DoneBody::SetStatus(const Status& status) {
  code = status.code();
  message = status.message();
  context = status.context();
}

std::string EncodeFrame(FrameType type, std::string_view body) {
  std::string payload;
  payload.reserve(1 + body.size());
  payload.push_back(static_cast<char>(type));
  payload.append(body);
  std::string out;
  out.reserve(8 + payload.size());
  PutFixed32(&out, static_cast<uint32_t>(payload.size()));
  PutFixed32(&out, FrameCrc(static_cast<uint32_t>(payload.size()), payload));
  out.append(payload);
  return out;
}

std::string EncodeHello(const HelloBody& hello) {
  std::string out;
  PutFixed32(&out, hello.version);
  PutLengthPrefixed(&out, hello.tenant);
  return out;
}

Result<HelloBody> DecodeHello(std::string_view body) {
  HelloBody hello;
  std::string_view tenant;
  if (!GetFixed32(&body, &hello.version) ||
      !GetLengthPrefixed(&body, &tenant)) {
    return Corruption() << "malformed Hello frame";
  }
  hello.tenant = std::string(tenant);
  return hello;
}

std::string EncodeHelloAck(const HelloAckBody& ack) {
  std::string out;
  PutFixed32(&out, ack.version);
  PutFixed64(&out, ack.session_id);
  return out;
}

Result<HelloAckBody> DecodeHelloAck(std::string_view body) {
  HelloAckBody ack;
  if (!GetFixed32(&body, &ack.version) ||
      !GetFixed64(&body, &ack.session_id)) {
    return Corruption() << "malformed HelloAck frame";
  }
  return ack;
}

std::string EncodeRequest(const RequestBody& request) {
  std::string out;
  PutFixed64(&out, request.request_id);
  PutFixed64(&out, request.deadline_ms);
  PutLengthPrefixed(&out, request.statement);
  return out;
}

Result<RequestBody> DecodeRequest(std::string_view body) {
  RequestBody request;
  std::string_view statement;
  if (!GetFixed64(&body, &request.request_id) ||
      !GetFixed64(&body, &request.deadline_ms) ||
      !GetLengthPrefixed(&body, &statement)) {
    return Corruption() << "malformed Request frame";
  }
  request.statement = std::string(statement);
  return request;
}

std::string EncodeCancel(const CancelBody& cancel) {
  std::string out;
  PutFixed64(&out, cancel.request_id);
  return out;
}

Result<CancelBody> DecodeCancel(std::string_view body) {
  CancelBody cancel;
  if (!GetFixed64(&body, &cancel.request_id)) {
    return Corruption() << "malformed Cancel frame";
  }
  return cancel;
}

std::string EncodeSchemaBody(const SchemaBody& schema) {
  std::string out;
  PutFixed64(&out, schema.request_id);
  static const Schema kEmpty;
  EncodeWireSchema(&out,
                   schema.schema != nullptr ? *schema.schema : kEmpty);
  return out;
}

Result<SchemaBody> DecodeSchemaBody(std::string_view body) {
  SchemaBody schema;
  if (!GetFixed64(&body, &schema.request_id) ||
      !DecodeWireSchema(&body, &schema.schema)) {
    return Corruption() << "malformed Schema frame";
  }
  return schema;
}

std::string EncodeChunk(const ChunkBody& chunk) {
  std::string out;
  PutFixed64(&out, chunk.request_id);
  PutFixed32(&out, static_cast<uint32_t>(chunk.rows.size()));
  for (const Row& row : chunk.rows) {
    PutFixed32(&out, static_cast<uint32_t>(row.size()));
    for (const Value& cell : row) EncodeWireValue(&out, cell);
  }
  return out;
}

Result<ChunkBody> DecodeChunk(std::string_view body) {
  ChunkBody chunk;
  uint32_t num_rows = 0;
  if (!GetFixed64(&body, &chunk.request_id) ||
      !GetFixed32(&body, &num_rows)) {
    return Corruption() << "malformed Chunk frame";
  }
  // Each row header is 4 bytes, so a hostile count fails before allocation.
  if (static_cast<uint64_t>(num_rows) * 4 > body.size()) {
    return Corruption() << "Chunk row count exceeds frame size";
  }
  chunk.rows.reserve(num_rows);
  for (uint32_t i = 0; i < num_rows; ++i) {
    uint32_t num_cells = 0;
    if (!GetFixed32(&body, &num_cells)) {
      return Corruption() << "malformed Chunk row header";
    }
    if (static_cast<uint64_t>(num_cells) > body.size()) {
      return Corruption() << "Chunk cell count exceeds frame size";
    }
    Row row;
    row.reserve(num_cells);
    for (uint32_t j = 0; j < num_cells; ++j) {
      Value value;
      if (!DecodeWireValue(&body, &value)) {
        return Corruption() << "malformed Chunk value";
      }
      row.push_back(std::move(value));
    }
    chunk.rows.push_back(std::move(row));
  }
  return chunk;
}

std::string EncodeDone(const DoneBody& done) {
  std::string out;
  PutFixed64(&out, done.request_id);
  PutFixed32(&out, static_cast<uint32_t>(done.code));
  out.push_back(done.retryable ? '\1' : '\0');
  PutFixed32(&out, done.retry_after_ms);
  PutLengthPrefixed(&out, done.message);
  PutFixed32(&out, static_cast<uint32_t>(done.context.size()));
  for (const std::string& frame : done.context) {
    PutLengthPrefixed(&out, frame);
  }
  return out;
}

Result<DoneBody> DecodeDone(std::string_view body) {
  DoneBody done;
  uint32_t code = 0;
  uint8_t retryable = 0;
  std::string_view message;
  uint32_t num_context = 0;
  if (!GetFixed64(&body, &done.request_id) || !GetFixed32(&body, &code) ||
      !GetByte(&body, &retryable) || !GetFixed32(&body, &done.retry_after_ms) ||
      !GetLengthPrefixed(&body, &message) ||
      !GetFixed32(&body, &num_context)) {
    return Corruption() << "malformed Done frame";
  }
  if (code >= static_cast<uint32_t>(kStatusCodeCount)) {
    return Corruption() << "Done frame carries unknown status code " << code;
  }
  if (static_cast<uint64_t>(num_context) * 4 > body.size()) {
    return Corruption() << "Done context count exceeds frame size";
  }
  done.code = static_cast<StatusCode>(code);
  done.retryable = retryable != 0;
  done.message = std::string(message);
  done.context.reserve(num_context);
  for (uint32_t i = 0; i < num_context; ++i) {
    std::string_view frame;
    if (!GetLengthPrefixed(&body, &frame)) {
      return Corruption() << "malformed Done context frame";
    }
    done.context.emplace_back(frame);
  }
  return done;
}

Result<std::optional<Frame>> FrameReader::Next(int timeout_ms) {
  const auto start = std::chrono::steady_clock::now();
  auto remaining = [&]() -> int {
    auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    int left = timeout_ms - static_cast<int>(elapsed);
    return left > 0 ? left : 0;
  };

  char buf[4096];
  while (true) {
    // How many bytes does the in-progress frame still need?
    size_t want;
    if (pending_.size() < 8) {
      want = 8 - pending_.size();
    } else {
      std::string_view header(pending_.data(), 4);
      uint32_t payload_size = 0;
      (void)store::GetFixed32(&header, &payload_size);
      if (payload_size > max_payload_ || payload_size == 0) {
        return Corruption()
               << "frame header declares " << payload_size
               << " payload bytes (max " << max_payload_ << ")";
      }
      size_t total = 8 + payload_size;
      if (pending_.size() >= total) {
        // Frame complete: verify and strip.
        std::string_view payload(pending_.data() + 8, payload_size);
        std::string_view crc_bytes(pending_.data() + 4, 4);
        uint32_t stored_crc = 0;
        (void)store::GetFixed32(&crc_bytes, &stored_crc);
        if (stored_crc != FrameCrc(payload_size, payload)) {
          return Corruption() << "frame checksum mismatch (torn or corrupt "
                                 "frame)";
        }
        Frame frame;
        frame.type = static_cast<FrameType>(payload[0]);
        frame.body.assign(payload.data() + 1, payload.size() - 1);
        pending_.erase(0, total);
        return std::optional<Frame>(std::move(frame));
      }
      want = total - pending_.size();
    }
    if (want > sizeof(buf)) want = sizeof(buf);

    int left = remaining();
    if (left == 0 && timeout_ms > 0) {
      return DeadlineExceeded() << "no complete frame within " << timeout_ms
                                << " ms";
    }
    Result<size_t> n = transport_->Read(buf, want, left);
    if (!n.ok()) return n.status();
    if (*n == 0) {
      if (pending_.empty()) return std::optional<Frame>();  // Clean EOF.
      return Corruption() << "connection closed mid-frame ("
                          << pending_.size() << " bytes into the frame)";
    }
    pending_.append(buf, *n);
    bytes_read_ += *n;
  }
}

}  // namespace dmx::server
