// Wire protocol of the serving front end: a length-prefixed, CRC-framed
// request/response exchange carrying DMX statements in and streamed rowset
// chunks out (DESIGN.md §13).
//
// Every frame is
//
//   [u32 payload_size][u32 masked_crc][payload bytes]        (little-endian)
//
// — the durable store's record framing (store/log_format.h) reused on the
// network: masked CRC32C over the size word and the payload, so an all-zero
// run never frames as a valid record and a torn frame is always detected.
// The first payload byte is the frame type; the rest is the type-specific
// body encoded with the store's fixed/length-prefixed primitives.
//
// Conversation shape:
//
//   client                         server
//   ------                         ------
//   Hello{version, tenant}    ->
//                             <-   HelloAck{version, session_id}
//   Request{id, deadline, stmt} ->
//                             <-   Schema{id, schema}          (rowset opens)
//                             <-   Chunk{id, rows}*            (streamed)
//                             <-   Done{id, status, retry hint} (terminal)
//   Goodbye{}                 ->                               (half-close)
//
// The request deadline travels in the frame header (milliseconds of budget)
// and arms the server-side ExecGuard, so one number bounds queueing,
// execution and response streaming. Done frames carry the full Status
// (code, message, context frames) plus the retry contract: a `retryable`
// bit set only when the server knows the statement never began executing
// (admission rejection, drain refusal), and a retry-after hint for
// kResourceExhausted.

#ifndef DMX_SERVER_WIRE_H_
#define DMX_SERVER_WIRE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/rowset.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace dmx::server {

class Transport;

/// Protocol version spoken by this tree. A server refuses a Hello carrying
/// any other version — the protocol has no negotiation yet, by design.
inline constexpr uint32_t kProtocolVersion = 1;

/// Upper bound on one frame's payload. A header declaring more is rejected
/// as corruption *before* any allocation, so a hostile length word cannot
/// make a session allocate gigabytes (fuzz regression huge-length-frame).
inline constexpr uint32_t kMaxFramePayload = 8u << 20;

/// Frame types (the first payload byte).
enum class FrameType : uint8_t {
  kHello = 'H',     ///< client->server: version + tenant id.
  kHelloAck = 'A',  ///< server->client: version + session id.
  kRequest = 'Q',   ///< client->server: one statement + deadline budget.
  kCancel = 'C',    ///< client->server: cancel an in-flight request.
  kGoodbye = 'G',   ///< client->server: clean half-close notice.
  kSchema = 'S',    ///< server->client: result schema (opens a rowset).
  kChunk = 'R',     ///< server->client: a run of result rows.
  kDone = 'D',      ///< server->client: terminal status for a request.
};

/// One decoded frame: the type byte plus the raw body bytes after it.
struct Frame {
  FrameType type;
  std::string body;
};

struct HelloBody {
  uint32_t version = kProtocolVersion;
  std::string tenant;
};

struct HelloAckBody {
  uint32_t version = kProtocolVersion;
  uint64_t session_id = 0;
};

struct RequestBody {
  uint64_t request_id = 0;
  /// Wall-clock budget in ms for admission + execution + streaming;
  /// 0 means no deadline.
  uint64_t deadline_ms = 0;
  std::string statement;
};

struct CancelBody {
  uint64_t request_id = 0;
};

struct SchemaBody {
  uint64_t request_id = 0;
  std::shared_ptr<const Schema> schema;
};

struct ChunkBody {
  uint64_t request_id = 0;
  std::vector<Row> rows;
};

struct DoneBody {
  uint64_t request_id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;
  std::vector<std::string> context;  ///< Status context frames, innermost first.
  /// Set only when the server knows the statement never began executing
  /// (admission rejection, drain refusal) — the client's licence to retry.
  bool retryable = false;
  /// Suggested backoff before retrying, 0 when the server has no opinion.
  uint32_t retry_after_ms = 0;

  /// The Status this frame carries, context frames reattached.
  Status ToStatus() const;
  /// Captures `status` (code, message, context) into this body.
  void SetStatus(const Status& status);
};

// --- frame codec ---

/// Frames `type` + `body` as one wire record.
std::string EncodeFrame(FrameType type, std::string_view body);

// Body encoders (the payload *after* the type byte).
std::string EncodeHello(const HelloBody& hello);
std::string EncodeHelloAck(const HelloAckBody& ack);
std::string EncodeRequest(const RequestBody& request);
std::string EncodeCancel(const CancelBody& cancel);
std::string EncodeSchemaBody(const SchemaBody& schema);
std::string EncodeChunk(const ChunkBody& chunk);
std::string EncodeDone(const DoneBody& done);

// Body decoders: every length, count and tag is validated, so arbitrary
// bytes yield kCorruption / kInvalidArgument, never a crash or an
// unbounded allocation (fuzz_wire_protocol's contract).
Result<HelloBody> DecodeHello(std::string_view body);
Result<HelloAckBody> DecodeHelloAck(std::string_view body);
Result<RequestBody> DecodeRequest(std::string_view body);
Result<CancelBody> DecodeCancel(std::string_view body);
Result<SchemaBody> DecodeSchemaBody(std::string_view body);
/// Rows are self-describing (each cell carries its kind tag), so the chunk
/// decoder does not need the schema; arity against the schema is the
/// caller's check.
Result<ChunkBody> DecodeChunk(std::string_view body);
Result<DoneBody> DecodeDone(std::string_view body);

// Wire encoding of schema/value trees (recursive for TABLE columns) —
// exposed for tests and the fuzz oracle.
void EncodeWireSchema(std::string* dst, const Schema& schema);
bool DecodeWireSchema(std::string_view* src,
                      std::shared_ptr<const Schema>* out, int depth = 0);
void EncodeWireValue(std::string* dst, const Value& value);
bool DecodeWireValue(std::string_view* src, Value* out, int depth = 0);

/// \brief Incremental frame reader over a Transport.
///
/// Next() assembles one frame, surviving short reads (partial bytes are
/// buffered across calls, so a poll-sliced caller can keep its idle clock):
///   * a frame        — decoded, CRC-verified
///   * nullopt        — clean EOF at a frame boundary (peer half-closed)
///   * kDeadlineExceeded — nothing (or only part of a frame) arrived within
///     `timeout_ms`; call again to continue the same frame
///   * kCorruption    — bad CRC, oversized length word, or EOF mid-frame
///     (torn frame / mid-frame disconnect)
///   * other codes    — transport failure, passed through
class FrameReader {
 public:
  explicit FrameReader(Transport* transport,
                       uint32_t max_payload = kMaxFramePayload)
      : transport_(transport), max_payload_(max_payload) {}

  Result<std::optional<Frame>> Next(int timeout_ms);

  /// Bytes consumed off the transport so far (diagnostics / tests).
  uint64_t bytes_read() const { return bytes_read_; }

 private:
  Transport* transport_;
  uint32_t max_payload_;
  std::string pending_;  ///< Bytes of the in-progress frame.
  uint64_t bytes_read_ = 0;
};

}  // namespace dmx::server

#endif  // DMX_SERVER_WIRE_H_
