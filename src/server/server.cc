#include "server/server.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace dmx::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Accept-loop poll slice: how quickly the server notices a drain request.
constexpr int kAcceptPollMs = 100;
/// Session read slice: how quickly an idle session notices a drain.
constexpr int kReadPollMs = 100;
/// Timeout for best-effort error frames on a session that is being killed.
constexpr int kErrorWriteMs = 1'000;

/// True for the one rejection shape the client may retry: admission said
/// no *before* execution began. Identified by the "statement admission"
/// context frame Connection::ExecuteGuarded attaches — a kResourceExhausted
/// from a row budget mid-statement does NOT carry it and is not retryable.
bool IsAdmissionRejection(const Status& status) {
  if (!status.IsResourceExhausted()) return false;
  const auto& frames = status.context();
  return std::find(frames.begin(), frames.end(), "statement admission") !=
         frames.end();
}

}  // namespace

DmxServer::DmxServer(Provider* provider, ServerOptions options)
    : provider_(provider), options_(std::move(options)) {}

DmxServer::~DmxServer() {
  // Last-resort drain; callers that care about the checkpoint status call
  // Drain() themselves.
  (void)Drain();
}

Status DmxServer::Start() {
  DMX_ASSIGN_OR_RETURN(listener_,
                       TcpListener::Listen(options_.host, options_.port));
  port_ = listener_->port();
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void DmxServer::AcceptLoop() {
  while (!draining() && !stopped_.load(std::memory_order_acquire)) {
    Result<std::unique_ptr<Transport>> conn = listener_->Accept(kAcceptPollMs);
    ReapSessions(/*all=*/false);
    if (!conn.ok()) {
      if (conn.status().IsDeadlineExceeded()) continue;  // Poll slice.
      if (draining() || stopped_.load(std::memory_order_acquire)) break;
      continue;  // Transient accept failure; keep serving.
    }
    auto session = std::make_unique<Session>();
    session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
    Session* raw = session.get();
    // Ownership: the registry owns the Session; the thread only borrows it
    // and flips `done` last, so ReapSessions never frees a live frame.
    std::shared_ptr<Transport> transport(std::move(*conn));
    raw->thread = std::thread([this, raw, transport] {
      RunSession(raw, transport.get());
      transport->Close();
      raw->done.store(true, std::memory_order_release);
    });
    {
      MutexLock lock(&sessions_mu_);
      sessions_.push_back(std::move(session));
    }
    MutexLock lock(&stats_mu_);
    ++stats_.sessions_opened;
  }
}

void DmxServer::ServeConnection(std::unique_ptr<Transport> transport) {
  auto session = std::make_unique<Session>();
  session->id = next_session_id_.fetch_add(1, std::memory_order_relaxed);
  Session* raw = session.get();
  {
    MutexLock lock(&sessions_mu_);
    sessions_.push_back(std::move(session));
  }
  {
    MutexLock lock(&stats_mu_);
    ++stats_.sessions_opened;
  }
  RunSession(raw, transport.get());
  transport->Close();
  raw->done.store(true, std::memory_order_release);
  ReapSessions(/*all=*/false);
}

void DmxServer::ReapSessions(bool all) {
  std::vector<std::unique_ptr<Session>> finished;
  {
    MutexLock lock(&sessions_mu_);
    auto it = sessions_.begin();
    while (it != sessions_.end()) {
      if ((*it)->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(*it));
        it = sessions_.erase(it);
      } else {
        ++it;
      }
    }
  }
  // Joins happen outside sessions_mu_: a join can block on session teardown
  // and must not serialize registration.
  for (auto& session : finished) {
    if (session->thread.joinable()) session->thread.join();
    MutexLock lock(&stats_mu_);
    ++stats_.sessions_closed;
  }
  if (all) {
    // Callers (Drain) have already ensured every session flipped `done`.
  }
}

void DmxServer::RunSession(Session* session, Transport* transport) {
  FrameReader reader(transport);
  auto kill = [&](const Status& status, uint64_t request_id) {
    // Best-effort terminal frame; once framing is lost the write may fail,
    // which is fine — the client sees the disconnect.
    DoneBody done;
    done.request_id = request_id;
    done.SetStatus(status);
    (void)transport->Write(EncodeFrame(FrameType::kDone, EncodeDone(done)),
                           kErrorWriteMs);
    MutexLock lock(&stats_mu_);
    ++stats_.frames_rejected;
  };

  // --- handshake ---
  auto idle_start = Clock::now();
  auto idle_exceeded = [&]() {
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               Clock::now() - idle_start)
               .count() >= options_.idle_timeout_ms;
  };
  std::optional<Frame> hello_frame;
  while (true) {
    Result<std::optional<Frame>> next = reader.Next(kReadPollMs);
    if (!next.ok()) {
      if (next.status().IsDeadlineExceeded()) {
        if (draining() || idle_exceeded()) return;
        continue;
      }
      kill(next.status(), 0);
      return;
    }
    if (!next->has_value()) return;  // EOF before Hello.
    hello_frame = std::move(**next);
    break;
  }
  if (hello_frame->type != FrameType::kHello) {
    kill(InvalidArgument() << "expected Hello, got frame type '"
                           << static_cast<char>(hello_frame->type) << "'",
         0);
    return;
  }
  Result<HelloBody> hello = DecodeHello(hello_frame->body);
  if (!hello.ok()) {
    kill(hello.status(), 0);
    return;
  }
  if (hello->version != kProtocolVersion) {
    kill(NotSupported() << "protocol version " << hello->version
                        << " not supported (server speaks "
                        << kProtocolVersion << ")",
         0);
    return;
  }
  session->tenant = hello->tenant;
  HelloAckBody ack;
  ack.session_id = session->id;
  if (!transport
           ->Write(EncodeFrame(FrameType::kHelloAck, EncodeHelloAck(ack)),
                   options_.write_timeout_ms)
           .ok()) {
    return;
  }

  // --- statement loop ---
  uint64_t sent_bytes = 0;
  idle_start = Clock::now();
  while (true) {
    Result<std::optional<Frame>> next = reader.Next(kReadPollMs);
    if (!next.ok()) {
      if (next.status().IsDeadlineExceeded()) {
        if (draining() || idle_exceeded()) return;
        continue;
      }
      kill(next.status(), 0);
      return;
    }
    if (!next->has_value()) return;  // Clean half-close.
    idle_start = Clock::now();
    Frame frame = std::move(**next);
    switch (frame.type) {
      case FrameType::kRequest: {
        Result<RequestBody> request = DecodeRequest(frame.body);
        if (!request.ok()) {
          kill(request.status(), 0);
          return;
        }
        if (draining()) {
          // Drain refusal: the statement never starts, so it is the other
          // legitimately retryable rejection (against another replica or
          // after the restart).
          DoneBody done;
          done.request_id = request->request_id;
          done.SetStatus(Unavailable()
                         << "server is draining; statement not started");
          done.retryable = true;
          done.retry_after_ms =
              static_cast<uint32_t>(options_.drain_grace_ms);
          if (!transport
                   ->Write(EncodeFrame(FrameType::kDone, EncodeDone(done)),
                           kErrorWriteMs)
                   .ok()) {
            return;
          }
          continue;
        }
        if (!HandleRequest(session, transport, *request, &sent_bytes)) {
          return;
        }
        continue;
      }
      case FrameType::kCancel: {
        // Statements on a session are serial, so a Cancel can only arrive
        // between requests: decode for validity, then ignore (the request
        // it names has already finished).
        Result<CancelBody> cancel = DecodeCancel(frame.body);
        if (!cancel.ok()) {
          kill(cancel.status(), 0);
          return;
        }
        continue;
      }
      case FrameType::kGoodbye:
        return;
      default:
        kill(InvalidArgument()
                 << "unexpected frame type '"
                 << static_cast<char>(frame.type) << "' from client",
             0);
        return;
    }
  }
}

bool DmxServer::HandleRequest(Session* session, Transport* transport,
                              const RequestBody& request,
                              uint64_t* sent_bytes) {
  // Arm the guard from the frame header: the deadline spans admission,
  // execution and (below) the streaming writes. The cancel token is
  // registered on the session so Drain() can reach a straggler.
  ExecLimits limits;
  limits.deadline_ms = static_cast<int64_t>(request.deadline_ms);
  limits.cancel = std::make_shared<CancelToken>();
  ExecGuard guard(limits);
  {
    MutexLock lock(&session->mu);
    session->cancel = limits.cancel;
  }
  std::unique_ptr<Connection> conn = provider_->Connect();
  conn->set_tenant(session->tenant);
  Result<Rowset> result = conn->ExecuteGuarded(request.statement, &guard);
  {
    MutexLock lock(&session->mu);
    session->cancel.reset();
  }

  auto write_timeout = [&]() {
    int timeout = options_.write_timeout_ms;
    if (guard.has_deadline()) {
      int64_t left = guard.remaining_ms();
      timeout = static_cast<int>(
          std::min<int64_t>(timeout, left > 0 ? left : 1));
    }
    return timeout;
  };
  auto send = [&](FrameType type, const std::string& body) {
    std::string frame = EncodeFrame(type, body);
    *sent_bytes += frame.size();
    return transport->Write(frame, write_timeout());
  };
  auto over_budget = [&]() {
    return options_.max_session_send_bytes > 0 &&
           *sent_bytes > options_.max_session_send_bytes;
  };

  DoneBody done;
  done.request_id = request.request_id;

  if (!result.ok()) {
    done.SetStatus(result.status());
    if (IsAdmissionRejection(result.status())) {
      done.retryable = true;
      done.retry_after_ms = provider_->admission()->SuggestedRetryMs();
    }
    {
      MutexLock lock(&stats_mu_);
      ++stats_.statements_failed;
    }
    return send(FrameType::kDone, EncodeDone(done)).ok();
  }

  // Stream the rowset: Schema, then Chunks, then Done. The guard keeps
  // ticking — a deadline that expires mid-stream turns the tail of the
  // response into a kDeadlineExceeded Done, and a stalled reader trips the
  // write timeout, ending the session.
  SchemaBody schema;
  schema.request_id = request.request_id;
  schema.schema = result->schema();
  if (!send(FrameType::kSchema, EncodeSchemaBody(schema)).ok()) return false;

  const std::vector<Row>& rows = result->rows();
  for (size_t off = 0; off < rows.size(); off += options_.chunk_rows) {
    Status tick = guard.Check();
    if (!tick.ok()) {
      done.SetStatus(tick.WithContext("streaming response"));
      {
        MutexLock lock(&stats_mu_);
        ++stats_.statements_failed;
      }
      return send(FrameType::kDone, EncodeDone(done)).ok();
    }
    if (over_budget()) {
      done.SetStatus(ResourceExhausted()
                     << "session send budget exhausted (" << *sent_bytes
                     << " of " << options_.max_session_send_bytes
                     << " bytes)");
      {
        MutexLock lock(&stats_mu_);
        ++stats_.statements_failed;
      }
      (void)send(FrameType::kDone, EncodeDone(done));
      return false;  // Budget is per session: the session ends with it.
    }
    ChunkBody chunk;
    chunk.request_id = request.request_id;
    size_t end = std::min(rows.size(), off + options_.chunk_rows);
    chunk.rows.assign(rows.begin() + static_cast<ptrdiff_t>(off),
                      rows.begin() + static_cast<ptrdiff_t>(end));
    if (!send(FrameType::kChunk, EncodeChunk(chunk)).ok()) return false;
  }

  {
    MutexLock lock(&stats_mu_);
    ++stats_.statements_ok;
  }
  return send(FrameType::kDone, EncodeDone(done)).ok();
}

Status DmxServer::Drain() {
  if (stopped_.exchange(true, std::memory_order_acq_rel)) {
    return Status::OK();  // Already drained.
  }
  RequestDrain();
  if (listener_ != nullptr) listener_->Close();
  if (accept_thread_.joinable()) accept_thread_.join();

  auto all_done = [&]() {
    MutexLock lock(&sessions_mu_);
    for (const auto& session : sessions_) {
      if (!session->done.load(std::memory_order_acquire)) return false;
    }
    return true;
  };

  // Grace: in-flight statements may finish on their own; idle sessions see
  // `draining` at their next read slice and exit.
  SystemRetryClock clock;
  const auto grace_deadline =
      Clock::now() + std::chrono::milliseconds(options_.drain_grace_ms);
  while (!all_done() && Clock::now() < grace_deadline) {
    clock.SleepMs(10);
  }

  // Past grace: cancel stragglers through their statement CancelTokens;
  // the guard checkpoints inside the algorithms unwind them cooperatively.
  if (!all_done()) {
    std::vector<std::shared_ptr<CancelToken>> tokens;
    {
      MutexLock lock(&sessions_mu_);
      for (const auto& session : sessions_) {
        MutexLock session_lock(&session->mu);
        if (session->cancel != nullptr) tokens.push_back(session->cancel);
      }
    }
    for (const auto& token : tokens) token->Cancel();
    while (!all_done()) {
      clock.SleepMs(10);
    }
  }
  ReapSessions(/*all=*/true);

  // Checkpoint the store so the drained state is the recovered state.
  if (provider_->store() != nullptr) {
    return provider_->Checkpoint().WithContext("checkpointing on drain");
  }
  return Status::OK();
}

DmxServer::Stats DmxServer::stats() const {
  MutexLock lock(&stats_mu_);
  return stats_;
}

}  // namespace dmx::server
