#include "server/transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

namespace dmx::server {

namespace {

using Clock = std::chrono::steady_clock;

/// Milliseconds left before `deadline`; `has_deadline` false => -1 (poll's
/// "block forever").
int RemainingMs(bool has_deadline, Clock::time_point deadline) {
  if (!has_deadline) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  deadline - Clock::now())
                  .count();
  return left > 0 ? static_cast<int>(left) : 0;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return IOError() << "fcntl(O_NONBLOCK): " << std::strerror(errno);
  }
  return Status::OK();
}

/// \brief Transport over a connected (non-blocking) TCP socket.
class TcpTransport : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}
  ~TcpTransport() override { Close(); }

  Result<size_t> Read(char* buf, size_t n, int timeout_ms) override {
    if (fd_ < 0) return InvalidState() << "read on closed transport";
    const bool timed = timeout_ms > 0;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timed ? timeout_ms : 0);
    while (true) {
      ssize_t got = recv(fd_, buf, n, 0);
      if (got > 0) return static_cast<size_t>(got);
      if (got == 0) return size_t{0};  // Peer half-closed.
      if (errno == EINTR) continue;
      if (errno != EAGAIN && errno != EWOULDBLOCK) {
        return IOError() << "recv: " << std::strerror(errno);
      }
      struct pollfd pfd = {fd_, POLLIN, 0};
      int left = RemainingMs(timed, deadline);
      if (timed && left == 0) {
        return DeadlineExceeded() << "read timed out after " << timeout_ms
                                  << " ms";
      }
      int rc = poll(&pfd, 1, left);
      if (rc < 0 && errno != EINTR) {
        return IOError() << "poll(read): " << std::strerror(errno);
      }
      if (rc == 0 && timed) {
        return DeadlineExceeded() << "read timed out after " << timeout_ms
                                  << " ms";
      }
    }
  }

  Status Write(std::string_view data, int timeout_ms) override {
    if (fd_ < 0) return InvalidState() << "write on closed transport";
    const bool timed = timeout_ms > 0;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timed ? timeout_ms : 0);
    size_t off = 0;
    while (off < data.size()) {
      ssize_t sent =
          send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (sent > 0) {
        off += static_cast<size_t>(sent);
        continue;
      }
      if (sent < 0 && errno == EINTR) continue;
      if (sent < 0 && errno != EAGAIN && errno != EWOULDBLOCK) {
        if (errno == EPIPE || errno == ECONNRESET) {
          return Unavailable() << "peer closed the connection";
        }
        return IOError() << "send: " << std::strerror(errno);
      }
      struct pollfd pfd = {fd_, POLLOUT, 0};
      int left = RemainingMs(timed, deadline);
      if (timed && left == 0) {
        return DeadlineExceeded()
               << "write stalled: peer accepted " << off << " of "
               << data.size() << " bytes within " << timeout_ms << " ms";
      }
      int rc = poll(&pfd, 1, left);
      if (rc < 0 && errno != EINTR) {
        return IOError() << "poll(write): " << std::strerror(errno);
      }
      if (rc == 0 && timed) {
        return DeadlineExceeded()
               << "write stalled: peer accepted " << off << " of "
               << data.size() << " bytes within " << timeout_ms << " ms";
      }
    }
    return Status::OK();
  }

  void ShutdownWrite() override {
    if (fd_ >= 0) shutdown(fd_, SHUT_WR);
  }

  void Close() override {
    if (fd_ >= 0) {
      close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_;
};

}  // namespace

// --- TcpListener ---

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<TcpListener>> TcpListener::Listen(
    const std::string& host, uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IOError() << "socket: " << std::strerror(errno);
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string& bind_host = host.empty() ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, bind_host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgument() << "not an IPv4 address: " << bind_host;
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status status = IOError() << "bind " << bind_host << ":" << port << ": "
                              << std::strerror(errno);
    close(fd);
    return status;
  }
  if (listen(fd, 64) < 0) {
    Status status = IOError() << "listen: " << std::strerror(errno);
    close(fd);
    return status;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    Status status = IOError() << "getsockname: " << std::strerror(errno);
    close(fd);
    return status;
  }
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  return std::unique_ptr<TcpListener>(
      new TcpListener(fd, ntohs(bound.sin_port)));
}

Result<std::unique_ptr<Transport>> TcpListener::Accept(int timeout_ms) {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return InvalidState() << "accept on closed listener";
  struct pollfd pfd = {fd, POLLIN, 0};
  int rc = poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
  if (rc < 0) {
    if (errno == EINTR) {
      return DeadlineExceeded() << "accept interrupted";
    }
    return IOError() << "poll(accept): " << std::strerror(errno);
  }
  if (rc == 0) {
    return DeadlineExceeded() << "no connection within " << timeout_ms
                              << " ms";
  }
  if (pfd.revents & (POLLNVAL | POLLERR | POLLHUP)) {
    return IOError() << "listener closed under accept";
  }
  int conn = accept(fd, nullptr, nullptr);
  if (conn < 0) {
    return IOError() << "accept: " << std::strerror(errno);
  }
  Status nb = SetNonBlocking(conn);
  if (!nb.ok()) {
    close(conn);
    return nb;
  }
  int one = 1;
  (void)setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(conn));
}

void TcpListener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) close(fd);
}

Result<std::unique_ptr<Transport>> ConnectTcp(const std::string& host,
                                              uint16_t port, int timeout_ms) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return IOError() << "socket: " << std::strerror(errno);
  Status nb = SetNonBlocking(fd);
  if (!nb.ok()) {
    close(fd);
    return nb;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string& connect_host = host.empty() ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, connect_host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return InvalidArgument() << "not an IPv4 address: " << connect_host;
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    Status status = Unavailable() << "connect " << connect_host << ":"
                                  << port << ": " << std::strerror(errno);
    close(fd);
    return status;
  }
  struct pollfd pfd = {fd, POLLOUT, 0};
  int rc = poll(&pfd, 1, timeout_ms > 0 ? timeout_ms : -1);
  if (rc <= 0) {
    close(fd);
    if (rc == 0) {
      return DeadlineExceeded() << "connect " << connect_host << ":" << port
                                << " timed out after " << timeout_ms << " ms";
    }
    return IOError() << "poll(connect): " << std::strerror(errno);
  }
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0 || err != 0) {
    close(fd);
    return Unavailable() << "connect " << connect_host << ":" << port << ": "
                         << std::strerror(err != 0 ? err : errno);
  }
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
}

// --- in-memory pipe ---

namespace {

/// One direction of the pipe: a bounded byte buffer with close flags at
/// both ends. Slicing the waits (<= 50 ms per CondVar wait) keeps the
/// channel responsive to close() from the other thread even on infinite
/// timeouts.
struct PipeChannel {
  explicit PipeChannel(size_t cap) : capacity(cap) {}

  Mutex mu{"server.pipe.mu"};
  CondVar cv;
  std::string buf DMX_GUARDED_BY(mu);
  const size_t capacity;
  bool writer_closed DMX_GUARDED_BY(mu) = false;
  bool reader_closed DMX_GUARDED_BY(mu) = false;

  static constexpr std::chrono::milliseconds kWaitSlice{50};

  Result<size_t> ReadFrom(char* out, size_t n, int timeout_ms) {
    const bool timed = timeout_ms > 0;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timed ? timeout_ms : 0);
    MutexLock lock(&mu);
    while (buf.empty()) {
      if (writer_closed) return size_t{0};  // Clean EOF.
      if (reader_closed) return InvalidState() << "read on closed transport";
      if (timed && RemainingMs(true, deadline) == 0) {
        return DeadlineExceeded() << "pipe read timed out after "
                                  << timeout_ms << " ms";
      }
      cv.WaitFor(&mu, kWaitSlice);
    }
    size_t take = buf.size() < n ? buf.size() : n;
    std::memcpy(out, buf.data(), take);
    buf.erase(0, take);
    cv.NotifyAll();  // Space freed: wake a backpressured writer.
    return take;
  }

  Status WriteTo(std::string_view data, int timeout_ms) {
    const bool timed = timeout_ms > 0;
    const auto deadline =
        Clock::now() + std::chrono::milliseconds(timed ? timeout_ms : 0);
    size_t off = 0;
    MutexLock lock(&mu);
    while (off < data.size()) {
      if (writer_closed) return InvalidState() << "write on closed transport";
      if (reader_closed) return Unavailable() << "peer closed the pipe";
      size_t space = capacity - buf.size();
      if (space == 0) {
        if (timed && RemainingMs(true, deadline) == 0) {
          return DeadlineExceeded()
                 << "pipe write stalled: peer accepted " << off << " of "
                 << data.size() << " bytes within " << timeout_ms << " ms";
        }
        cv.WaitFor(&mu, kWaitSlice);
        continue;
      }
      size_t chunk = data.size() - off < space ? data.size() - off : space;
      buf.append(data.data() + off, chunk);
      off += chunk;
      cv.NotifyAll();
    }
    return Status::OK();
  }

  void CloseWriter() {
    MutexLock lock(&mu);
    writer_closed = true;
    cv.NotifyAll();
  }

  void CloseReader() {
    MutexLock lock(&mu);
    reader_closed = true;
    cv.NotifyAll();
  }
};

class LocalTransport : public Transport {
 public:
  LocalTransport(std::shared_ptr<PipeChannel> in,
                 std::shared_ptr<PipeChannel> out)
      : in_(std::move(in)), out_(std::move(out)) {}
  ~LocalTransport() override { Close(); }

  Result<size_t> Read(char* buf, size_t n, int timeout_ms) override {
    return in_->ReadFrom(buf, n, timeout_ms);
  }
  Status Write(std::string_view data, int timeout_ms) override {
    return out_->WriteTo(data, timeout_ms);
  }
  void ShutdownWrite() override { out_->CloseWriter(); }
  void Close() override {
    out_->CloseWriter();
    in_->CloseReader();
  }

 private:
  std::shared_ptr<PipeChannel> in_;
  std::shared_ptr<PipeChannel> out_;
};

}  // namespace

std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
MakeLocalPipe(size_t capacity) {
  auto a_to_b = std::make_shared<PipeChannel>(capacity);
  auto b_to_a = std::make_shared<PipeChannel>(capacity);
  return {std::make_unique<LocalTransport>(b_to_a, a_to_b),
          std::make_unique<LocalTransport>(a_to_b, b_to_a)};
}

// --- FaultInjectionTransport ---

void FaultInjectionTransport::ArmFault(TransportFault fault, int fail_at) {
  MutexLock lock(&mu_);
  armed_ = true;
  triggered_ = false;
  fault_ = fault;
  countdown_ = fail_at;
}

void FaultInjectionTransport::Reset() {
  MutexLock lock(&mu_);
  armed_ = false;
  triggered_ = false;
}

bool FaultInjectionTransport::triggered() const {
  MutexLock lock(&mu_);
  return triggered_;
}

Result<size_t> FaultInjectionTransport::Read(char* buf, size_t n,
                                             int timeout_ms) {
  TransportFault fault;
  {
    MutexLock lock(&mu_);
    bool fires = false;
    if (armed_ && (fault_ == TransportFault::kDisconnectRead ||
                   fault_ == TransportFault::kShortRead ||
                   fault_ == TransportFault::kStallRead)) {
      if (countdown_ <= 0) {
        fires = true;
        triggered_ = true;
      } else {
        --countdown_;
      }
    }
    if (!fires) return base_->Read(buf, n, timeout_ms);
    fault = fault_;
  }
  switch (fault) {
    case TransportFault::kDisconnectRead:
      return size_t{0};  // Injected EOF mid-whatever the peer was sending.
    case TransportFault::kStallRead:
      return DeadlineExceeded() << "injected read stall";
    case TransportFault::kShortRead:
      // Still a real read, just maximally sliced.
      return base_->Read(buf, n > 0 ? 1 : 0, timeout_ms);
    default:
      return Internal() << "unreachable read fault";
  }
}

Status FaultInjectionTransport::Write(std::string_view data, int timeout_ms) {
  TransportFault fault;
  {
    MutexLock lock(&mu_);
    bool fires = false;
    if (armed_ && (fault_ == TransportFault::kTornWrite ||
                   fault_ == TransportFault::kWriteError ||
                   fault_ == TransportFault::kStallWrite)) {
      if (countdown_ <= 0) {
        fires = true;
        triggered_ = true;
      } else {
        --countdown_;
      }
    }
    if (!fires) return base_->Write(data, timeout_ms);
    fault = fault_;
  }
  switch (fault) {
    case TransportFault::kTornWrite: {
      // Half the bytes reach the peer, then the connection dies: the peer
      // must detect the torn frame via CRC / EOF-mid-frame.
      std::string_view prefix = data.substr(0, data.size() / 2);
      (void)base_->Write(prefix, timeout_ms);  // Best-effort by design.
      base_->Close();
      return IOError() << "injected torn write after " << prefix.size()
                       << " of " << data.size() << " bytes";
    }
    case TransportFault::kWriteError:
      return IOError() << "injected write error";
    case TransportFault::kStallWrite:
      return DeadlineExceeded() << "injected write stall";
    default:
      return Internal() << "unreachable write fault";
  }
}

void FaultInjectionTransport::ShutdownWrite() { base_->ShutdownWrite(); }

void FaultInjectionTransport::Close() { base_->Close(); }

// --- SystemRetryClock ---

void SystemRetryClock::SleepMs(int ms) {
  if (ms <= 0) return;
  const auto deadline = Clock::now() + std::chrono::milliseconds(ms);
  MutexLock lock(&mu_);
  // Never notified: the timed wait simply elapses (slice-wise, so spurious
  // wakeups cannot shorten the sleep).
  while (Clock::now() < deadline) {
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - Clock::now());
    if (left.count() <= 0) break;
    cv_.WaitFor(&mu_, left);
  }
}

}  // namespace dmx::server
