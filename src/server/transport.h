// The transport seam of the serving front end (DESIGN.md §13): every byte
// the server or the in-repo client moves crosses the `Transport` interface,
// the network analogue of the store's `Env` seam. Production code talks to
// real sockets through `TcpTransport`; tests swap in
//
//   * `MakeLocalPipe`   — an in-memory, *bounded* duplex pipe whose full
//     buffer blocks the writer, so write-side backpressure and stalled
//     readers are modelled faithfully without a kernel socket, and
//   * `FaultInjectionTransport` — a wrapper that tears writes mid-frame,
//     forces disconnects, truncates reads and injects stalls at the k-th
//     operation, mirroring `FaultInjectionEnv`'s arm-a-fault style.
//
// Timeouts: every call takes `timeout_ms`; <= 0 means block indefinitely.
// A timed-out call returns kDeadlineExceeded and is safe to retry — no
// bytes are lost (reads buffer nothing; writes report how far they got via
// the transport's internal cursor only on success, so a timed-out Write
// may have transmitted a prefix: the connection is poisoned for framing
// purposes and the caller must close, which is exactly how a real socket
// behaves).

#ifndef DMX_SERVER_TRANSPORT_H_
#define DMX_SERVER_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>

#include "common/mutex.h"
#include "common/status.h"

namespace dmx::server {

/// \brief Byte-stream endpoint: the only I/O surface of server and client.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Reads up to `n` bytes into `buf`. Returns the count actually read
  /// (short reads are normal); 0 means the peer half-closed (clean EOF).
  /// kDeadlineExceeded after `timeout_ms` with no bytes available.
  virtual Result<size_t> Read(char* buf, size_t n, int timeout_ms) = 0;

  /// Writes all of `data`, blocking on backpressure up to `timeout_ms`.
  /// kDeadlineExceeded on a stalled peer (a prefix may have been sent —
  /// the stream is no longer frame-aligned and must be closed);
  /// kUnavailable when the peer has closed.
  virtual Status Write(std::string_view data, int timeout_ms) = 0;

  /// Half-close: signals EOF to the peer's reads; local reads still drain.
  virtual void ShutdownWrite() = 0;

  /// Full close; all subsequent operations fail.
  virtual void Close() = 0;
};

// --- TCP ---

/// \brief Listening socket. `port = 0` binds an ephemeral port (tests);
/// `port()` reports the bound port either way.
class TcpListener {
 public:
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds + listens on `host:port` (host empty = 127.0.0.1).
  static Result<std::unique_ptr<TcpListener>> Listen(const std::string& host,
                                                     uint16_t port);

  /// Accepts one connection; kDeadlineExceeded after `timeout_ms` so an
  /// accept loop can poll a stop flag.
  Result<std::unique_ptr<Transport>> Accept(int timeout_ms);

  uint16_t port() const { return port_; }
  void Close();

 private:
  TcpListener(int fd, uint16_t port) : fd_(fd), port_(port) {}
  /// Atomic: Close() races with the accept thread's poll slice — Close
  /// publishes -1 and the accept loop's next syscall on the stale fd fails
  /// with EBADF, which AcceptLoop treats as shutdown once `stopped_` is set.
  std::atomic<int> fd_;
  uint16_t port_;
};

/// Connects to `host:port`; kUnavailable when nothing listens there.
Result<std::unique_ptr<Transport>> ConnectTcp(const std::string& host,
                                              uint16_t port, int timeout_ms);

// --- in-memory pipe ---

/// \brief Creates a connected duplex pair of in-memory transports. Each
/// direction is a bounded byte channel of `capacity` bytes: a writer into a
/// full channel blocks until the reader drains it (write-side
/// backpressure), times out (stalled reader), or the reader closes
/// (kUnavailable). Both ends are thread-safe; the usual shape is one
/// server session thread on `first` and a test/client thread on `second`.
std::pair<std::unique_ptr<Transport>, std::unique_ptr<Transport>>
MakeLocalPipe(size_t capacity = 64 * 1024);

// --- fault injection ---

/// Fault kinds a test can arm on a FaultInjectionTransport.
enum class TransportFault {
  kTornWrite,       ///< Write sends a prefix, then the connection dies.
  kWriteError,      ///< Write fails with kIOError, nothing sent.
  kDisconnectRead,  ///< Read reports EOF regardless of buffered bytes.
  kShortRead,       ///< Reads deliver at most 1 byte each (stress framing).
  kStallRead,       ///< Reads time out (kDeadlineExceeded) forever.
  kStallWrite,      ///< Writes time out after sending nothing.
};

/// \brief Decorator injecting faults at the k-th read/write, in the style
/// of FaultInjectionEnv::ArmFault. Operations before the trigger pass
/// through untouched; once triggered the fault is sticky until Reset().
class FaultInjectionTransport : public Transport {
 public:
  explicit FaultInjectionTransport(std::unique_ptr<Transport> base)
      : base_(std::move(base)) {}

  /// Arms `fault` to fire on the `fail_at`-th subsequent operation of the
  /// relevant kind (0 = the very next one).
  void ArmFault(TransportFault fault, int fail_at);
  /// Disarms any armed or triggered fault.
  void Reset();
  /// True once the armed fault has fired at least once.
  bool triggered() const;

  Result<size_t> Read(char* buf, size_t n, int timeout_ms) override;
  Status Write(std::string_view data, int timeout_ms) override;
  void ShutdownWrite() override;
  void Close() override;

 private:
  std::unique_ptr<Transport> base_;
  mutable Mutex mu_{"server.fault_transport.mu"};
  bool armed_ DMX_GUARDED_BY(mu_) = false;
  bool triggered_ DMX_GUARDED_BY(mu_) = false;
  TransportFault fault_ DMX_GUARDED_BY(mu_) = TransportFault::kTornWrite;
  int countdown_ DMX_GUARDED_BY(mu_) = 0;
};

// --- retry clock ---

/// \brief The client's backoff sleep seam. Bare sleep_for is banned in
/// src/ (dmx_lint raw-sleep): real code waits on a never-notified CondVar
/// through SystemRetryClock; tests substitute a recording clock so retry
/// schedules are asserted, not slept.
class RetryClock {
 public:
  virtual ~RetryClock() = default;
  virtual void SleepMs(int ms) = 0;
};

/// Default RetryClock: a timed CondVar wait (the sanctioned blocking
/// primitive), never notified, so it simply elapses.
class SystemRetryClock : public RetryClock {
 public:
  void SleepMs(int ms) override;

 private:
  Mutex mu_{"server.retry_clock.mu"};
  CondVar cv_;
};

}  // namespace dmx::server

#endif  // DMX_SERVER_TRANSPORT_H_
