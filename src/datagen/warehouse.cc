#include "datagen/warehouse.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/random.h"

namespace dmx::datagen {

namespace {

// splitmix64: hash-combine (seed, customer id) so every per-customer draw is
// independent of generation order.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t CustomerSeed(uint64_t seed, int64_t customer_id) {
  return Mix(seed ^ Mix(static_cast<uint64_t>(customer_id)));
}

// Behavioural segment parameters. Ages separate cleanly enough that a model
// trained on purchases + gender can predict the (discretized) age bucket.
struct SegmentSpec {
  double age_mean, age_sd;
  double income_mean, income_sd;
  double male_prob;
  double loyalty_mean;
  int signup_month_center;                // 1..12, cyclical
  std::vector<const char*> products;      // preferred purchases
  std::vector<const char*> cars;          // preferred cars
  const char* likely_hair;                // extra age-correlated signal
};

const std::vector<SegmentSpec>& Segments() {
  static const std::vector<SegmentSpec> kSegments = {
      // Young gamers.
      {22, 3, 25000, 5000, 0.65, 2.0, 9,
       {"Video Game", "Game Console", "Soda", "Board Game", "Cereal"},
       {"Compact"},
       "Brown"},
      // Families.
      {38, 5, 55000, 10000, 0.50, 3.5, 8,
       {"TV", "VCR", "Ham", "Beer", "Bread", "Cheese", "Doll"},
       {"Van", "Truck"},
       "Black"},
      // Senior gardeners.
      {62, 6, 40000, 8000, 0.45, 4.5, 4,
       {"Lawn Mower", "Garden Tools", "Seeds", "Coffee", "Cookbook", "Novel"},
       {"Sedan"},
       "Gray"},
      // Young professionals.
      {29, 4, 70000, 12000, 0.55, 3.0, 1,
       {"Camera", "Wine", "Tennis Racket", "Running Shoes", "Novel", "Coffee"},
       {"Sports Car", "Truck"},
       "Blonde"},
  };
  return kSegments;
}



const char* TypeOfProduct(const std::string& name) {
  for (const Product& p : ProductCatalog()) {
    if (name == p.name) return p.type;
  }
  return "Misc";
}

std::shared_ptr<const Schema> CustomersSchema() {
  return Schema::Make({{"Customer ID", DataType::kLong},
                       {"Gender", DataType::kText},
                       {"Hair Color", DataType::kText},
                       {"Age", DataType::kLong},
                       {"Age Probability", DataType::kDouble},
                       {"Customer Loyalty", DataType::kLong},
                       {"Income", DataType::kDouble},
                       {"Signup Month", DataType::kLong}});
}

std::shared_ptr<const Schema> SalesSchema() {
  return Schema::Make({{"CustID", DataType::kLong},
                       {"Product Name", DataType::kText},
                       {"Quantity", DataType::kDouble},
                       {"Product Type", DataType::kText},
                       {"Purchase Time", DataType::kLong}});
}

std::shared_ptr<const Schema> CarsSchema() {
  return Schema::Make({{"CustID", DataType::kLong},
                       {"Car", DataType::kText},
                       {"Car Probability", DataType::kDouble}});
}

}  // namespace

const std::vector<PlantedBundle>& PlantedBundles() {
  // The co-purchase/ordering rules every mining experiment should be able to
  // rediscover.
  static const std::vector<PlantedBundle> kBundles = {
      {"TV", "VCR", 0.8},
      {"Beer", "Ham", 0.7},
      {"Tennis Racket", "Running Shoes", 0.75},
      {"Seeds", "Garden Tools", 0.8},
      {"Video Game", "Game Console", 0.7},
  };
  return kBundles;
}

const std::vector<Product>& ProductCatalog() {
  static const std::vector<Product> kCatalog = {
      {"TV", "Electronic"},          {"VCR", "Electronic"},
      {"DVD Player", "Electronic"},  {"Game Console", "Electronic"},
      {"Camera", "Electronic"},      {"Ham", "Food"},
      {"Cheese", "Food"},            {"Bread", "Food"},
      {"Cereal", "Food"},            {"Beer", "Beverage"},
      {"Wine", "Beverage"},          {"Soda", "Beverage"},
      {"Coffee", "Beverage"},        {"Lawn Mower", "Garden"},
      {"Garden Tools", "Garden"},    {"Seeds", "Garden"},
      {"Video Game", "Toy"},         {"Board Game", "Toy"},
      {"Doll", "Toy"},               {"Tennis Racket", "Sport"},
      {"Running Shoes", "Sport"},    {"Novel", "Book"},
      {"Cookbook", "Book"},          {"Textbook", "Book"},
  };
  return kCatalog;
}

int SegmentOfCustomer(int64_t customer_id, uint64_t seed, int num_customers,
                      int64_t first_customer_id) {
  (void)num_customers;
  (void)first_customer_id;
  return static_cast<int>(CustomerSeed(seed, customer_id) % kNumSegments);
}

Status PopulateWarehouse(rel::Database* db, const WarehouseConfig& config) {
  DMX_ASSIGN_OR_RETURN(rel::Table * customers,
                       db->CreateTable(config.customers_table,
                                       CustomersSchema()));
  DMX_ASSIGN_OR_RETURN(rel::Table * sales,
                       db->CreateTable(config.sales_table, SalesSchema()));
  DMX_ASSIGN_OR_RETURN(rel::Table * cars,
                       db->CreateTable(config.cars_table, CarsSchema()));

  static const char* kHairColors[] = {"Black", "Brown", "Blonde", "Red",
                                      "Gray"};
  for (int i = 0; i < config.num_customers; ++i) {
    int64_t id = config.first_customer_id + i;
    Rng rng(CustomerSeed(config.seed, id));
    const SegmentSpec& seg =
        Segments()[CustomerSeed(config.seed, id) % kNumSegments];

    // --- Customers row ---
    std::string gender = rng.Chance(seg.male_prob) ? "Male" : "Female";
    std::string hair = rng.Chance(0.6)
                           ? seg.likely_hair
                           : kHairColors[rng.Uniform(5)];
    int64_t age = std::clamp<int64_t>(
        std::llround(rng.Gaussian(seg.age_mean, seg.age_sd)), 18, 90);
    double age_prob = rng.Chance(0.9) ? 1.0 : 0.5 + 0.45 * rng.NextDouble();
    int64_t loyalty = std::clamp<int64_t>(
        std::llround(rng.Gaussian(seg.loyalty_mean, 0.8)), 1, 5);
    double income = std::max(8000.0, rng.Gaussian(seg.income_mean,
                                                  seg.income_sd));
    // Cyclical signup month: center +- 2, wrapping around the year.
    int64_t month =
        1 + ((seg.signup_month_center - 1 + static_cast<int>(rng.Uniform(5)) -
              2 + 12) %
             12);
    DMX_RETURN_IF_ERROR(customers->Insert(
        {Value::Long(id), Value::Text(gender), Value::Text(hair),
         Value::Long(age), Value::Double(age_prob), Value::Long(loyalty),
         Value::Double(income), Value::Long(month)}));

    // --- Sales rows: an ORDERED purchase sequence. Bundle consequents are
    // inserted right after their antecedent, planting first-order
    // transitions (TV then VCR, ...) for the sequence-analysis service on
    // top of the co-occurrence signal.
    std::vector<std::string> sequence;
    auto add_product = [&sequence](const std::string& product) {
      for (const std::string& existing : sequence) {
        if (existing == product) return false;
      }
      sequence.push_back(product);
      return true;
    };
    int count = 1 + rng.Poisson(std::max(0.0, config.avg_purchases - 1));
    for (int k = 0; k < count; ++k) {
      std::string product;
      if (rng.Chance(0.75) && !seg.products.empty()) {
        product = seg.products[rng.Uniform(seg.products.size())];
      } else {
        product = ProductCatalog()[rng.Uniform(ProductCatalog().size())].name;
      }
      add_product(product);
    }
    for (const PlantedBundle& bundle : PlantedBundles()) {
      for (size_t i = 0; i < sequence.size(); ++i) {
        if (sequence[i] != bundle.antecedent) continue;
        if (!rng.Chance(bundle.probability)) break;
        bool already = false;
        for (const std::string& existing : sequence) {
          if (existing == bundle.consequent) already = true;
        }
        if (!already) {
          sequence.insert(sequence.begin() + i + 1, bundle.consequent);
        }
        break;
      }
    }
    for (size_t position = 0; position < sequence.size(); ++position) {
      const std::string& product = sequence[position];
      std::string type = TypeOfProduct(product);
      double quantity = 1;
      if (type == "Food" || type == "Beverage") {
        quantity = 1 + rng.Poisson(2.0);
      }
      DMX_RETURN_IF_ERROR(sales->Insert(
          {Value::Long(id), Value::Text(product), Value::Double(quantity),
           Value::Text(type), Value::Long(static_cast<int64_t>(position + 1))}));
    }

    // --- CarOwnership rows ---
    std::set<std::string> owned;
    int car_count = rng.Poisson(config.avg_cars);
    for (int k = 0; k < car_count; ++k) {
      if (seg.cars.empty()) break;
      owned.insert(seg.cars[rng.Uniform(seg.cars.size())]);
    }
    for (const std::string& car : owned) {
      double prob = rng.Chance(0.8) ? 1.0 : 0.5;
      DMX_RETURN_IF_ERROR(cars->Insert(
          {Value::Long(id), Value::Text(car), Value::Double(prob)}));
    }
  }
  return Status::OK();
}

Status LoadPaperExample(rel::Database* db) {
  DMX_ASSIGN_OR_RETURN(rel::Table * customers,
                       db->CreateTable("Customers", CustomersSchema()));
  DMX_ASSIGN_OR_RETURN(rel::Table * sales,
                       db->CreateTable("Sales", SalesSchema()));
  DMX_ASSIGN_OR_RETURN(rel::Table * cars,
                       db->CreateTable("CarOwnership", CarsSchema()));

  // Customer 1 is exactly the paper's Table 1 case: male, black hair,
  // "believed to be 35 years old with 100% certainty".
  DMX_RETURN_IF_ERROR(customers->Insert(
      {Value::Long(1), Value::Text("Male"), Value::Text("Black"),
       Value::Long(35), Value::Double(1.0), Value::Long(4),
       Value::Double(52000), Value::Long(8)}));
  DMX_RETURN_IF_ERROR(customers->Insert(
      {Value::Long(2), Value::Text("Female"), Value::Text("Blonde"),
       Value::Long(28), Value::Double(1.0), Value::Long(3),
       Value::Double(61000), Value::Long(2)}));
  DMX_RETURN_IF_ERROR(customers->Insert(
      {Value::Long(3), Value::Text("Male"), Value::Text("Gray"),
       Value::Long(64), Value::Double(0.8), Value::Long(5),
       Value::Double(39000), Value::Long(4)}));

  // "this customer has bought a TV, a VCR, Beer (quantity 6) and Ham
  // (quantity 2)" — four purchases, two nested columns beyond the key.
  auto sale = [&](int64_t id, const char* name, double qty, int64_t when) {
    return sales->Insert({Value::Long(id), Value::Text(name),
                          Value::Double(qty), Value::Text(TypeOfProduct(name)),
                          Value::Long(when)});
  };
  DMX_RETURN_IF_ERROR(sale(1, "TV", 1, 1));
  DMX_RETURN_IF_ERROR(sale(1, "VCR", 1, 2));
  DMX_RETURN_IF_ERROR(sale(1, "Ham", 2, 3));
  DMX_RETURN_IF_ERROR(sale(1, "Beer", 6, 4));
  DMX_RETURN_IF_ERROR(sale(2, "Wine", 1, 1));
  DMX_RETURN_IF_ERROR(sale(2, "Camera", 1, 2));
  DMX_RETURN_IF_ERROR(sale(3, "Seeds", 3, 1));
  DMX_RETURN_IF_ERROR(sale(3, "Garden Tools", 1, 2));
  DMX_RETURN_IF_ERROR(sale(3, "Coffee", 2, 3));

  // "we know this customer owns a truck (100%) and we believe he also has a
  // van (50% certainty)".
  DMX_RETURN_IF_ERROR(cars->Insert(
      {Value::Long(1), Value::Text("Truck"), Value::Double(1.0)}));
  DMX_RETURN_IF_ERROR(cars->Insert(
      {Value::Long(1), Value::Text("Van"), Value::Double(0.5)}));
  DMX_RETURN_IF_ERROR(cars->Insert(
      {Value::Long(3), Value::Text("Sedan"), Value::Double(1.0)}));
  return Status::OK();
}

}  // namespace dmx::datagen
