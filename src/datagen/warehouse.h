// Synthetic stand-in for the paper's customer data warehouse (substitution
// documented in DESIGN.md): the exact 3-table schema of the running example —
// Customers, Sales (product purchases) and CarOwnership — populated with
// customers drawn from latent behavioural segments so that the mining
// experiments have real structure to find:
//
//  * age/income/loyalty and purchase categories depend on the latent segment,
//    which makes [Age] predictable from [Gender] + [Product Purchases] — the
//    paper's own "Age Prediction" model;
//  * planted co-purchase bundles (TV=>VCR, Beer=>Ham, ...) give the
//    association-rules service rules to discover;
//  * the segments themselves are recoverable by the clustering service.

#ifndef DMX_DATAGEN_WAREHOUSE_H_
#define DMX_DATAGEN_WAREHOUSE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/database.h"

namespace dmx::datagen {

/// Tuning knobs for the generated warehouse.
struct WarehouseConfig {
  int num_customers = 1000;
  uint64_t seed = 42;
  /// Mean purchases per customer (Poisson, shifted by +1 so nobody is empty).
  double avg_purchases = 5.0;
  /// Mean cars per customer (Poisson).
  double avg_cars = 1.0;
  /// Customer-ID offset so that two warehouses can coexist in one database.
  int64_t first_customer_id = 1;
  /// Table names, overridable so train and test sets can coexist.
  std::string customers_table = "Customers";
  std::string sales_table = "Sales";
  std::string cars_table = "CarOwnership";
};

/// Product catalog entry: the RELATION of the paper's §3.2.1 — [Product Type]
/// classifies [Product Name] and is functionally consistent across cases.
struct Product {
  const char* name;
  const char* type;
};

/// The fixed product catalog (name -> type is a function, as the paper
/// requires of RELATION columns).
const std::vector<Product>& ProductCatalog();

/// Number of latent behavioural segments planted by the generator.
constexpr int kNumSegments = 4;

/// One planted co-purchase/ordering rule: with the given probability, buying
/// the antecedent is followed (immediately, in purchase order) by the
/// consequent. Exposed so quality experiments can slice by where the planted
/// signal actually lives.
struct PlantedBundle {
  const char* antecedent;
  const char* consequent;
  double probability;
};

/// The bundles the generator plants (TV=>VCR, Beer=>Ham, ...).
const std::vector<PlantedBundle>& PlantedBundles();

/// Creates and fills the three warehouse tables:
///   <Customers>(Customer ID LONG, Gender TEXT, Hair Color TEXT, Age LONG,
///               Age Probability DOUBLE, Customer Loyalty LONG, Income DOUBLE,
///               Signup Month LONG)
///   <Sales>(CustID LONG, Product Name TEXT, Quantity DOUBLE,
///           Product Type TEXT)
///   <CarOwnership>(CustID LONG, Car TEXT, Car Probability DOUBLE)
/// Fails if any of the target tables already exists.
Status PopulateWarehouse(rel::Database* db, const WarehouseConfig& config);

/// Loads exactly the paper's Table 1 micro-dataset: customer 1 (male, black
/// hair, 35, age probability 100%) with purchases {TV, VCR, Ham x2, Beer x6}
/// and cars {Truck 100%, Van 50%}, plus two smaller customers so that joins
/// and shapes have more than one case to chew on. Table names are the
/// defaults of WarehouseConfig.
Status LoadPaperExample(rel::Database* db);

/// Returns the latent segment the generator assigned to a customer id
/// (useful for validating clustering quality in tests and benches).
int SegmentOfCustomer(int64_t customer_id, uint64_t seed, int num_customers,
                      int64_t first_customer_id = 1);

}  // namespace dmx::datagen

#endif  // DMX_DATAGEN_WAREHOUSE_H_
