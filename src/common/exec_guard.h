// Execution guards: per-statement resource limits enforced cooperatively.
//
// A statement runs under an ExecGuard carrying a wall-clock deadline, a
// cancellation token and row budgets. Hot loops — SQL joins, SHAPE case
// assembly, prediction joins, every algorithm's training and prediction
// passes — call the free checkpoint helpers (GuardCheck / GuardCharge*),
// which consult the guard installed for the current thread by ExecGuardScope
// and unwind with kCancelled / kDeadlineExceeded / kResourceExhausted when a
// limit trips. Without an installed guard the helpers are a pointer test, so
// checkpoints cost nothing on unguarded paths (recovery replay, tests).
//
// Threading model: an ExecGuard belongs to the single thread executing the
// statement; only the CancelToken is shared across threads (it is how one
// session aborts another's statement) and is therefore atomic. Nothing here
// holds a lock, so the thread-safety analysis has no capabilities to track —
// the guard's contract is enforced by construction (thread-local install via
// ExecGuardScope) rather than by GUARDED_BY. Lock-aware callers are the other
// way around: the provider's guard-polling lock loops carry TRY_ACQUIRE
// annotations and consult Check() between attempts (DESIGN.md "Static
// enforcement").

#ifndef DMX_COMMON_EXEC_GUARD_H_
#define DMX_COMMON_EXEC_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

#include "common/status.h"

namespace dmx {

/// \brief Cooperative cancellation flag, shared between the session issuing
/// the statement and whoever wants to abort it. Thread-safe.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// \brief Per-statement execution limits. Zero / null fields mean "no limit".
struct ExecLimits {
  /// Wall-clock budget, measured from ExecGuard construction (i.e. from
  /// statement start, so admission waits count against it).
  int64_t deadline_ms = 0;
  std::shared_ptr<CancelToken> cancel;
  /// Rows the statement may emit into its result rowset.
  uint64_t max_output_rows = 0;
  /// Rows the statement may materialize in intermediate state (join working
  /// sets, training caches, SHAPE child indexes).
  uint64_t max_working_set_rows = 0;
};

/// \brief Armed instance of ExecLimits for one statement execution.
class ExecGuard {
 public:
  explicit ExecGuard(const ExecLimits& limits);

  /// True when any limit is set — callers may skip snapshot/rollback work
  /// for unguarded statements.
  bool armed() const {
    return has_deadline_ || limits_.cancel != nullptr ||
           limits_.max_output_rows > 0 || limits_.max_working_set_rows > 0;
  }

  /// The checkpoint: kCancelled if the token fired, kDeadlineExceeded if the
  /// wall clock ran out, OK otherwise.
  Status Check();

  /// Charges `n` rows against the output budget (checks other limits too).
  Status ChargeOutputRows(uint64_t n);

  /// Charges `n` rows against the working-set budget (checks other limits).
  Status ChargeWorkingSet(uint64_t n);

  bool has_deadline() const { return has_deadline_; }
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// Milliseconds of deadline budget left: -1 without a deadline, 0 once
  /// it has passed. The serving front end bounds its response-streaming
  /// writes with this, so one request deadline covers queueing, execution
  /// and the bytes back to the client.
  int64_t remaining_ms() const {
    if (!has_deadline_) return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                    deadline_ - std::chrono::steady_clock::now())
                    .count();
    return left > 0 ? left : 0;
  }
  const std::shared_ptr<CancelToken>& cancel_token() const {
    return limits_.cancel;
  }

 private:
  ExecLimits limits_;
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_;
  uint64_t output_rows_ = 0;
  uint64_t working_set_rows_ = 0;
};

/// \brief RAII: installs `guard` as the current thread's guard; restores the
/// previous one on destruction (scopes nest, innermost wins).
class ExecGuardScope {
 public:
  explicit ExecGuardScope(ExecGuard* guard);
  ~ExecGuardScope();

  ExecGuardScope(const ExecGuardScope&) = delete;
  ExecGuardScope& operator=(const ExecGuardScope&) = delete;

 private:
  ExecGuard* previous_;
};

/// The guard installed for this thread, or nullptr.
ExecGuard* CurrentExecGuard();

// Checkpoint helpers for hot loops: no-ops (one pointer test) without an
// installed guard.
Status GuardCheck();
Status GuardChargeOutputRows(uint64_t n = 1);
Status GuardChargeWorkingSet(uint64_t n = 1);

}  // namespace dmx

#endif  // DMX_COMMON_EXEC_GUARD_H_
