// Env: the file-system seam of the provider (Arrow/RocksDB idiom). All file
// I/O — PMML export/import, CSV load/save, the durable catalog store — goes
// through an Env so tests can substitute a FaultInjectionEnv and exercise
// crash/torn-write/ENOSPC behaviour deterministically.
//
// The default Env is POSIX-backed; errors map ENOSPC/EDQUOT to
// kResourceExhausted, ENOENT to kNotFound and everything else to kIOError,
// always naming the path.

#ifndef DMX_COMMON_ENV_H_
#define DMX_COMMON_ENV_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace dmx {

/// \brief Sequential append-only file handle.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  virtual Status Append(std::string_view data) = 0;

  /// Flushes buffered data to stable storage (fsync).
  virtual Status Sync() = 0;

  /// Closes the descriptor; further calls are invalid. Close failures are
  /// real write failures (delayed allocation) and must be checked.
  virtual Status Close() = 0;
};

/// \brief File-system interface. Stateless; safe to share across objects.
class Env {
 public:
  virtual ~Env() = default;

  /// The process-wide POSIX environment.
  static Env* Default();

  /// Opens `path` for writing; truncates unless `append`.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append = false) = 0;

  virtual Result<std::string> ReadFileToString(const std::string& path) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual Result<uint64_t> GetFileSize(const std::string& path) = 0;

  /// Atomically replaces `to` with `from` (POSIX rename semantics).
  virtual Status RenameFile(const std::string& from, const std::string& to) = 0;
  virtual Status DeleteFile(const std::string& path) = 0;
  virtual Status TruncateFile(const std::string& path, uint64_t size) = 0;

  /// Creates a directory; succeeds if it already exists.
  virtual Status CreateDir(const std::string& path) = 0;

  /// fsyncs a directory, making entry creates/renames/deletes inside it
  /// durable — POSIX does not guarantee a rename survives power loss until
  /// its parent directory is synced.
  virtual Status SyncDir(const std::string& path) = 0;

  /// Entry names (no "."/"..") of a directory.
  virtual Result<std::vector<std::string>> ListDir(const std::string& path) = 0;

  // --- composed helpers (route through the virtual primitives, so fault
  // injection sees every underlying write/sync/close) ---

  /// Open + append + optional fsync + close, checking every step.
  Status WriteStringToFile(const std::string& path, std::string_view data,
                           bool sync = true);

  /// Durable replace: write `path`.tmp, fsync, close, rename over `path`,
  /// fsync the parent directory. A crash at any point leaves either the old
  /// file or the new file, and on success the replacement itself is durable.
  Status AtomicWriteFile(const std::string& path, std::string_view data);
};

/// \brief Deterministic fault injection around a base Env.
///
/// Mutating operations (write-open, append, sync, close, rename, delete,
/// truncate, mkdir, dir-sync) are counted once armed; the `fail_at`-th
/// operation fails
/// with the configured fault, and — like a crashed process — every mutating
/// operation after it fails too. Reads always pass through.
///
/// With a path filter (SetPathFilter) only mutating operations whose path
/// contains the filter substring are counted and failed; operations on other
/// paths pass through untouched. That models a single sick file (one WAL
/// shard on a bad sector) rather than a whole-process crash: the rest of the
/// store keeps writing normally while every touch of the filtered path keeps
/// failing.
class FaultInjectionEnv : public Env {
 public:
  enum class FaultKind {
    kIOError,     ///< Clean failure: no bytes reach the file.
    kTornWrite,   ///< The failing append writes a prefix, then fails.
    kNoSpace,     ///< kResourceExhausted, as if the disk filled up.
  };

  explicit FaultInjectionEnv(Env* base) : base_(base) {}

  /// Starts counting mutating operations; the op with 0-based index
  /// `fail_at` (and all later ones) fail with `kind`. Pass a huge `fail_at`
  /// to count operations without failing any.
  void ArmFault(int64_t fail_at, FaultKind kind) {
    armed_ = true;
    fail_at_ = fail_at;
    kind_ = kind;
    ops_ = 0;
    fired_ = false;
    torn_pending_ = kind == FaultKind::kTornWrite;
  }
  void Disarm() { armed_ = false; }

  /// Restricts counting/failing to mutating ops whose path contains
  /// `substring`. An empty string (the default) matches every path. For a
  /// rename both endpoints are tested. Survives ArmFault/Disarm; clear with
  /// ClearPathFilter.
  void SetPathFilter(std::string substring) {
    path_filter_ = std::move(substring);
  }
  void ClearPathFilter() { path_filter_.clear(); }
  const std::string& path_filter() const { return path_filter_; }

  /// Mutating operations observed since ArmFault.
  int64_t op_count() const { return ops_; }
  bool fault_fired() const { return fired_; }

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append = false) override;
  Result<std::string> ReadFileToString(const std::string& path) override {
    return base_->ReadFileToString(path);
  }
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> GetFileSize(const std::string& path) override {
    return base_->GetFileSize(path);
  }
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status DeleteFile(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;
  Status CreateDir(const std::string& path) override;
  Status SyncDir(const std::string& path) override;
  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    return base_->ListDir(path);
  }

 private:
  friend class FaultInjectionWritableFile;

  /// Counts one mutating op on `path`; non-OK when the fault (has) fired.
  /// Sets `*torn` when this op should write a torn prefix before failing.
  /// Ops whose path misses the filter are neither counted nor failed.
  Status MaybeFault(const std::string& path, bool* torn);

  Env* base_;
  std::string path_filter_;
  bool armed_ = false;
  int64_t fail_at_ = 0;
  FaultKind kind_ = FaultKind::kIOError;
  int64_t ops_ = 0;
  bool fired_ = false;
  bool torn_pending_ = false;
};

}  // namespace dmx

#endif  // DMX_COMMON_ENV_H_
