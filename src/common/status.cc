#include "common/status.h"

namespace dmx {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInvalidState:
      return "Invalid state";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kResourceExhausted:
      return "Resource exhausted";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "Deadline exceeded";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

Status Status::WithContext(std::string context) const {
  if (ok()) return *this;
  Rep rep{rep_->code, rep_->message, rep_->context};
  rep.context.push_back(std::move(context));
  Status out;
  out.rep_ = std::make_shared<const Rep>(std::move(rep));
  return out;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  for (const std::string& frame : context()) {
    out += "; while ";
    out += frame;
  }
  return out;
}

}  // namespace dmx
