#include "common/status.h"

namespace dmx {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kParseError:
      return "Parse error";
    case StatusCode::kBindError:
      return "Bind error";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kNotSupported:
      return "Not supported";
    case StatusCode::kInvalidState:
      return "Invalid state";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kInternal:
      return "Internal error";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  if (!message().empty()) {
    out += ": ";
    out += message();
  }
  return out;
}

}  // namespace dmx
