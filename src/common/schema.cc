#include "common/schema.h"

namespace dmx {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    index_.emplace(columns_[i].name, i);
  }
}

int Schema::FindColumn(std::string_view name) const {
  auto it = index_.find(name);
  return it == index_.end() ? -1 : static_cast<int>(it->second);
}

Result<size_t> Schema::ResolveColumn(std::string_view name) const {
  int idx = FindColumn(name);
  if (idx < 0) {
    return BindError() << "unknown column '" << std::string(name)
                       << "' (schema: " << ToString() << ")";
  }
  return static_cast<size_t>(idx);
}

Result<std::vector<size_t>> Schema::ResolveColumns(
    const std::vector<std::string>& names) const {
  std::vector<size_t> indices;
  indices.reserve(names.size());
  for (const std::string& name : names) {
    DMX_ASSIGN_OR_RETURN(size_t idx, ResolveColumn(name));
    indices.push_back(idx);
  }
  return indices;
}

bool Schema::Equals(const Schema& other) const {
  if (columns_.size() != other.columns_.size()) return false;
  for (size_t i = 0; i < columns_.size(); ++i) {
    const ColumnDef& a = columns_[i];
    const ColumnDef& b = other.columns_[i];
    if (!EqualsCi(a.name, b.name) || a.type != b.type) return false;
    if (a.type == DataType::kTable) {
      if ((a.nested == nullptr) != (b.nested == nullptr)) return false;
      if (a.nested && !a.nested->Equals(*b.nested)) return false;
    }
  }
  return true;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
    out += ' ';
    out += DataTypeToString(columns_[i].type);
    if (columns_[i].type == DataType::kTable && columns_[i].nested) {
      out += '(';
      out += columns_[i].nested->ToString();
      out += ')';
    }
  }
  return out;
}

}  // namespace dmx
