// Rowset: the universal result shape of the provider, mirroring OLE DB's
// record-oriented rowsets. Query results, schema rowsets, model content and
// prediction output are all Rowsets; a Rowset whose schema contains TABLE
// columns is a hierarchical rowset (a caseset).

#ifndef DMX_COMMON_ROWSET_H_
#define DMX_COMMON_ROWSET_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/nested_table.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace dmx {

/// \brief A materialized rowset: shared schema + owned rows.
class Rowset {
 public:
  Rowset() : schema_(Schema::Make({})) {}
  explicit Rowset(std::shared_ptr<const Schema> schema)
      : schema_(std::move(schema)) {}
  Rowset(std::shared_ptr<const Schema> schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  std::vector<Row>& mutable_rows() { return rows_; }
  size_t num_rows() const { return rows_.size(); }
  size_t num_columns() const { return schema_->num_columns(); }

  /// Appends a row after checking its arity against the schema.
  Status Append(Row row);

  /// Cell accessor with bounds assertions (debug-time).
  const Value& at(size_t row, size_t col) const { return rows_[row][col]; }

  /// Cell lookup by column name; BindError when the column is unknown.
  Result<Value> Get(size_t row, std::string_view column) const;

  /// Renders an ASCII table (column headers + rows); nested-table cells show
  /// as "#rows=<n>" unless `expand_nested`, which prints them indented.
  std::string ToString(bool expand_nested = false) const;

  /// Approximate in-memory footprint in bytes (used by the Table-1 bench).
  size_t ApproxBytes() const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Row> rows_;
};

/// \brief Pull-based row stream: the case-at-a-time interface of paper §3.1.
///
/// Mining services that support incremental training consume cases through a
/// reader without ever materializing the caseset.
class RowsetReader {
 public:
  virtual ~RowsetReader() = default;

  virtual const std::shared_ptr<const Schema>& schema() const = 0;

  /// Fetches the next row into `*row`. Returns false at end of stream.
  virtual Result<bool> Next(Row* row) = 0;

  /// Drains the remainder of the stream into a materialized rowset.
  Result<Rowset> ReadAll();
};

/// Adapts a materialized Rowset to the reader interface.
class VectorRowsetReader : public RowsetReader {
 public:
  explicit VectorRowsetReader(Rowset rowset)
      : rowset_(std::move(rowset)) {}

  const std::shared_ptr<const Schema>& schema() const override {
    return rowset_.schema();
  }

  Result<bool> Next(Row* row) override {
    if (pos_ >= rowset_.num_rows()) return false;
    // The adapter owns the rowset and the stream is forward-only, so rows
    // move out instead of deep-copying every Value.
    *row = std::move(rowset_.mutable_rows()[pos_++]);
    return true;
  }

 private:
  Rowset rowset_;
  size_t pos_ = 0;
};

}  // namespace dmx

#endif  // DMX_COMMON_ROWSET_H_
