#include "common/nested_table.h"

namespace dmx {

bool NestedTable::Equals(const NestedTable& other) const {
  if (rows_.size() != other.rows_.size()) return false;
  if (!schema_->Equals(*other.schema_)) return false;
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (rows_[r].size() != other.rows_[r].size()) return false;
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      if (!rows_[r][c].Equals(other.rows_[r][c])) return false;
    }
  }
  return true;
}

}  // namespace dmx
