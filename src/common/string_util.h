// Small string helpers shared by the lexers, schema lookups and formatters.
//
// SQL and DMX identifiers are case-insensitive; the *Ci helpers implement the
// ASCII case-folding used everywhere names are compared.

#ifndef DMX_COMMON_STRING_UTIL_H_
#define DMX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace dmx {

/// ASCII lower-casing (identifiers only; data values are never folded).
std::string ToLower(std::string_view s);
std::string ToUpper(std::string_view s);

/// Case-insensitive equality for identifiers and keywords.
bool EqualsCi(std::string_view a, std::string_view b);

/// Case-insensitive "less" usable as a map comparator.
struct LessCi {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const;
};

/// Removes leading/trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Splits on a separator character; keeps empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// True when `s` begins with `prefix`, ignoring case.
bool StartsWithCi(std::string_view s, std::string_view prefix);

/// Joins `pieces` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& pieces, std::string_view sep);

/// Quotes an identifier in DMX brackets when it needs them: `Age` -> `Age`,
/// `Age Prediction` -> `[Age Prediction]`. Embedded ']' doubles to ']]'.
std::string QuoteIdentifier(std::string_view name);

/// Formats a double the way rowset printers and PMML expect: shortest
/// round-trippable representation, integral values without a trailing ".0".
std::string FormatDouble(double v);

}  // namespace dmx

#endif  // DMX_COMMON_STRING_UTIL_H_
