#include "common/string_util.h"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace dmx {

namespace {
inline char LowerChar(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}
}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return LowerChar(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](char c) {
    return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  });
  return out;
}

bool EqualsCi(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (LowerChar(a[i]) != LowerChar(b[i])) return false;
  }
  return true;
}

bool LessCi::operator()(std::string_view a, std::string_view b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    char ca = LowerChar(a[i]);
    char cb = LowerChar(b[i]);
    if (ca != cb) return ca < cb;
  }
  return a.size() < b.size();
}

std::string_view Trim(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool StartsWithCi(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && EqualsCi(s.substr(0, prefix.size()), prefix);
}

std::string Join(const std::vector<std::string>& pieces, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string QuoteIdentifier(std::string_view name) {
  bool plain = !name.empty() &&
               (std::isalpha(static_cast<unsigned char>(name[0])) || name[0] == '_');
  if (plain) {
    for (char c : name) {
      if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_') {
        plain = false;
        break;
      }
    }
  }
  if (plain) return std::string(name);
  std::string out = "[";
  for (char c : name) {
    out += c;
    if (c == ']') out += ']';  // escape by doubling
  }
  out += ']';
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "Inf" : "-Inf";
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  // %.17g always round-trips; try shorter forms first for readability.
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    double parsed = 0;
    auto [ptr, ec] = std::from_chars(buf, buf + std::char_traits<char>::length(buf),
                                     parsed);
    (void)ptr;
    if (ec == std::errc() && parsed == v) break;
  }
  return buf;
}

}  // namespace dmx
