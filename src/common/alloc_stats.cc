// Counting operator new/delete (see alloc_stats.h). The replacement
// operators live here — one TU, external linkage — so simply linking
// dmx_common into a binary built with -DDMX_ALLOC_STATS=ON makes every
// allocation in that binary pass through the counters. Without the define
// this file contributes only the trivial zero-returning accessors.

#include "common/alloc_stats.h"

#if defined(DMX_ALLOC_STATS)

#include <cstdlib>
#include <new>

namespace dmx {
namespace {

// Plain thread-local PODs: zero-initialised statically, incremented without
// synchronisation. The allocation path must not itself allocate or lock.
thread_local std::uint64_t t_allocs = 0;
thread_local std::uint64_t t_bytes = 0;
thread_local std::uint64_t t_frees = 0;

void* CountedAlloc(std::size_t size) {
  t_allocs += 1;
  t_bytes += size;
  // malloc(0) may return nullptr legally; operator new must not.
  return std::malloc(size ? size : 1);
}

void* CountedAlignedAlloc(std::size_t size, std::size_t align) {
  t_allocs += 1;
  t_bytes += size;
  void* p = nullptr;
  // glibc free() handles posix_memalign blocks, so one CountedFree suffices.
  if (posix_memalign(&p, align, size ? size : align) != 0) return nullptr;
  return p;
}

void CountedFree(void* p) {
  if (p == nullptr) return;
  t_frees += 1;
  std::free(p);
}

}  // namespace

bool AllocStats::Enabled() { return true; }

AllocCounts AllocStats::ThreadTotals() {
  return AllocCounts{t_allocs, t_bytes, t_frees};
}

}  // namespace dmx

// Replacement global allocation functions ([new.delete.single] /
// [new.delete.array]). Array forms forward to the single-object forms'
// helpers, and all deletes funnel into CountedFree, so counts stay
// consistent no matter which variant the std library picks.

void* operator new(std::size_t size) {
  void* p = dmx::CountedAlloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return dmx::CountedAlloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return dmx::CountedAlloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = dmx::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return dmx::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return dmx::CountedAlignedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { dmx::CountedFree(p); }
void operator delete[](void* p) noexcept { dmx::CountedFree(p); }
void operator delete(void* p, std::size_t) noexcept { dmx::CountedFree(p); }
void operator delete[](void* p, std::size_t) noexcept { dmx::CountedFree(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  dmx::CountedFree(p);
}
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  dmx::CountedFree(p);
}
void operator delete(void* p, std::align_val_t) noexcept {
  dmx::CountedFree(p);
}
void operator delete[](void* p, std::align_val_t) noexcept {
  dmx::CountedFree(p);
}
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  dmx::CountedFree(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  dmx::CountedFree(p);
}

#else  // !DMX_ALLOC_STATS

namespace dmx {

bool AllocStats::Enabled() { return false; }

AllocCounts AllocStats::ThreadTotals() { return AllocCounts{}; }

}  // namespace dmx

#endif  // DMX_ALLOC_STATS
