// Clang Thread Safety Analysis macro shims (abseil/LevelDB idiom): the lock
// regime documented in DESIGN.md §9 is stated in these attributes and checked
// at compile time by clang's -Wthread-safety. Off clang (GCC, MSVC) every
// macro expands to nothing, so the annotations cost other toolchains nothing.
//
// Vocabulary (see https://clang.llvm.org/docs/ThreadSafetyAnalysis.html):
//   DMX_CAPABILITY        marks a class as a lockable capability (Mutex).
//   DMX_SCOPED_CAPABILITY marks an RAII class that acquires on construction
//                         and releases on destruction (MutexLock).
//   DMX_GUARDED_BY(mu)    a field that may only be touched while holding mu.
//   DMX_PT_GUARDED_BY(mu) a pointer field whose *pointee* is guarded by mu.
//   DMX_REQUIRES(mu)      callers must hold mu exclusively.
//   DMX_REQUIRES_SHARED(mu) callers must hold mu at least shared.
//   DMX_ACQUIRE / DMX_ACQUIRE_SHARED / DMX_RELEASE / DMX_RELEASE_SHARED /
//   DMX_RELEASE_GENERIC   lock-transition annotations on mutex methods.
//   DMX_TRY_ACQUIRE(b, mu)  acquires mu iff the function returns `b`.
//   DMX_EXCLUDES(mu)      caller must NOT hold mu (non-reentrancy).
//   DMX_ASSERT_CAPABILITY(mu) runtime assertion telling the analysis mu is
//                         held — the escape hatch for paths that provably own
//                         a lock the analysis cannot see (recovery replay).
//   DMX_NO_THREAD_SAFETY_ANALYSIS  opt a function out entirely. Allowed only
//                         inside the wrapper seam (common/mutex.h); the
//                         project linter forbids it elsewhere.

#ifndef DMX_COMMON_THREAD_ANNOTATIONS_H_
#define DMX_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define DMX_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define DMX_THREAD_ANNOTATION_ATTRIBUTE(x)  // no-op off clang
#endif

#define DMX_CAPABILITY(x) DMX_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

#define DMX_SCOPED_CAPABILITY DMX_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

#define DMX_GUARDED_BY(x) DMX_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

#define DMX_PT_GUARDED_BY(x) DMX_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

#define DMX_REQUIRES(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))

#define DMX_REQUIRES_SHARED(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

#define DMX_ACQUIRE(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))

#define DMX_ACQUIRE_SHARED(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))

#define DMX_RELEASE(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

#define DMX_RELEASE_SHARED(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

#define DMX_RELEASE_GENERIC(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(release_generic_capability(__VA_ARGS__))

#define DMX_TRY_ACQUIRE(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

#define DMX_TRY_ACQUIRE_SHARED(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))

#define DMX_EXCLUDES(...) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

#define DMX_ASSERT_CAPABILITY(x) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(assert_capability(x))

#define DMX_ASSERT_SHARED_CAPABILITY(x) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(assert_shared_capability(x))

#define DMX_RETURN_CAPABILITY(x) \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(lock_returned(x))

#define DMX_NO_THREAD_SAFETY_ANALYSIS \
  DMX_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // DMX_COMMON_THREAD_ANNOTATIONS_H_
