#include "common/value.h"

#include <cmath>
#include <functional>

#include "common/nested_table.h"
#include "common/string_util.h"

namespace dmx {

const char* DataTypeToString(DataType type) {
  switch (type) {
    case DataType::kBool:
      return "BOOL";
    case DataType::kLong:
      return "LONG";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kText:
      return "TEXT";
    case DataType::kTable:
      return "TABLE";
  }
  return "UNKNOWN";
}

Result<DataType> DataTypeFromString(const std::string& s) {
  if (EqualsCi(s, "BOOL") || EqualsCi(s, "BOOLEAN")) return DataType::kBool;
  if (EqualsCi(s, "LONG") || EqualsCi(s, "INT") || EqualsCi(s, "INTEGER")) {
    return DataType::kLong;
  }
  if (EqualsCi(s, "DOUBLE") || EqualsCi(s, "FLOAT") || EqualsCi(s, "REAL")) {
    return DataType::kDouble;
  }
  if (EqualsCi(s, "TEXT") || EqualsCi(s, "STRING") || EqualsCi(s, "VARCHAR")) {
    return DataType::kText;
  }
  if (EqualsCi(s, "TABLE")) return DataType::kTable;
  return ParseError() << "unknown data type '" << s << "'";
}

Result<double> Value::AsDouble() const {
  switch (kind()) {
    case Kind::kBool:
      return bool_value() ? 1.0 : 0.0;
    case Kind::kLong:
      return static_cast<double>(long_value());
    case Kind::kDouble:
      return double_value();
    default:
      return InvalidArgument() << "value '" << ToString() << "' is not numeric";
  }
}

Result<int64_t> Value::AsLong() const {
  switch (kind()) {
    case Kind::kBool:
      return static_cast<int64_t>(bool_value());
    case Kind::kLong:
      return long_value();
    case Kind::kDouble: {
      double d = double_value();
      if (d != std::floor(d)) {
        return InvalidArgument() << "value " << ToString() << " is not integral";
      }
      return static_cast<int64_t>(d);
    }
    default:
      return InvalidArgument() << "value '" << ToString() << "' is not numeric";
  }
}

Result<Value> Value::CoerceTo(DataType type) const {
  if (is_null()) return *this;
  switch (type) {
    case DataType::kBool: {
      if (is_bool()) return *this;
      DMX_ASSIGN_OR_RETURN(int64_t i, AsLong());
      return Value::Bool(i != 0);
    }
    case DataType::kLong: {
      if (is_long()) return *this;
      DMX_ASSIGN_OR_RETURN(int64_t i, AsLong());
      return Value::Long(i);
    }
    case DataType::kDouble: {
      if (is_double()) return *this;
      DMX_ASSIGN_OR_RETURN(double d, AsDouble());
      return Value::Double(d);
    }
    case DataType::kText:
      if (is_text()) return *this;
      if (is_table()) {
        return InvalidArgument() << "cannot coerce a nested table to TEXT";
      }
      return Value::Text(ToString());
    case DataType::kTable:
      if (is_table()) return *this;
      return InvalidArgument() << "cannot coerce scalar '" << ToString()
                               << "' to TABLE";
  }
  return Internal() << "unreachable coercion";
}

bool Value::Equals(const Value& other) const {
  if (kind() != other.kind()) {
    // Numeric cross-kind equality (3 == 3.0) keeps dictionaries stable when a
    // column mixes longs and doubles (e.g. CSV reload).
    if (is_numeric() && other.is_numeric() && !is_bool() && !other.is_bool()) {
      return AsDouble().ValueOr(0) == other.AsDouble().ValueOr(0);
    }
    return false;
  }
  switch (kind()) {
    case Kind::kNull:
      return true;
    case Kind::kBool:
      return bool_value() == other.bool_value();
    case Kind::kLong:
      return long_value() == other.long_value();
    case Kind::kDouble:
      return double_value() == other.double_value();
    case Kind::kText:
      return text_value() == other.text_value();
    case Kind::kTable: {
      const auto& a = table_value();
      const auto& b = other.table_value();
      if (a == b) return true;
      if (a == nullptr || b == nullptr) return false;
      return a->Equals(*b);
    }
  }
  return false;
}

namespace {
// Rank groups for the cross-kind total order.
int KindRank(Value::Kind kind) {
  switch (kind) {
    case Value::Kind::kNull:
      return 0;
    case Value::Kind::kBool:
      return 1;
    case Value::Kind::kLong:
    case Value::Kind::kDouble:
      return 2;
    case Value::Kind::kText:
      return 3;
    case Value::Kind::kTable:
      return 4;
  }
  return 5;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = KindRank(kind());
  int rb = KindRank(other.kind());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (kind()) {
    case Kind::kNull:
      return 0;
    case Kind::kBool:
      return static_cast<int>(bool_value()) - static_cast<int>(other.bool_value());
    case Kind::kLong:
    case Kind::kDouble: {
      double a = AsDouble().ValueOr(0);
      double b = other.AsDouble().ValueOr(0);
      if (a < b) return -1;
      if (a > b) return 1;
      return 0;
    }
    case Kind::kText:
      return text_value().compare(other.text_value());
    case Kind::kTable: {
      const void* a = table_value().get();
      const void* b = other.table_value().get();
      if (a < b) return -1;
      return a == b ? 0 : 1;
    }
  }
  return 0;
}

size_t Value::Hash() const {
  switch (kind()) {
    case Kind::kNull:
      return 0x9e3779b9;
    case Kind::kBool:
      return std::hash<bool>()(bool_value());
    case Kind::kLong:
      // Hash longs as doubles so 3 and 3.0 collide, matching Equals.
      return std::hash<double>()(static_cast<double>(long_value()));
    case Kind::kDouble:
      return std::hash<double>()(double_value());
    case Kind::kText:
      return std::hash<std::string>()(text_value());
    case Kind::kTable:
      return std::hash<const void*>()(table_value().get());
  }
  return 0;
}

std::string Value::ToString() const {
  switch (kind()) {
    case Kind::kNull:
      return "NULL";
    case Kind::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case Kind::kLong:
      return std::to_string(long_value());
    case Kind::kDouble:
      return FormatDouble(double_value());
    case Kind::kText:
      return text_value();
    case Kind::kTable: {
      const auto& t = table_value();
      return "#rows=" + std::to_string(t ? t->num_rows() : 0);
    }
  }
  return "?";
}

}  // namespace dmx
