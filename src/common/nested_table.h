// NestedTable: the immutable value of a TABLE-typed column. "For any given
// case row, the value of a TABLE type column contains the entire contents of
// the associated nested table" (paper §3.2.1 f).

#ifndef DMX_COMMON_NESTED_TABLE_H_
#define DMX_COMMON_NESTED_TABLE_H_

#include <memory>
#include <utility>
#include <vector>

#include "common/schema.h"
#include "common/value.h"

namespace dmx {

/// \brief An immutable (schema, rows) pair stored inside a Value.
///
/// Immutability lets hierarchical rowsets share nested tables freely: copying
/// a case copies a shared_ptr, never the child rows.
class NestedTable {
 public:
  NestedTable(std::shared_ptr<const Schema> schema, std::vector<Row> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  static std::shared_ptr<const NestedTable> Make(
      std::shared_ptr<const Schema> schema, std::vector<Row> rows) {
    return std::make_shared<const NestedTable>(std::move(schema), std::move(rows));
  }

  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  bool Equals(const NestedTable& other) const;

 private:
  std::shared_ptr<const Schema> schema_;
  std::vector<Row> rows_;
};

}  // namespace dmx

#endif  // DMX_COMMON_NESTED_TABLE_H_
