// Schema: ordered, case-insensitively named columns of a rowset. A column of
// type TABLE carries its own nested Schema, giving the hierarchical rowset
// shape of the paper's casesets (Section 3.1).

#ifndef DMX_COMMON_SCHEMA_H_
#define DMX_COMMON_SCHEMA_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"
#include "common/value.h"

namespace dmx {

class Schema;

/// One column: a name, a type, and (for TABLE columns) the nested schema.
struct ColumnDef {
  std::string name;
  DataType type = DataType::kText;
  std::shared_ptr<const Schema> nested;  ///< Set iff type == kTable.

  ColumnDef() = default;
  ColumnDef(std::string name_in, DataType type_in)
      : name(std::move(name_in)), type(type_in) {}
  ColumnDef(std::string name_in, std::shared_ptr<const Schema> nested_in)
      : name(std::move(name_in)), type(DataType::kTable),
        nested(std::move(nested_in)) {}
};

/// \brief Ordered column list with case-insensitive name lookup.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  static std::shared_ptr<const Schema> Make(std::vector<ColumnDef> columns) {
    return std::make_shared<const Schema>(std::move(columns));
  }

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column named `name` (case-insensitive), or -1.
  int FindColumn(std::string_view name) const;

  /// Like FindColumn but produces a BindError naming the column on failure.
  Result<size_t> ResolveColumn(std::string_view name) const;

  /// One-shot batch resolution: every name resolved against the index in a
  /// single call, failing on the first unknown name. Callers resolve once
  /// per statement and index rows by position in their per-row loops —
  /// string-keyed lookups never belong inside a hot loop (DESIGN.md §14).
  Result<std::vector<size_t>> ResolveColumns(
      const std::vector<std::string>& names) const;

  bool HasColumn(std::string_view name) const { return FindColumn(name) >= 0; }

  /// Structural equality: same names (case-insensitive), types, and nested
  /// schemas in the same order.
  bool Equals(const Schema& other) const;

  /// "name TYPE, name TYPE(...)" — used in error messages and tests.
  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
  std::map<std::string, size_t, LessCi> index_;
};

}  // namespace dmx

#endif  // DMX_COMMON_SCHEMA_H_
