#include "common/rowset.h"

#include <algorithm>
#include <sstream>

namespace dmx {

Status Rowset::Append(Row row) {
  if (row.size() != schema_->num_columns()) {
    return InvalidArgument() << "row has " << row.size() << " cells, schema has "
                             << schema_->num_columns() << " columns";
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

Result<Value> Rowset::Get(size_t row, std::string_view column) const {
  if (row >= rows_.size()) {
    return InvalidArgument() << "row index " << row << " out of range ("
                             << rows_.size() << " rows)";
  }
  DMX_ASSIGN_OR_RETURN(size_t col, schema_->ResolveColumn(column));
  return rows_[row][col];
}

namespace {

void PrintTable(const Schema& schema, const std::vector<Row>& rows,
                bool expand_nested, int indent, std::ostringstream* out) {
  std::string pad(indent, ' ');
  std::vector<size_t> widths;
  std::vector<std::vector<std::string>> cells;
  widths.reserve(schema.num_columns());
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    widths.push_back(schema.column(c).name.size());
  }
  for (const Row& row : rows) {
    std::vector<std::string> line;
    line.reserve(row.size());
    for (size_t c = 0; c < row.size(); ++c) {
      line.push_back(row[c].ToString());
      if (c < widths.size()) widths[c] = std::max(widths[c], line.back().size());
    }
    cells.push_back(std::move(line));
  }
  *out << pad;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) *out << " | ";
    const std::string& name = schema.column(c).name;
    *out << name << std::string(widths[c] - name.size(), ' ');
  }
  *out << '\n';
  for (size_t r = 0; r < cells.size(); ++r) {
    *out << pad;
    for (size_t c = 0; c < cells[r].size(); ++c) {
      if (c > 0) *out << " | ";
      *out << cells[r][c];
      if (c < widths.size()) *out << std::string(widths[c] - cells[r][c].size(), ' ');
    }
    *out << '\n';
    if (expand_nested) {
      for (size_t c = 0; c < rows[r].size(); ++c) {
        if (rows[r][c].is_table() && rows[r][c].table_value() != nullptr) {
          const NestedTable& nested = *rows[r][c].table_value();
          *out << pad << "  [" << schema.column(c).name << "]\n";
          PrintTable(*nested.schema(), nested.rows(), expand_nested, indent + 4, out);
        }
      }
    }
  }
}

size_t ValueBytes(const Value& v) {
  switch (v.kind()) {
    case Value::Kind::kText:
      return sizeof(Value) + v.text_value().capacity();
    case Value::Kind::kTable: {
      size_t total = sizeof(Value) + sizeof(NestedTable);
      if (v.table_value() != nullptr) {
        for (const Row& row : v.table_value()->rows()) {
          for (const Value& cell : row) total += ValueBytes(cell);
        }
      }
      return total;
    }
    default:
      return sizeof(Value);
  }
}

}  // namespace

std::string Rowset::ToString(bool expand_nested) const {
  std::ostringstream out;
  PrintTable(*schema_, rows_, expand_nested, 0, &out);
  return out.str();
}

size_t Rowset::ApproxBytes() const {
  size_t total = sizeof(Rowset);
  for (const Row& row : rows_) {
    total += sizeof(Row);
    for (const Value& cell : row) total += ValueBytes(cell);
  }
  return total;
}

Result<Rowset> RowsetReader::ReadAll() {
  Rowset out(schema());
  Row row;
  while (true) {
    DMX_ASSIGN_OR_RETURN(bool has, Next(&row));
    if (!has) break;
    DMX_RETURN_IF_ERROR(out.Append(std::move(row)));
    row = Row();
  }
  return out;
}

}  // namespace dmx
