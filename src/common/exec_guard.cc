#include "common/exec_guard.h"

namespace dmx {

namespace {

thread_local ExecGuard* g_current_guard = nullptr;

}  // namespace

ExecGuard::ExecGuard(const ExecLimits& limits) : limits_(limits) {
  if (limits_.deadline_ms > 0) {
    has_deadline_ = true;
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits_.deadline_ms);
  }
}

Status ExecGuard::Check() {
  if (limits_.cancel != nullptr && limits_.cancel->cancelled()) {
    return Cancelled() << "statement cancelled by caller";
  }
  if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
    return DeadlineExceeded() << "statement deadline of " << limits_.deadline_ms
                              << " ms exceeded";
  }
  return Status::OK();
}

Status ExecGuard::ChargeOutputRows(uint64_t n) {
  output_rows_ += n;
  if (limits_.max_output_rows > 0 && output_rows_ > limits_.max_output_rows) {
    return ResourceExhausted() << "statement output exceeds the budget of "
                               << limits_.max_output_rows << " rows";
  }
  return Check();
}

Status ExecGuard::ChargeWorkingSet(uint64_t n) {
  working_set_rows_ += n;
  if (limits_.max_working_set_rows > 0 &&
      working_set_rows_ > limits_.max_working_set_rows) {
    return ResourceExhausted()
           << "statement working set exceeds the budget of "
           << limits_.max_working_set_rows << " rows";
  }
  return Check();
}

ExecGuardScope::ExecGuardScope(ExecGuard* guard) : previous_(g_current_guard) {
  g_current_guard = guard;
}

ExecGuardScope::~ExecGuardScope() { g_current_guard = previous_; }

ExecGuard* CurrentExecGuard() { return g_current_guard; }

Status GuardCheck() {
  ExecGuard* guard = g_current_guard;
  return guard != nullptr ? guard->Check() : Status::OK();
}

Status GuardChargeOutputRows(uint64_t n) {
  ExecGuard* guard = g_current_guard;
  return guard != nullptr ? guard->ChargeOutputRows(n) : Status::OK();
}

Status GuardChargeWorkingSet(uint64_t n) {
  ExecGuard* guard = g_current_guard;
  return guard != nullptr ? guard->ChargeWorkingSet(n) : Status::OK();
}

}  // namespace dmx
