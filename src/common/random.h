// Deterministic random source used by the data generator, EM/K-means
// initialization and train/test splitting. All call sites take a seed so the
// whole repository is reproducible.

#ifndef DMX_COMMON_RANDOM_H_
#define DMX_COMMON_RANDOM_H_

#include <cstdint>
#include <random>

namespace dmx {

/// Thin wrapper around std::mt19937_64 with the handful of draws we need.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform integer in [0, bound).
  uint64_t Uniform(uint64_t bound) {
    return std::uniform_int_distribution<uint64_t>(0, bound - 1)(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Standard normal draw scaled to (mean, stddev).
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw.
  bool Chance(double p) { return NextDouble() < p; }

  /// Poisson draw (used for per-customer purchase counts).
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace dmx

#endif  // DMX_COMMON_RANDOM_H_
