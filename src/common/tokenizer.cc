#include "common/tokenizer.h"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdlib>

namespace dmx {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comments: "--" and "//".
    if (i + 1 < n && ((c == '-' && input[i + 1] == '-') ||
                      (c == '/' && input[i + 1] == '/'))) {
      while (i < n && input[i] != '\n') ++i;
      continue;
    }
    // Block comments: "/* ... */" (no nesting, as in SQL). Running off the
    // end of the input is an error: silently treating the tail as comment
    // would hide whatever statement text the comment swallowed.
    if (i + 1 < n && c == '/' && input[i + 1] == '*') {
      size_t start = i;
      i += 2;
      bool closed = false;
      while (i + 1 < n) {
        if (input[i] == '*' && input[i + 1] == '/') {
          i += 2;
          closed = true;
          break;
        }
        ++i;
      }
      if (!closed) {
        return ParseError() << "unterminated block comment at offset " << start;
      }
      continue;
    }
    Token token;
    token.offset = i;
    if (c == '[') {
      // Bracketed identifier; "]]" escapes a closing bracket.
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == ']') {
          if (i + 1 < n && input[i + 1] == ']') {
            text += ']';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return ParseError() << "unterminated [identifier] at offset "
                            << token.offset;
      }
      token.kind = TokenKind::kIdentifier;
      token.quoted = true;
      token.text = std::move(text);
      out.push_back(std::move(token));
      continue;
    }
    if (c == '\'') {
      ++i;
      std::string text;
      bool closed = false;
      while (i < n) {
        if (input[i] == '\'') {
          if (i + 1 < n && input[i + 1] == '\'') {
            text += '\'';
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        text += input[i++];
      }
      if (!closed) {
        return ParseError() << "unterminated string literal at offset "
                            << token.offset;
      }
      token.kind = TokenKind::kString;
      token.text = std::move(text);
      out.push_back(std::move(token));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t start = i;
      bool is_double = false;
      while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      if (i < n && input[i] == '.') {
        is_double = true;
        ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
      }
      if (i < n && (input[i] == 'e' || input[i] == 'E')) {
        size_t exp = i + 1;
        if (exp < n && (input[exp] == '+' || input[exp] == '-')) ++exp;
        if (exp < n && std::isdigit(static_cast<unsigned char>(input[exp]))) {
          is_double = true;
          i = exp;
          while (i < n && std::isdigit(static_cast<unsigned char>(input[i]))) ++i;
        }
      }
      std::string text(input.substr(start, i - start));
      if (is_double) {
        errno = 0;
        double value = std::strtod(text.c_str(), nullptr);
        // ERANGE also covers denormal underflow, which rounds fine; only an
        // overflow to infinity loses the literal's meaning.
        if (errno == ERANGE && std::isinf(value)) {
          return ParseError() << "numeric literal '" << text
                              << "' overflows a DOUBLE at offset " << start;
        }
        token.kind = TokenKind::kDouble;
        token.double_value = value;
      } else {
        errno = 0;
        int64_t value = std::strtoll(text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          return ParseError() << "integer literal '" << text
                              << "' overflows a LONG at offset " << start;
        }
        token.kind = TokenKind::kLong;
        token.long_value = value;
      }
      token.text = std::move(text);
      out.push_back(std::move(token));
      continue;
    }
    if (IsIdentStart(c)) {
      size_t start = i;
      while (i < n && IsIdentChar(input[i])) ++i;
      token.kind = TokenKind::kIdentifier;
      token.text = std::string(input.substr(start, i - start));
      out.push_back(std::move(token));
      continue;
    }
    // Punctuation, longest match first.
    static const char* kTwoChar[] = {"<=", ">=", "<>", "!=", "||"};
    std::string two = i + 1 < n ? std::string(input.substr(i, 2)) : std::string();
    bool matched_two = false;
    for (const char* p : kTwoChar) {
      if (two == p) {
        token.kind = TokenKind::kPunct;
        token.text = two;
        i += 2;
        out.push_back(std::move(token));
        matched_two = true;
        break;
      }
    }
    if (matched_two) continue;
    static const std::string kOneChar = "(),.=<>+-*/;{}$";
    if (kOneChar.find(c) != std::string::npos) {
      token.kind = TokenKind::kPunct;
      token.text = std::string(1, c);
      ++i;
      out.push_back(std::move(token));
      continue;
    }
    return ParseError() << "unexpected character '" << c << "' at offset " << i;
  }
  return out;
}

bool TokenStream::MatchKeyword(std::string_view kw) {
  if (Peek().IsKeyword(kw)) {
    Next();
    return true;
  }
  return false;
}

bool TokenStream::MatchKeywords(std::initializer_list<std::string_view> kws) {
  size_t save = pos_;
  for (std::string_view kw : kws) {
    if (!MatchKeyword(kw)) {
      pos_ = save;
      return false;
    }
  }
  return true;
}

bool TokenStream::MatchPunct(std::string_view p) {
  if (Peek().IsPunct(p)) {
    Next();
    return true;
  }
  return false;
}

Status TokenStream::ExpectKeyword(std::string_view kw) {
  if (!MatchKeyword(kw)) {
    return ErrorHere(std::string("expected keyword '") + std::string(kw) + "'");
  }
  return Status::OK();
}

Status TokenStream::ExpectPunct(std::string_view p) {
  if (!MatchPunct(p)) {
    return ErrorHere(std::string("expected '") + std::string(p) + "'");
  }
  return Status::OK();
}

Result<std::string> TokenStream::ExpectIdentifier(std::string_view what) {
  if (Peek().kind != TokenKind::kIdentifier) {
    return ErrorHere(std::string("expected ") + std::string(what));
  }
  return Next().text;
}

Status TokenStream::RecursionScope::Check() const {
  if (stream_->depth_ <= kMaxRecursionDepth) return Status::OK();
  const Token& t = stream_->Peek();
  return InvalidArgument() << "statement nests more than "
                           << kMaxRecursionDepth
                           << " levels deep at offset " << t.offset;
}

Status TokenStream::ErrorHere(std::string_view message) const {
  const Token& t = Peek();
  std::string found =
      t.IsEnd() ? std::string("end of input") : "'" + t.text + "'";
  return ParseError() << message << ", found " << found << " at offset "
                      << t.offset;
}

}  // namespace dmx
