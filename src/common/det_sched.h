// det-sched: a test-only cooperative scheduler for bounded systematic
// exploration of multi-threaded scenarios (loom / PCT lineage). Exists only
// under -DDMX_DEBUG_LOCKS=ON, like lockdep.
//
// Model: RunScenario spawns one OS thread per body, but only ONE is ever
// runnable at a time. Control changes hands exclusively at the yield points
// the mutex wrappers inject (before acquisitions, after releases, around
// CondVar waits), so the entire interleaving is decided by this scheduler —
// and the decisions are a pure function of the seed. Same seed => same
// schedule, byte for byte (the schedule hash in RunResult proves it).
//
// Scheduling policy: a seeded PRNG picks the next thread at every decision
// point, with a *preemption bound* — the scheduler switches away from a
// runnable thread at most `preemption_bound` times per run (switches forced
// by blocking or completion are free). Small preemption bounds are known to
// expose most real concurrency bugs (PCT), and the bound keeps the schedule
// space small enough to sweep hundreds of seeds per test.
//
// Blocking: while a scheduler is active, the wrappers never block on a raw
// mutex (that would hang the whole cooperative world). A blocking Lock()
// becomes try_lock + ContendedYield loop: the thread parks in the scheduler
// marked "contended on L" and retries when next scheduled. Deadlock is
// therefore *detected*, not suffered: if every live thread is contended and
// no lock has been released since each last retried, no schedule can make
// progress — the run fails with a diagnostic naming each thread and the
// lock it is blocked on, parked threads unwind (an internal exception the
// worker wrapper catches), and RunScenario returns the failure. A step
// budget backstops try-lock livelocks the precise check cannot see.
//
// Timed waits (CondVar::WaitFor, TryLockFor) take their timeout path at the
// scheduler's discretion: a timed wait is modelled as "may resume at any
// scheduled point" — sound, because spurious wakeups and timeouts make that
// exact behaviour legal for the real primitives.
//
// Fairness: a thread that keeps hitting voluntary yield points while
// continuously scheduled (a guard-polling try-lock loop, admission's condvar
// poll) is rotated out after a fixed number of consecutive yields without
// charging the preemption bound — a deterministic backstop so poll loops
// cannot pin the scheduler once the preemption budget is spent.

#ifndef DMX_COMMON_DET_SCHED_H_
#define DMX_COMMON_DET_SCHED_H_

#ifdef DMX_DEBUG_LOCKS

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace dmx::detsched {

struct Options {
  uint64_t seed = 1;
  /// Voluntary context switches the scheduler may inject per run.
  int preemption_bound = 3;
  /// Scheduling decisions before the run is declared stuck (livelock
  /// backstop for try-lock loops the precise deadlock check cannot see).
  uint64_t max_steps = 2'000'000;
};

struct RunResult {
  bool ok = false;
  std::string failure;       ///< Empty when ok; else the diagnostic.
  uint64_t schedule_hash = 0;  ///< FNV-1a over the decision trace.
  uint64_t steps = 0;          ///< Scheduling decisions taken.
  uint32_t preemptions = 0;    ///< Voluntary switches actually injected.
};

/// Runs `bodies` (one thread each) to completion under the cooperative
/// scheduler and returns the outcome. Bodies start only after every thread
/// has registered (deterministic start order: body 0 runs first). At most
/// one scenario may run at a time per process.
RunResult RunScenario(const Options& options,
                      std::vector<std::function<void()>> bodies);

/// True when the calling thread is managed by an active scenario — the
/// mutex wrappers consult this to route blocking through the scheduler.
bool Active();

/// Voluntary yield point (before acquisitions, after releases, timed
/// waits). May transfer control to another thread, preemption bound
/// permitting.
void SchedulePoint();

/// A blocking acquisition attempt failed: park marked "contended on
/// `lock`" until scheduled again (deadlock-checked). Unwinds via an
/// internal exception if the run has failed.
void ContendedYield(const void* lock);

/// Records that lock state changed (successful acquire or release) — the
/// progress signal the deadlock check keys on.
void NoteProgress();

}  // namespace dmx::detsched

#endif  // DMX_DEBUG_LOCKS
#endif  // DMX_COMMON_DET_SCHED_H_
