// Cooperative scheduler implementation. See det_sched.h for the model.
//
// This file (with lockdep.cc) is a sanctioned raw-primitive seam: the
// scheduler parks and wakes the scenario's threads with a raw mutex +
// condition_variable of its own — routing those through dmx::Mutex would
// recurse into these very hooks.

#include "common/det_sched.h"

#ifdef DMX_DEBUG_LOCKS

#include <condition_variable>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

namespace dmx::detsched {

namespace {

/// Thrown to unwind a parked thread once the run has failed (deadlock /
/// step budget); caught by the worker wrapper in RunScenario.
struct AbortRun {};

constexpr int kNobody = -1;

/// Fairness backstop for poll loops (guard-polling TryLockFor, admission's
/// WaitFor poll): a thread that keeps hitting voluntary yield points while
/// continuously scheduled is rotated out after this many consecutive yields,
/// without charging the preemption bound. Deterministic — a counter, not a
/// clock — so schedule hashes stay a pure function of the seed.
constexpr uint32_t kSpinYieldLimit = 8;

class Scheduler {
 public:
  Scheduler(const Options& options, size_t num_threads)
      : bound_(options.preemption_bound),
        max_steps_(options.max_steps),
        rng_(options.seed != 0 ? options.seed : 0x9E3779B97F4A7C15ull),
        threads_(num_threads) {}

  /// Parks until every thread has attached, then until scheduled.
  void Attach(int id) {
    std::unique_lock<std::mutex> lock(mu_);
    threads_[id].attached = true;
    if (++attached_ == threads_.size()) {
      current_ = 0;  // deterministic start: body 0 runs first
      cv_.notify_all();
    }
    cv_.wait(lock, [&] { return failed_ || current_ == id; });
    if (failed_) throw AbortRun{};
  }

  void Finish(int id) {
    std::unique_lock<std::mutex> lock(mu_);
    threads_[id].finished = true;
    PickNextLocked(id, /*caller_runnable=*/false);
    cv_.notify_all();
  }

  /// Voluntary yield: may preempt (bound permitting), else keeps running.
  void Yield(int id) {
    std::unique_lock<std::mutex> lock(mu_);
    if (failed_) return;  // failure mode: run free so threads can unwind
    ++threads_[id].spin;
    PickNextLocked(id, /*caller_runnable=*/true);
    if (current_ == id) return;
    cv_.notify_all();
    cv_.wait(lock, [&] { return failed_ || current_ == id; });
  }

  /// Failed blocking acquisition: park marked contended until rescheduled.
  void Contended(int id, const void* lock_addr) {
    std::unique_lock<std::mutex> lock(mu_);
    if (failed_) throw AbortRun{};
    threads_[id].contended_on = lock_addr;
    threads_[id].block_epoch = progress_;
    threads_[id].spin = 0;  // parked: others will run
    PickNextLocked(id, /*caller_runnable=*/false);
    cv_.notify_all();
    cv_.wait(lock, [&] { return failed_ || current_ == id; });
    threads_[id].contended_on = nullptr;
    if (failed_) throw AbortRun{};
  }

  void NoteProgress() {
    std::unique_lock<std::mutex> lock(mu_);
    ++progress_;
  }

  RunResult Result() {
    std::unique_lock<std::mutex> lock(mu_);
    RunResult result;
    result.ok = !failed_;
    result.failure = failure_;
    result.schedule_hash = hash_;
    result.steps = steps_;
    result.preemptions = preemptions_;
    return result;
  }

 private:
  struct ThreadState {
    bool attached = false;
    bool finished = false;
    const void* contended_on = nullptr;
    uint64_t block_epoch = 0;  ///< progress_ when it last failed its try.
    uint32_t spin = 0;  ///< Consecutive voluntary yields while scheduled.
  };

  uint64_t NextRand() {
    rng_ ^= rng_ >> 12;
    rng_ ^= rng_ << 25;
    rng_ ^= rng_ >> 27;
    return rng_ * 0x2545F4914F6CDD1Dull;
  }

  void FailLocked(std::string why) {
    failed_ = true;
    failure_ = std::move(why);
    current_ = kNobody;
    cv_.notify_all();
  }

  /// One scheduling decision. `caller` just yielded; it may keep running
  /// only when `caller_runnable`. Requires mu_.
  void PickNextLocked(int caller, bool caller_runnable) {
    if (failed_) return;
    // Eligible = live threads that could make progress if scheduled: not
    // contended, or contended but some lock was released/acquired since
    // they last retried (their retry might now succeed).
    std::vector<int> eligible;
    bool any_live = false;
    for (size_t i = 0; i < threads_.size(); ++i) {
      const ThreadState& t = threads_[i];
      if (!t.attached || t.finished) continue;
      any_live = true;
      if (t.contended_on == nullptr || t.block_epoch != progress_) {
        eligible.push_back(static_cast<int>(i));
      }
    }
    if (!any_live) {
      current_ = kNobody;  // scenario complete
      return;
    }
    if (eligible.empty()) {
      // Every live thread is parked on a lock and nothing has been
      // released since each last retried: no schedule can make progress.
      std::ostringstream msg;
      msg << "deadlock: every live thread is blocked on a lock";
      for (size_t i = 0; i < threads_.size(); ++i) {
        if (threads_[i].attached && !threads_[i].finished) {
          msg << "\n  thread " << i << " blocked on lock @"
              << threads_[i].contended_on;
        }
      }
      FailLocked(msg.str());
      return;
    }
    if (++steps_ > max_steps_) {
      FailLocked("step budget exceeded (" + std::to_string(max_steps_) +
                 " scheduling decisions): livelock or runaway scenario");
      return;
    }

    int next;
    if (caller_runnable) {
      std::vector<int> others;
      for (int id : eligible) {
        if (id != caller) others.push_back(id);
      }
      // A thread stuck in a poll loop (spin >= limit) is rotated out for
      // free: without this, an exhausted preemption budget would pin a
      // guard-polling waiter forever (livelock, not a real deadlock).
      const bool forced = threads_[caller].spin >= kSpinYieldLimit;
      if (!others.empty() &&
          (forced || (preemptions_ < bound_ && NextRand() % 2 == 0))) {
        next = others[NextRand() % others.size()];
        if (!forced) ++preemptions_;
        threads_[caller].spin = 0;  // rescheduled later with a fresh slice
      } else {
        next = caller;
      }
    } else {
      next = eligible[NextRand() % eligible.size()];
    }
    current_ = next;
    hash_ = (hash_ ^ static_cast<uint64_t>(next + 1)) * 0x100000001B3ull;
  }

  std::mutex mu_;
  std::condition_variable cv_;
  const int bound_;
  const uint64_t max_steps_;
  uint64_t rng_;
  std::vector<ThreadState> threads_;
  size_t attached_ = 0;
  int current_ = kNobody;
  bool failed_ = false;
  std::string failure_;
  uint64_t progress_ = 0;
  uint64_t steps_ = 0;
  int preemptions_ = 0;
  uint64_t hash_ = 0xCBF29CE484222325ull;  // FNV-1a offset basis
};

thread_local Scheduler* tls_sched = nullptr;
thread_local int tls_id = -1;

}  // namespace

RunResult RunScenario(const Options& options,
                      std::vector<std::function<void()>> bodies) {
  static std::mutex process_exclusive;  // one scenario at a time
  std::unique_lock<std::mutex> exclusive(process_exclusive);

  Scheduler sched(options, bodies.size());
  std::vector<std::thread> workers;
  workers.reserve(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    workers.emplace_back([&sched, i, body = std::move(bodies[i])] {
      tls_sched = &sched;
      tls_id = static_cast<int>(i);
      try {
        sched.Attach(static_cast<int>(i));
        body();
      } catch (const AbortRun&) {
        // The run failed (deadlock / step budget); unwound cleanly.
      }
      tls_sched = nullptr;
      tls_id = -1;
      sched.Finish(static_cast<int>(i));
    });
  }
  for (std::thread& worker : workers) worker.join();
  return sched.Result();
}

bool Active() { return tls_sched != nullptr; }

void SchedulePoint() {
  if (tls_sched != nullptr) tls_sched->Yield(tls_id);
}

void ContendedYield(const void* lock) {
  if (tls_sched != nullptr) tls_sched->Contended(tls_id, lock);
}

void NoteProgress() {
  if (tls_sched != nullptr) tls_sched->NoteProgress();
}

}  // namespace dmx::detsched

#endif  // DMX_DEBUG_LOCKS
