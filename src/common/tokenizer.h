// Shared tokenizer for the three command dialects of the provider: the SQL
// subset, the SHAPE data-shaping language, and DMX. All of them use the same
// lexical conventions: case-insensitive keywords, [bracket-quoted]
// identifiers (']' escaped by doubling), 'single-quoted' strings, numbers,
// and "--" / "//" line comments.

#ifndef DMX_COMMON_TOKENIZER_H_
#define DMX_COMMON_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/string_util.h"

namespace dmx {

/// Lexical category of a token.
enum class TokenKind {
  kIdentifier,  ///< Bare word or [bracketed] identifier.
  kString,      ///< 'quoted literal' ('' escapes a quote).
  kLong,        ///< Integer literal.
  kDouble,      ///< Floating literal.
  kPunct,       ///< Operator / punctuation: ( ) , . = <> <= >= < > + - * / $
  kEnd,         ///< End of input sentinel.
};

/// \brief One lexeme with its source position (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        ///< Identifier/punct spelling or string contents.
  int64_t long_value = 0;  ///< Set for kLong.
  double double_value = 0; ///< Set for kDouble.
  size_t offset = 0;       ///< Byte offset in the command text.
  bool quoted = false;     ///< Identifier came from [brackets].

  bool IsKeyword(std::string_view kw) const {
    return kind == TokenKind::kIdentifier && !quoted && EqualsCi(text, kw);
  }
  bool IsPunct(std::string_view p) const {
    return kind == TokenKind::kPunct && text == p;
  }
  bool IsEnd() const { return kind == TokenKind::kEnd; }
};

/// Lexes a full command string. Fails on unterminated strings/brackets and
/// unknown characters.
Result<std::vector<Token>> Tokenize(std::string_view input);

/// \brief Cursor over a token vector with the match/expect helpers every
/// recursive-descent parser in the repository builds on.
class TokenStream {
 public:
  explicit TokenStream(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(size_t lookahead = 0) const {
    size_t i = pos_ + lookahead;
    return i < tokens_.size() ? tokens_[i] : end_;
  }
  const Token& Next() {
    const Token& t = Peek();
    if (pos_ < tokens_.size()) ++pos_;
    return t;
  }
  bool AtEnd() const { return Peek().IsEnd(); }
  size_t position() const { return pos_; }
  void Rewind(size_t position) { pos_ = position; }

  /// Consumes the keyword if it is next; returns whether it did.
  bool MatchKeyword(std::string_view kw);

  /// Consumes a sequence of keywords ("ORDER","BY") atomically.
  bool MatchKeywords(std::initializer_list<std::string_view> kws);

  /// Consumes the punctuation token if it is next.
  bool MatchPunct(std::string_view p);

  /// Errors (ParseError) unless the keyword is next; consumes it.
  Status ExpectKeyword(std::string_view kw);

  /// Errors unless the punctuation is next; consumes it.
  Status ExpectPunct(std::string_view p);

  /// Consumes an identifier (bare or bracketed) and returns its text.
  Result<std::string> ExpectIdentifier(std::string_view what = "identifier");

  /// ParseError annotated with the offending token.
  Status ErrorHere(std::string_view message) const;

  /// Maximum grammar recursion depth (parenthesized expressions, nested
  /// function calls, subqueries). Deep enough for any sane statement, small
  /// enough that the recursive-descent parsers cannot overflow the stack —
  /// fuzzed inputs like "((((..." fail cleanly instead of crashing.
  static constexpr int kMaxRecursionDepth = 100;

  /// \brief RAII depth frame for the recursive-descent parsers. Every
  /// self-recursive production opens one and checks it:
  ///
  ///   TokenStream::RecursionScope depth(tokens);
  ///   DMX_RETURN_IF_ERROR(depth.Check());
  ///
  /// Check() reports kInvalidArgument (with the current token's offset as
  /// the source span) once the nesting exceeds kMaxRecursionDepth.
  class RecursionScope {
   public:
    explicit RecursionScope(TokenStream* stream) : stream_(stream) {
      ++stream_->depth_;
    }
    ~RecursionScope() { --stream_->depth_; }
    RecursionScope(const RecursionScope&) = delete;
    RecursionScope& operator=(const RecursionScope&) = delete;

    Status Check() const;

   private:
    TokenStream* stream_;
  };

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int depth_ = 0;  ///< Live RecursionScope frames.
  Token end_;
};

}  // namespace dmx

#endif  // DMX_COMMON_TOKENIZER_H_
