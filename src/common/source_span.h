// SourceSpan: a byte range inside a command string. Parsers stamp spans onto
// AST nodes so the semantic analyzer (core/dmx_analyzer.h) can point
// diagnostics at the offending text instead of just naming it.

#ifndef DMX_COMMON_SOURCE_SPAN_H_
#define DMX_COMMON_SOURCE_SPAN_H_

#include <cstddef>
#include <string>
#include <string_view>

namespace dmx {

/// \brief Half-open byte range [offset, offset + length) in a statement.
/// A zero-length span at offset 0 means "no position information" (AST nodes
/// built programmatically rather than parsed).
struct SourceSpan {
  size_t offset = 0;
  size_t length = 0;

  bool valid() const { return length > 0; }
};

/// 1-based line/column of a byte offset, for "2:17"-style diagnostics.
struct LineColumn {
  size_t line = 1;
  size_t column = 1;
};

inline LineColumn LocateOffset(std::string_view source, size_t offset) {
  LineColumn at;
  if (offset > source.size()) offset = source.size();
  for (size_t i = 0; i < offset; ++i) {
    if (source[i] == '\n') {
      ++at.line;
      at.column = 1;
    } else {
      ++at.column;
    }
  }
  return at;
}

/// "3:14" (line:column) when `span` is valid and source text is available to
/// locate it in, "" otherwise.
inline std::string FormatSpan(std::string_view source, SourceSpan span) {
  if (!span.valid() || source.empty()) return "";
  LineColumn at = LocateOffset(source, span.offset);
  return std::to_string(at.line) + ":" + std::to_string(at.column);
}

}  // namespace dmx

#endif  // DMX_COMMON_SOURCE_SPAN_H_
