// Status and Result<T>: exception-free error handling for the OpenDMX library.
//
// Follows the Arrow/RocksDB idiom: every fallible operation returns a Status or
// a Result<T>; the DMX_RETURN_IF_ERROR / DMX_ASSIGN_OR_RETURN macros propagate
// failures up the call stack.

#ifndef DMX_COMMON_STATUS_H_
#define DMX_COMMON_STATUS_H_

#include <cassert>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace dmx {

/// Error categories used across the provider stack.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Caller passed something malformed.
  kParseError,        ///< DMX / SQL / SHAPE text did not parse.
  kBindError,         ///< Names or schemas failed to bind (unknown column, ...).
  kNotFound,          ///< Named object (model, table, service, file) missing.
  kAlreadyExists,     ///< CREATE of an object whose name is taken.
  kNotSupported,      ///< Capability not provided by this service/provider.
  kInvalidState,      ///< Operation illegal in the object's current state.
  kIOError,           ///< Filesystem / serialization failure.
  kCorruption,        ///< Stored data failed a checksum / format check.
  kResourceExhausted, ///< Out of a finite resource (disk space, quota).
  kCancelled,         ///< Statement cancelled cooperatively by the caller.
  kDeadlineExceeded,  ///< Statement overran its wall-clock deadline.
  kUnavailable,       ///< Object temporarily unserveable (degraded/quarantined).
  kInternal,          ///< Invariant violation inside the library.
};

/// Number of StatusCode values, kOk included. The codes are a CLOSED set:
/// the fuzzer's differential oracle and the exhaustiveness test in
/// status_test.cc rely on every value in [0, kStatusCodeCount) having a
/// distinct name and well-defined semantics. Append new codes before
/// kInternal's successor and keep this in sync (the test catches drift).
inline constexpr int kStatusCodeCount =
    static_cast<int>(StatusCode::kInternal) + 1;

/// Returns a short human-readable name ("Parse error", ...) for a code.
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of a fallible operation: OK, or a code plus message.
///
/// Statuses are cheap to copy in the OK case (no allocation).
///
/// The type is [[nodiscard]]: a call site that receives a Status must test
/// it, propagate it, or explicitly drop it with a `(void)` cast (reserved
/// for documented best-effort paths). DMX_WERROR builds turn a silently
/// ignored Status into a compile error (-Werror=unused-result).
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : rep_(code == StatusCode::kOk
                 ? nullptr
                 : std::make_shared<Rep>(Rep{code, std::move(message), {}})) {}

  static Status OK() { return Status(); }

  bool ok() const { return rep_ == nullptr; }
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// \brief Returns a copy carrying one more frame of context, innermost
  /// first ("appending WAL record", then "journaling statement", ...).
  ///
  /// OK statuses pass through unchanged, so the helper can be applied
  /// unconditionally on return paths:
  ///   return store->Append(rec).WithContext("journaling statement");
  Status WithContext(std::string context) const;

  /// Context frames attached via WithContext, innermost first. Empty when OK.
  const std::vector<std::string>& context() const {
    static const std::vector<std::string> kEmpty;
    return rep_ ? rep_->context : kEmpty;
  }

  /// "OK" or "<code name>: <message>", plus any context frames rendered as
  /// "; while <frame>" innermost-first.
  std::string ToString() const;

  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsBindError() const { return code() == StatusCode::kBindError; }
  bool IsNotSupported() const { return code() == StatusCode::kNotSupported; }
  bool IsInvalidState() const { return code() == StatusCode::kInvalidState; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
    std::vector<std::string> context;  ///< WithContext frames, innermost first.
  };
  std::shared_ptr<const Rep> rep_;
};

namespace internal {

/// Stream-style message builder backing the status factory helpers.
class StatusBuilder {
 public:
  explicit StatusBuilder(StatusCode code) : code_(code) {}

  template <typename T>
  StatusBuilder& operator<<(const T& piece) {
    stream_ << piece;
    return *this;
  }

  operator Status() const { return Status(code_, stream_.str()); }  // NOLINT

 private:
  StatusCode code_;
  std::ostringstream stream_;
};

}  // namespace internal

// Factory helpers: `return InvalidArgument() << "bad count " << n;`
inline internal::StatusBuilder InvalidArgument() {
  return internal::StatusBuilder(StatusCode::kInvalidArgument);
}
inline internal::StatusBuilder ParseError() {
  return internal::StatusBuilder(StatusCode::kParseError);
}
inline internal::StatusBuilder BindError() {
  return internal::StatusBuilder(StatusCode::kBindError);
}
inline internal::StatusBuilder NotFound() {
  return internal::StatusBuilder(StatusCode::kNotFound);
}
inline internal::StatusBuilder AlreadyExists() {
  return internal::StatusBuilder(StatusCode::kAlreadyExists);
}
inline internal::StatusBuilder NotSupported() {
  return internal::StatusBuilder(StatusCode::kNotSupported);
}
inline internal::StatusBuilder InvalidState() {
  return internal::StatusBuilder(StatusCode::kInvalidState);
}
inline internal::StatusBuilder IOError() {
  return internal::StatusBuilder(StatusCode::kIOError);
}
inline internal::StatusBuilder Corruption() {
  return internal::StatusBuilder(StatusCode::kCorruption);
}
inline internal::StatusBuilder ResourceExhausted() {
  return internal::StatusBuilder(StatusCode::kResourceExhausted);
}
inline internal::StatusBuilder Cancelled() {
  return internal::StatusBuilder(StatusCode::kCancelled);
}
inline internal::StatusBuilder DeadlineExceeded() {
  return internal::StatusBuilder(StatusCode::kDeadlineExceeded);
}
inline internal::StatusBuilder Unavailable() {
  return internal::StatusBuilder(StatusCode::kUnavailable);
}
inline internal::StatusBuilder Internal() {
  return internal::StatusBuilder(StatusCode::kInternal);
}

/// \brief A value of type T, or the Status explaining why there is none.
/// [[nodiscard]] for the same reason Status is: dropping one silently
/// swallows the error explaining the missing value.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }
  Result(const internal::StatusBuilder& builder)  // NOLINT
      : Result(Status(builder)) {}

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when this result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define DMX_CONCAT_IMPL(x, y) x##y
#define DMX_CONCAT(x, y) DMX_CONCAT_IMPL(x, y)

/// Propagates a non-OK Status to the caller.
#define DMX_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::dmx::Status _dmx_status = (expr);           \
    if (!_dmx_status.ok()) return _dmx_status;    \
  } while (false)

#define DMX_ASSIGN_OR_RETURN_IMPL(result_name, lhs, rexpr) \
  auto result_name = (rexpr);                              \
  if (!result_name.ok()) return result_name.status();      \
  lhs = std::move(result_name).value()

/// `DMX_ASSIGN_OR_RETURN(auto x, ComputeX());` — unwraps a Result or returns.
#define DMX_ASSIGN_OR_RETURN(lhs, rexpr) \
  DMX_ASSIGN_OR_RETURN_IMPL(DMX_CONCAT(_dmx_result_, __LINE__), lhs, rexpr)

}  // namespace dmx

#endif  // DMX_COMMON_STATUS_H_
