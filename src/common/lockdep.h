// Runtime lock-order verification (lockdep): the dynamic half of the
// DESIGN.md §9 concurrency regime, complementing the compile-time Clang
// Thread Safety proofs of §10 (which check per-function capabilities but
// cannot see acquisition *order* across the Provider -> AdmissionController
// -> DurableStore hierarchy).
//
// Every Mutex / SharedMutex registers a *lock class* at construction — keyed
// by the explicit name passed to the constructor, or by the construction
// site (file:line) for unnamed locks — so all instances born at one site
// share ordering state, the way Linux lockdep keys by lock-site. On every
// blocking acquisition the held-set of the current thread contributes edges
// (held-class -> acquired-class) to a global ordering graph; the first time
// an edge would close a cycle, a would-deadlock diagnostic is emitted with
// both lock-class names and the source spans of the two acquisitions — on
// ANY interleaving that merely *observes* both orders, not just the one that
// actually deadlocks.
//
// Edge semantics:
//   * try-acquisitions (TryLockFor / TryLockSharedFor) never add an incoming
//     edge: a bounded try cannot block forever, so it cannot contribute the
//     waiting leg of a deadlock. Once *held*, a try-acquired lock does emit
//     outgoing edges like any other.
//   * reader/writer modes are recorded but treated conservatively as
//     ordering-relevant in both directions: a shared holder can block an
//     exclusive waiter (and vice versa), so shared edges participate in
//     cycles. Same-class re-acquisition in any mode is flagged (a reader
//     re-entering a SharedMutex can deadlock behind a queued writer).
//
// The held-set doubles as a real owner table: under DMX_DEBUG_LOCKS the
// formerly compile-time-only Mutex::AssertHeld / SharedMutex::AssertHeld /
// AssertReaderHeld become genuine per-thread ownership checks.
//
// Violations are fatal by default (report to stderr, abort). Tests install a
// handler via SetViolationHandler to capture reports instead.
//
// Everything in this header exists only under -DDMX_DEBUG_LOCKS=ON (the
// CMake option of the same name); a normal build never includes these hooks
// and the mutex wrappers compile exactly as before — zero overhead when off.

#ifndef DMX_COMMON_LOCKDEP_H_
#define DMX_COMMON_LOCKDEP_H_

#ifdef DMX_DEBUG_LOCKS

#include <cstdint>
#include <functional>
#include <source_location>
#include <string>

namespace dmx::lockdep {

enum class LockKind { kMutex, kSharedMutex };
enum class AcqMode { kExclusive, kShared };

/// One diagnostic. `rule` is a stable id:
///   lock-order-inversion   adding this acquisition edge closes a cycle
///   recursive-acquisition  a class already in the held-set is re-acquired
///   unheld-assert          AssertHeld / AssertReaderHeld on a lock the
///                          calling thread does not own (in that mode)
///   unheld-release         Unlock of a lock the thread never acquired
struct Violation {
  std::string rule;
  std::string message;  ///< Full human-readable diagnostic, multi-line.
};

/// Registers (or looks up) the lock class for a construction site. `name`
/// may be nullptr: the class is then keyed and named by `site` (file:line).
uint32_t RegisterLockClass(const char* name, LockKind kind,
                           const std::source_location& site);

/// The registered display name of a class ("provider.catalog_mu" or
/// "mutex.h site provider.h:120").
std::string LockClassName(uint32_t cls);

/// Called before a blocking (or try) acquisition attempt. Records ordering
/// edges from every held class to `cls`, checks them against the global
/// graph and reports the first inversion ever observed. Try acquisitions
/// skip edge recording (they cannot block forever).
void PreAcquire(const void* lock, uint32_t cls, AcqMode mode, bool try_lock,
                const std::source_location& loc);

/// Called after a successful acquisition: pushes onto the thread's held-set.
void PostAcquire(const void* lock, uint32_t cls, AcqMode mode,
                 const std::source_location& loc);

/// Called before release: pops the lock from the thread's held-set.
void OnRelease(const void* lock);

/// Real owner check: the calling thread must hold `lock` (at least in
/// `min_mode`; kShared accepts an exclusive hold too).
void AssertHeld(const void* lock, uint32_t cls, AcqMode min_mode);

/// Locks the calling thread currently holds (tests / diagnostics).
int HeldCount();

/// Installs a handler receiving every violation instead of the default
/// print-and-abort. Pass nullptr to restore fatal behaviour. Returns the
/// previous handler.
using ViolationHandler = std::function<void(const Violation&)>;
ViolationHandler SetViolationHandler(ViolationHandler handler);

/// Total violations reported since process start (or the last reset).
uint64_t violation_count();

/// Test hook: forgets all recorded edges and the violation count (lock
/// classes persist — they may be referenced by live locks).
void ResetGraphForTest();

}  // namespace dmx::lockdep

#endif  // DMX_DEBUG_LOCKS
#endif  // DMX_COMMON_LOCKDEP_H_
