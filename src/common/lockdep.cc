// Lock-order graph implementation. See lockdep.h for the model.
//
// This file (with det_sched.cc) is a sanctioned raw-primitive seam: the
// graph's own mutex cannot be a dmx::Mutex — its hooks would re-enter
// lockdep. The internal mutex is a leaf: nothing is called while holding it.

#include "common/lockdep.h"

#ifdef DMX_DEBUG_LOCKS

#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

namespace dmx::lockdep {

namespace {

struct LockClass {
  std::string name;
  LockKind kind;
  std::string site;  // file:line of the construction site
};

struct EdgeWitness {
  // First observation of from -> to: where `from` was held and `to` acquired.
  std::string from_loc;
  std::string to_loc;
  AcqMode to_mode;
};

constexpr uint64_t EdgeKey(uint32_t from, uint32_t to) {
  return (static_cast<uint64_t>(from) << 32) | to;
}

struct Graph {
  std::mutex mu;
  std::vector<LockClass> classes;
  std::unordered_map<std::string, uint32_t> class_by_key;
  std::unordered_map<uint32_t, std::vector<uint32_t>> adjacency;
  std::unordered_map<uint64_t, EdgeWitness> edges;
  // Pairs already reported, so one inversion produces one diagnostic.
  std::unordered_set<uint64_t> reported;
  ViolationHandler handler;
  uint64_t violations = 0;
};

Graph& graph() {
  static Graph* g = new Graph();  // leaked: locks outlive static destructors
  return *g;
}

struct HeldLock {
  const void* lock;
  uint32_t cls;
  AcqMode mode;
  std::string loc;  // acquisition source span
};

thread_local std::vector<HeldLock>* tls_held = nullptr;

std::vector<HeldLock>& held() {
  if (tls_held == nullptr) tls_held = new std::vector<HeldLock>();
  return *tls_held;
}

std::string FormatLoc(const std::source_location& loc) {
  std::string file = loc.file_name();
  size_t slash = file.find_last_of('/');
  if (slash != std::string::npos) file = file.substr(slash + 1);
  return file + ":" + std::to_string(loc.line());
}

const char* ModeName(AcqMode mode) {
  return mode == AcqMode::kExclusive ? "exclusive" : "shared";
}

// Reports under graph().mu NOT held (the handler may re-enter lockdep).
void Report(std::string rule, std::string message) {
  ViolationHandler handler;
  {
    std::lock_guard<std::mutex> lock(graph().mu);
    ++graph().violations;
    handler = graph().handler;
  }
  if (handler) {
    handler(Violation{std::move(rule), std::move(message)});
    return;
  }
  std::fprintf(stderr, "lockdep FATAL [%s]\n%s\n", rule.c_str(),
               message.c_str());
  std::abort();
}

/// True when `to` can already reach `from` in the ordering graph — adding
/// from -> to would close a cycle. Iterative DFS; caller holds graph().mu.
bool Reaches(const Graph& g, uint32_t start, uint32_t target,
             std::vector<uint32_t>* path) {
  std::vector<std::pair<uint32_t, size_t>> stack;  // (node, next child idx)
  std::unordered_set<uint32_t> visited;
  stack.emplace_back(start, 0);
  visited.insert(start);
  while (!stack.empty()) {
    auto& [node, child] = stack.back();
    if (node == target) {
      path->clear();
      for (const auto& frame : stack) path->push_back(frame.first);
      return true;
    }
    auto it = g.adjacency.find(node);
    if (it == g.adjacency.end() || child >= it->second.size()) {
      stack.pop_back();
      continue;
    }
    uint32_t next = it->second[child++];
    if (visited.insert(next).second) stack.emplace_back(next, 0);
  }
  return false;
}

std::string DescribeClass(const Graph& g, uint32_t cls) {
  const LockClass& c = g.classes[cls];
  return "'" + c.name + "' (defined at " + c.site + ")";
}

// Lock-taking wrapper for call sites that do not already hold graph().mu.
std::string DescribeClassSafe(uint32_t cls) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return DescribeClass(g, cls);
}

}  // namespace

uint32_t RegisterLockClass(const char* name, LockKind kind,
                           const std::source_location& site) {
  std::string span = FormatLoc(site);
  std::string key = name != nullptr ? std::string("n:") + name : "s:" + span;
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  auto it = g.class_by_key.find(key);
  if (it != g.class_by_key.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(g.classes.size());
  LockClass cls;
  cls.name = name != nullptr
                 ? std::string(name)
                 : std::string(kind == LockKind::kMutex ? "mutex" : "rwlock") +
                       "@" + span;
  cls.kind = kind;
  cls.site = span;
  g.classes.push_back(std::move(cls));
  g.class_by_key.emplace(std::move(key), id);
  return id;
}

std::string LockClassName(uint32_t cls) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  if (cls >= g.classes.size()) return "<unregistered>";
  return g.classes[cls].name;
}

void PreAcquire(const void* lock, uint32_t cls, AcqMode mode, bool try_lock,
                const std::source_location& loc) {
  (void)lock;
  std::vector<HeldLock>& stack = held();
  if (stack.empty()) return;
  const std::string span = FormatLoc(loc);

  // Same-class re-acquisition: self-deadlock for a Mutex; for a SharedMutex
  // even shared/shared nesting can deadlock behind a queued writer.
  for (const HeldLock& h : stack) {
    if (h.cls != cls) continue;
    std::ostringstream msg;
    msg << "recursive acquisition of lock class " << DescribeClassSafe(cls)
        << ":\n  already held ("
        << ModeName(h.mode) << ") since " << h.loc << "\n  re-acquired ("
        << ModeName(mode) << (try_lock ? ", try" : "") << ") at " << span;
    Report("recursive-acquisition", msg.str());
    return;  // don't also record self-edges
  }

  // A bounded try cannot be the waiting leg of a deadlock: no incoming edge.
  if (try_lock) return;

  struct Inversion {
    std::string message;
  };
  std::vector<Inversion> inversions;
  {
    Graph& g = graph();
    std::lock_guard<std::mutex> graph_lock(g.mu);
    for (const HeldLock& h : stack) {
      uint64_t key = EdgeKey(h.cls, cls);
      if (g.edges.count(key) != 0) continue;  // edge already validated
      std::vector<uint32_t> path;
      if (Reaches(g, cls, h.cls, &path) &&
          g.reported.insert(key).second) {
        std::ostringstream msg;
        msg << "lock-order inversion between "
            << DescribeClass(g, h.cls) << " and " << DescribeClass(g, cls)
            << ":\n  this thread holds '" << g.classes[h.cls].name << "' ("
            << ModeName(h.mode) << ", acquired at " << h.loc
            << ") and is acquiring '" << g.classes[cls].name << "' ("
            << ModeName(mode) << ") at " << span
            << "\n  but the opposite order was previously observed:";
        for (size_t i = 0; i + 1 < path.size(); ++i) {
          auto w = g.edges.find(EdgeKey(path[i], path[i + 1]));
          msg << "\n    '" << g.classes[path[i]].name << "' -> '"
              << g.classes[path[i + 1]].name << "'";
          if (w != g.edges.end()) {
            msg << " (held at " << w->second.from_loc << ", acquired "
                << ModeName(w->second.to_mode) << " at " << w->second.to_loc
                << ")";
          }
        }
        msg << "\n  a schedule interleaving these two orders deadlocks";
        inversions.push_back(Inversion{msg.str()});
      }
      // Record the edge either way: one report per inverted pair.
      g.edges.emplace(key, EdgeWitness{h.loc, span, mode});
      g.adjacency[h.cls].push_back(cls);
    }
  }
  for (Inversion& inv : inversions) {
    Report("lock-order-inversion", std::move(inv.message));
  }
}

void PostAcquire(const void* lock, uint32_t cls, AcqMode mode,
                 const std::source_location& loc) {
  held().push_back(HeldLock{lock, cls, mode, FormatLoc(loc)});
}

void OnRelease(const void* lock) {
  std::vector<HeldLock>& stack = held();
  for (size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1].lock == lock) {
      stack.erase(stack.begin() + static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
  Report("unheld-release",
         "a lock is being released by a thread that never acquired it");
}

void AssertHeld(const void* lock, uint32_t cls, AcqMode min_mode) {
  for (const HeldLock& h : held()) {
    if (h.lock != lock) continue;
    if (min_mode == AcqMode::kShared || h.mode == AcqMode::kExclusive) {
      return;
    }
    std::ostringstream msg;
    msg << "AssertHeld(" << ModeName(min_mode) << ") on lock class "
        << DescribeClassSafe(cls) << " held only " << ModeName(h.mode)
        << " (acquired at " << h.loc << ")";
    Report("unheld-assert", msg.str());
    return;
  }
  std::ostringstream msg;
  msg << "AssertHeld(" << ModeName(min_mode) << ") on lock class "
      << DescribeClassSafe(cls)
      << " which the calling thread does not hold";
  Report("unheld-assert", msg.str());
}

int HeldCount() { return static_cast<int>(held().size()); }

ViolationHandler SetViolationHandler(ViolationHandler handler) {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  ViolationHandler previous = std::move(g.handler);
  g.handler = std::move(handler);
  return previous;
}

uint64_t violation_count() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  return g.violations;
}

void ResetGraphForTest() {
  Graph& g = graph();
  std::lock_guard<std::mutex> lock(g.mu);
  g.adjacency.clear();
  g.edges.clear();
  g.reported.clear();
  g.violations = 0;
}

}  // namespace dmx::lockdep

#endif  // DMX_DEBUG_LOCKS
