// Value: the dynamically-typed cell used throughout rowsets, casesets and
// mining-model interfaces. A Value is NULL, a scalar (bool / 64-bit integer /
// double / text), or an immutable nested table — the TABLE content type of the
// paper's hierarchical casesets (Section 3.1).

#ifndef DMX_COMMON_VALUE_H_
#define DMX_COMMON_VALUE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"

namespace dmx {

class NestedTable;

/// Column data types. `kTable` marks a nested-table column (paper §3.2.1 f).
enum class DataType {
  kBool,
  kLong,    ///< 64-bit signed integer (DMX LONG).
  kDouble,  ///< IEEE double (DMX DOUBLE).
  kText,    ///< UTF-8 string (DMX TEXT).
  kTable,   ///< Nested table value.
};

/// Returns the DMX spelling: "LONG", "DOUBLE", "TEXT", "BOOL", "TABLE".
const char* DataTypeToString(DataType type);

/// Parses the DMX spelling (case-insensitive).
Result<DataType> DataTypeFromString(const std::string& s);

/// \brief One cell of a row.
///
/// Values are cheap to copy: strings are small in practice and nested tables
/// are shared immutably. NULL is a first-class state independent of the
/// column's declared type.
class Value {
 public:
  /// Runtime kind of the stored value.
  enum class Kind { kNull, kBool, kLong, kDouble, kText, kTable };

  Value() : v_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) { return Value(Payload(b)); }
  static Value Long(int64_t i) { return Value(Payload(i)); }
  static Value Double(double d) { return Value(Payload(d)); }
  static Value Text(std::string s) { return Value(Payload(std::move(s))); }
  static Value Table(std::shared_ptr<const NestedTable> t) {
    return Value(Payload(std::move(t)));
  }

  Kind kind() const { return static_cast<Kind>(v_.index()); }
  bool is_null() const { return kind() == Kind::kNull; }
  bool is_bool() const { return kind() == Kind::kBool; }
  bool is_long() const { return kind() == Kind::kLong; }
  bool is_double() const { return kind() == Kind::kDouble; }
  bool is_text() const { return kind() == Kind::kText; }
  bool is_table() const { return kind() == Kind::kTable; }
  bool is_numeric() const { return is_long() || is_double() || is_bool(); }

  // Unchecked accessors; callers must test the kind first.
  bool bool_value() const { return std::get<bool>(v_); }
  int64_t long_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& text_value() const { return std::get<std::string>(v_); }
  const std::shared_ptr<const NestedTable>& table_value() const {
    return std::get<std::shared_ptr<const NestedTable>>(v_);
  }

  /// Numeric coercion: bool -> 0/1, long -> double, double -> itself.
  /// Fails on NULL, text and table values.
  Result<double> AsDouble() const;

  /// Integer coercion: bool -> 0/1, double -> truncated when integral.
  Result<int64_t> AsLong() const;

  /// Coerces this value to the given column type (identity when it already
  /// matches; numeric widening/narrowing and numeric<->text where lossless).
  Result<Value> CoerceTo(DataType type) const;

  /// Structural equality. Nested tables compare by contents.
  bool Equals(const Value& other) const;

  /// Total order over scalar values used by ORDER BY and dictionaries:
  /// NULL < bools < numbers < text; numbers compare across long/double.
  /// Nested tables are ordered after text, by pointer, which is sufficient
  /// because no caller sorts on TABLE columns.
  int Compare(const Value& other) const;

  /// Hash consistent with Equals for scalar values (used by dictionaries and
  /// join/group hash maps; table values hash by pointer).
  size_t Hash() const;

  /// Display form: NULL -> "NULL", text verbatim, numbers via FormatDouble,
  /// nested table -> "#rows=<n>".
  std::string ToString() const;

  bool operator==(const Value& other) const { return Equals(other); }
  bool operator!=(const Value& other) const { return !Equals(other); }

 private:
  using Payload = std::variant<std::monostate, bool, int64_t, double, std::string,
                               std::shared_ptr<const NestedTable>>;
  explicit Value(Payload payload) : v_(std::move(payload)) {}

  Payload v_;
};

/// Hash functor so `Value` can key unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// A row is a flat vector of cells positionally aligned with a Schema.
using Row = std::vector<Value>;

}  // namespace dmx

#endif  // DMX_COMMON_VALUE_H_
