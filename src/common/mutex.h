// Annotated synchronization wrappers: the only place in the tree that may
// touch raw std synchronization primitives (enforced by tools/dmx_lint.py
// rule raw-sync-primitive). Everything else locks through these types so
// clang's -Wthread-safety can prove the DESIGN.md §9 lock regime:
//
//   Mutex / MutexLock        plain exclusive lock (admission, store).
//   SharedMutex              reader/writer lock, timed (the catalog lock);
//     WriterMutexLock /      DDL/DML take it exclusive, reads take it
//     ReaderMutexLock        shared.
//   CondVar                  condition variable bound to a Mutex at the wait
//                            call (absl::CondVar style).
//
// Because every lock in the tree passes through this one seam, it is also
// where the *dynamic* verification layers hook in under -DDMX_DEBUG_LOCKS=ON
// (DESIGN.md §11):
//
//   * lockdep (common/lockdep.h): each lock registers a per-site lock class
//     at construction; acquisitions record ordering edges and the first
//     observed inversion reports a would-deadlock diagnostic — on any
//     interleaving, not just the one that deadlocks.
//   * det-sched (common/det_sched.h): when a deterministic scenario is
//     active, acquire/release/wait become cooperative yield points and
//     blocking turns into try + yield, so the schedule explorer fully
//     controls the interleaving.
//   * Assert*Held become real per-thread ownership checks against lockdep's
//     held-set (in a plain build they remain compile-time claims only:
//     ASSERT_CAPABILITY tells the analysis a lock is held on paths that
//     provably own it, e.g. recovery replay under OpenStore's exclusive
//     lock, and the std primitives cannot portably self-identify an owner).
//
// With DMX_DEBUG_LOCKS off (the default) none of this exists: the wrappers
// compile to bare std calls, byte for byte the pre-lockdep code.

#ifndef DMX_COMMON_MUTEX_H_
#define DMX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

#ifdef DMX_DEBUG_LOCKS
#include <source_location>

#include "common/det_sched.h"
#include "common/lockdep.h"

// Debug builds thread a source span through the lock entry points so
// lockdep diagnostics can print where each acquisition happened. The macro
// pair lets each signature exist exactly once below: PARAM appends the
// defaulted source_location parameter, FWD forwards it from the scoped
// holders (and expands to nothing — an argument-free call — when off).
#define DMX_LOCK_LOC_PARAM \
  , std::source_location dmx_loc = std::source_location::current()
#define DMX_LOCK_LOC_FWD dmx_loc
#else
#define DMX_LOCK_LOC_PARAM
#define DMX_LOCK_LOC_FWD
#endif

namespace dmx {

class CondVar;

/// \brief Exclusive lock wrapping std::mutex, carrying the capability
/// annotations the raw type lacks. The optional `name` labels the lockdep
/// lock class; unnamed locks are classed by construction site.
class DMX_CAPABILITY("mutex") Mutex {
 public:
#ifdef DMX_DEBUG_LOCKS
  explicit Mutex(const char* name = nullptr,
                 std::source_location site = std::source_location::current())
      : cls_(lockdep::RegisterLockClass(name, lockdep::LockKind::kMutex,
                                        site)) {}
#else
  Mutex() = default;
  explicit Mutex(const char* name) { (void)name; }
#endif
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

#ifdef DMX_DEBUG_LOCKS
  void Lock(std::source_location dmx_loc = std::source_location::current())
      DMX_ACQUIRE() {
    lockdep::PreAcquire(this, cls_, lockdep::AcqMode::kExclusive,
                        /*try_lock=*/false, dmx_loc);
    if (detsched::Active()) {
      detsched::SchedulePoint();
      while (!mu_.try_lock()) detsched::ContendedYield(this);
      detsched::NoteProgress();
    } else {
      mu_.lock();
    }
    lockdep::PostAcquire(this, cls_, lockdep::AcqMode::kExclusive, dmx_loc);
  }

  void Unlock() DMX_RELEASE() {
    lockdep::OnRelease(this);
    mu_.unlock();
    if (detsched::Active()) {
      detsched::NoteProgress();
      detsched::SchedulePoint();
    }
  }
#else
  void Lock() DMX_ACQUIRE() { mu_.lock(); }
  void Unlock() DMX_RELEASE() { mu_.unlock(); }
#endif

  /// Compile-time claim that this thread holds the lock; under
  /// DMX_DEBUG_LOCKS also a real per-thread ownership check.
  void AssertHeld() const DMX_ASSERT_CAPABILITY(this) {
#ifdef DMX_DEBUG_LOCKS
    lockdep::AssertHeld(this, cls_, lockdep::AcqMode::kExclusive);
#endif
  }

 private:
  friend class CondVar;
  std::mutex mu_;
#ifdef DMX_DEBUG_LOCKS
  const uint32_t cls_;
#endif
};

/// \brief RAII exclusive lock over a Mutex.
class DMX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu DMX_LOCK_LOC_PARAM) DMX_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(DMX_LOCK_LOC_FWD);
  }
  ~MutexLock() DMX_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable used with Mutex. The mutex is named at each wait
/// call (absl::CondVar style) so the REQUIRES annotation can bind to it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits up to `timeout` (or a notification),
  /// and re-acquires `mu` before returning. Under det-sched the wait is a
  /// yield point and resumption is at the scheduler's discretion — legal,
  /// because the timeout (and spurious wakeups) make "resume at any point"
  /// a real behaviour of the primitive.
  void WaitFor(Mutex* mu, std::chrono::milliseconds timeout
               DMX_LOCK_LOC_PARAM) DMX_REQUIRES(mu) {
#ifdef DMX_DEBUG_LOCKS
    lockdep::OnRelease(mu);
    if (detsched::Active()) {
      mu->mu_.unlock();
      detsched::NoteProgress();
      detsched::SchedulePoint();
      while (!mu->mu_.try_lock()) detsched::ContendedYield(mu);
      detsched::NoteProgress();
    } else {
      std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
      cv_.wait_for(lock, timeout);
      lock.release();  // Ownership stays with the caller's scope.
    }
    lockdep::PostAcquire(mu, mu->cls_, lockdep::AcqMode::kExclusive,
                         dmx_loc);
#else
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();  // Ownership stays with the caller's scope.
#endif
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// \brief Reader/writer lock wrapping std::shared_timed_mutex. Timed so
/// writers blocked behind long readers can poll their ExecGuard deadline
/// (provider.cc's guard-aware acquisition loop).
class DMX_CAPABILITY("shared_mutex") SharedMutex {
 public:
#ifdef DMX_DEBUG_LOCKS
  explicit SharedMutex(
      const char* name = nullptr,
      std::source_location site = std::source_location::current())
      : cls_(lockdep::RegisterLockClass(
            name, lockdep::LockKind::kSharedMutex, site)) {}
#else
  SharedMutex() = default;
  explicit SharedMutex(const char* name) { (void)name; }
#endif
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

#ifdef DMX_DEBUG_LOCKS
  void Lock(std::source_location dmx_loc = std::source_location::current())
      DMX_ACQUIRE() {
    lockdep::PreAcquire(this, cls_, lockdep::AcqMode::kExclusive,
                        /*try_lock=*/false, dmx_loc);
    if (detsched::Active()) {
      detsched::SchedulePoint();
      while (!mu_.try_lock()) detsched::ContendedYield(this);
      detsched::NoteProgress();
    } else {
      mu_.lock();
    }
    lockdep::PostAcquire(this, cls_, lockdep::AcqMode::kExclusive, dmx_loc);
  }

  /// Bounded try: under det-sched the timeout collapses to one scheduled
  /// retry — the caller's poll loop supplies the repetition, and a bounded
  /// try is never the waiting leg of a deadlock (lockdep records no
  /// incoming edge for it).
  bool TryLockFor(std::chrono::milliseconds timeout DMX_LOCK_LOC_PARAM)
      DMX_TRY_ACQUIRE(true) {
    lockdep::PreAcquire(this, cls_, lockdep::AcqMode::kExclusive,
                        /*try_lock=*/true, dmx_loc);
    bool acquired;
    if (detsched::Active()) {
      detsched::SchedulePoint();
      acquired = mu_.try_lock();
      if (!acquired) {
        detsched::SchedulePoint();  // voluntary: a try never parks for good
        acquired = mu_.try_lock();
      }
    } else {
      acquired = mu_.try_lock_for(timeout);
    }
    if (acquired) {
      lockdep::PostAcquire(this, cls_, lockdep::AcqMode::kExclusive,
                           dmx_loc);
      if (detsched::Active()) detsched::NoteProgress();
    }
    return acquired;
  }

  void Unlock() DMX_RELEASE() {
    lockdep::OnRelease(this);
    mu_.unlock();
    if (detsched::Active()) {
      detsched::NoteProgress();
      detsched::SchedulePoint();
    }
  }

  void LockShared(
      std::source_location dmx_loc = std::source_location::current())
      DMX_ACQUIRE_SHARED() {
    lockdep::PreAcquire(this, cls_, lockdep::AcqMode::kShared,
                        /*try_lock=*/false, dmx_loc);
    if (detsched::Active()) {
      detsched::SchedulePoint();
      while (!mu_.try_lock_shared()) detsched::ContendedYield(this);
      detsched::NoteProgress();
    } else {
      mu_.lock_shared();
    }
    lockdep::PostAcquire(this, cls_, lockdep::AcqMode::kShared, dmx_loc);
  }

  bool TryLockSharedFor(std::chrono::milliseconds timeout
                        DMX_LOCK_LOC_PARAM) DMX_TRY_ACQUIRE_SHARED(true) {
    lockdep::PreAcquire(this, cls_, lockdep::AcqMode::kShared,
                        /*try_lock=*/true, dmx_loc);
    bool acquired;
    if (detsched::Active()) {
      detsched::SchedulePoint();
      acquired = mu_.try_lock_shared();
      if (!acquired) {
        detsched::SchedulePoint();
        acquired = mu_.try_lock_shared();
      }
    } else {
      acquired = mu_.try_lock_shared_for(timeout);
    }
    if (acquired) {
      lockdep::PostAcquire(this, cls_, lockdep::AcqMode::kShared, dmx_loc);
      if (detsched::Active()) detsched::NoteProgress();
    }
    return acquired;
  }

  void UnlockShared() DMX_RELEASE_SHARED() {
    lockdep::OnRelease(this);
    mu_.unlock_shared();
    if (detsched::Active()) {
      detsched::NoteProgress();
      detsched::SchedulePoint();
    }
  }
#else
  void Lock() DMX_ACQUIRE() { mu_.lock(); }
  bool TryLockFor(std::chrono::milliseconds timeout) DMX_TRY_ACQUIRE(true) {
    return mu_.try_lock_for(timeout);
  }
  void Unlock() DMX_RELEASE() { mu_.unlock(); }

  void LockShared() DMX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  bool TryLockSharedFor(std::chrono::milliseconds timeout)
      DMX_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared_for(timeout);
  }
  void UnlockShared() DMX_RELEASE_SHARED() { mu_.unlock_shared(); }
#endif

  /// Compile-time claim that this thread holds the lock exclusively (used
  /// by the recovery-replay path, which runs under OpenStore's exclusive
  /// lock but re-enters Execute through an internal connection); under
  /// DMX_DEBUG_LOCKS also a real per-thread ownership check.
  void AssertHeld() const DMX_ASSERT_CAPABILITY(this) {
#ifdef DMX_DEBUG_LOCKS
    lockdep::AssertHeld(this, cls_, lockdep::AcqMode::kExclusive);
#endif
  }
  /// Compile-time claim that this thread holds at least a shared lock;
  /// under DMX_DEBUG_LOCKS also a real per-thread ownership check.
  void AssertReaderHeld() const DMX_ASSERT_SHARED_CAPABILITY(this) {
#ifdef DMX_DEBUG_LOCKS
    lockdep::AssertHeld(this, cls_, lockdep::AcqMode::kShared);
#endif
  }

 private:
  std::shared_timed_mutex mu_;
#ifdef DMX_DEBUG_LOCKS
  const uint32_t cls_;
#endif
};

/// \brief RAII exclusive lock over a SharedMutex.
class DMX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu DMX_LOCK_LOC_PARAM)
      DMX_ACQUIRE(mu)
      : mu_(mu) {
    mu_->Lock(DMX_LOCK_LOC_FWD);
  }
  ~WriterMutexLock() DMX_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII shared lock over a SharedMutex.
class DMX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu DMX_LOCK_LOC_PARAM)
      DMX_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_->LockShared(DMX_LOCK_LOC_FWD);
  }
  ~ReaderMutexLock() DMX_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII *adoption* of an exclusive SharedMutex lock acquired out of
/// line (the guard-polling acquisition loop): the constructor requires the
/// lock already held; the destructor releases it.
class DMX_SCOPED_CAPABILITY AdoptedWriterLock {
 public:
  explicit AdoptedWriterLock(SharedMutex* mu) DMX_REQUIRES(mu) : mu_(mu) {}
  ~AdoptedWriterLock() DMX_RELEASE() { mu_->Unlock(); }

  AdoptedWriterLock(const AdoptedWriterLock&) = delete;
  AdoptedWriterLock& operator=(const AdoptedWriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII adoption of a shared SharedMutex lock acquired out of line.
class DMX_SCOPED_CAPABILITY AdoptedReaderLock {
 public:
  explicit AdoptedReaderLock(SharedMutex* mu) DMX_REQUIRES_SHARED(mu)
      : mu_(mu) {}
  ~AdoptedReaderLock() DMX_RELEASE() { mu_->UnlockShared(); }

  AdoptedReaderLock(const AdoptedReaderLock&) = delete;
  AdoptedReaderLock& operator=(const AdoptedReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace dmx

#endif  // DMX_COMMON_MUTEX_H_
