// Annotated synchronization wrappers: the only place in the tree that may
// touch raw std synchronization primitives (enforced by tools/dmx_lint.py
// rule raw-sync-primitive). Everything else locks through these types so
// clang's -Wthread-safety can prove the DESIGN.md §9 lock regime:
//
//   Mutex / MutexLock        plain exclusive lock (admission, store).
//   SharedMutex              reader/writer lock, timed (the catalog lock);
//     WriterMutexLock /      DDL/DML take it exclusive, reads take it
//     ReaderMutexLock        shared.
//   CondVar                  condition variable bound to a Mutex at the wait
//                            call (absl::CondVar style).
//
// The Assert*Held methods are compile-time assertions only (ASSERT_CAPABILITY
// tells the analysis a lock is held on paths that provably own it, e.g.
// recovery replay under OpenStore's exclusive lock); they have no runtime
// effect because the std primitives cannot portably self-identify an owner.

#ifndef DMX_COMMON_MUTEX_H_
#define DMX_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "common/thread_annotations.h"

namespace dmx {

class CondVar;

/// \brief Exclusive lock wrapping std::mutex, carrying the capability
/// annotations the raw type lacks.
class DMX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() DMX_ACQUIRE() { mu_.lock(); }
  void Unlock() DMX_RELEASE() { mu_.unlock(); }

  /// Compile-time claim that this thread holds the lock (no runtime check).
  void AssertHeld() const DMX_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// \brief RAII exclusive lock over a Mutex.
class DMX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) DMX_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() DMX_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable used with Mutex. The mutex is named at each wait
/// call (absl::CondVar style) so the REQUIRES annotation can bind to it.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu`, waits up to `timeout` (or a notification),
  /// and re-acquires `mu` before returning.
  void WaitFor(Mutex* mu, std::chrono::milliseconds timeout)
      DMX_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait_for(lock, timeout);
    lock.release();  // Ownership stays with the caller's scope.
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

/// \brief Reader/writer lock wrapping std::shared_timed_mutex. Timed so
/// writers blocked behind long readers can poll their ExecGuard deadline
/// (provider.cc's guard-aware acquisition loop).
class DMX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() DMX_ACQUIRE() { mu_.lock(); }
  bool TryLockFor(std::chrono::milliseconds timeout) DMX_TRY_ACQUIRE(true) {
    return mu_.try_lock_for(timeout);
  }
  void Unlock() DMX_RELEASE() { mu_.unlock(); }

  void LockShared() DMX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  bool TryLockSharedFor(std::chrono::milliseconds timeout)
      DMX_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared_for(timeout);
  }
  void UnlockShared() DMX_RELEASE_SHARED() { mu_.unlock_shared(); }

  /// Compile-time claim that this thread holds the lock exclusively. Used by
  /// the recovery-replay path, which runs under OpenStore's exclusive lock
  /// but re-enters Execute through an internal connection.
  void AssertHeld() const DMX_ASSERT_CAPABILITY(this) {}
  /// Compile-time claim that this thread holds at least a shared lock.
  void AssertReaderHeld() const DMX_ASSERT_SHARED_CAPABILITY(this) {}

 private:
  std::shared_timed_mutex mu_;
};

/// \brief RAII exclusive lock over a SharedMutex.
class DMX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) DMX_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() DMX_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII shared lock over a SharedMutex.
class DMX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) DMX_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() DMX_RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII *adoption* of an exclusive SharedMutex lock acquired out of
/// line (the guard-polling acquisition loop): the constructor requires the
/// lock already held; the destructor releases it.
class DMX_SCOPED_CAPABILITY AdoptedWriterLock {
 public:
  explicit AdoptedWriterLock(SharedMutex* mu) DMX_REQUIRES(mu) : mu_(mu) {}
  ~AdoptedWriterLock() DMX_RELEASE() { mu_->Unlock(); }

  AdoptedWriterLock(const AdoptedWriterLock&) = delete;
  AdoptedWriterLock& operator=(const AdoptedWriterLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// \brief RAII adoption of a shared SharedMutex lock acquired out of line.
class DMX_SCOPED_CAPABILITY AdoptedReaderLock {
 public:
  explicit AdoptedReaderLock(SharedMutex* mu) DMX_REQUIRES_SHARED(mu)
      : mu_(mu) {}
  ~AdoptedReaderLock() DMX_RELEASE() { mu_->UnlockShared(); }

  AdoptedReaderLock(const AdoptedReaderLock&) = delete;
  AdoptedReaderLock& operator=(const AdoptedReaderLock&) = delete;

 private:
  SharedMutex* const mu_;
};

}  // namespace dmx

#endif  // DMX_COMMON_MUTEX_H_
