#include "common/env.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace dmx {

namespace {

Status ErrnoStatus(int err, const std::string& op, const std::string& path) {
  internal::StatusBuilder builder = [&] {
    if (err == ENOSPC || err == EDQUOT) return ResourceExhausted();
    if (err == ENOENT) return NotFound();
    return IOError();
  }();
  return builder << op << " '" << path << "': " << std::strerror(err);
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    const char* p = data.data();
    size_t left = data.size();
    while (left > 0) {
      ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus(errno, "write", path_);
      }
      p += n;
      left -= static_cast<size_t>(n);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus(errno, "fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    int fd = fd_;
    fd_ = -1;
    if (fd >= 0 && ::close(fd) != 0) {
      return ErrnoStatus(errno, "close", path_);
    }
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool append) override {
    int flags = O_WRONLY | O_CREAT | (append ? O_APPEND : O_TRUNC);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus(errno, "open for write", path);
    return std::unique_ptr<WritableFile>(
        std::make_unique<PosixWritableFile>(fd, path));
  }

  Result<std::string> ReadFileToString(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return ErrnoStatus(errno, "open for read", path);
    std::string out;
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        int err = errno;
        ::close(fd);
        return ErrnoStatus(err, "read", path);
      }
      if (n == 0) break;
      out.append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return out;
  }

  bool FileExists(const std::string& path) override {
    return ::access(path.c_str(), F_OK) == 0;
  }

  Result<uint64_t> GetFileSize(const std::string& path) override {
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      return ErrnoStatus(errno, "stat", path);
    }
    return static_cast<uint64_t>(st.st_size);
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus(errno, "rename to '" + to + "'", from);
    }
    return Status::OK();
  }

  Status DeleteFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return ErrnoStatus(errno, "unlink", path);
    }
    return Status::OK();
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus(errno, "truncate", path);
    }
    return Status::OK();
  }

  Status CreateDir(const std::string& path) override {
    if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus(errno, "mkdir", path);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return ErrnoStatus(errno, "open dir", path);
    if (::fsync(fd) != 0) {
      int err = errno;
      ::close(fd);
      return ErrnoStatus(err, "fsync dir", path);
    }
    if (::close(fd) != 0) return ErrnoStatus(errno, "close dir", path);
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& path) override {
    DIR* dir = ::opendir(path.c_str());
    if (dir == nullptr) return ErrnoStatus(errno, "opendir", path);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(dir)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(dir);
    return names;
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv env;
  return &env;
}

Status Env::WriteStringToFile(const std::string& path, std::string_view data,
                              bool sync) {
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       NewWritableFile(path));
  DMX_RETURN_IF_ERROR(file->Append(data));
  if (sync) DMX_RETURN_IF_ERROR(file->Sync());
  return file->Close();
}

Status Env::AtomicWriteFile(const std::string& path, std::string_view data) {
  std::string tmp = path + ".tmp";
  DMX_RETURN_IF_ERROR(WriteStringToFile(tmp, data, /*sync=*/true));
  DMX_RETURN_IF_ERROR(RenameFile(tmp, path));
  // The rename is not durable until the parent directory is synced; callers
  // (e.g. Checkpoint) delete superseded files right after this returns, so
  // skipping the sync could leave a MANIFEST pointing at deleted files after
  // power loss.
  size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos
                        ? "."
                        : (slash == 0 ? "/" : path.substr(0, slash));
  return SyncDir(dir);
}

// ---------------------------------------------------------------------------
// FaultInjectionEnv
// ---------------------------------------------------------------------------

/// Wraps a WritableFile so appends/syncs/closes hit the env's fault counter.
/// Named (non-anonymous) so the FaultInjectionEnv friend declaration binds.
class FaultInjectionWritableFile : public WritableFile {
 public:
  FaultInjectionWritableFile(std::unique_ptr<WritableFile> base,
                             FaultInjectionEnv* env, std::string path)
      : base_(std::move(base)), env_(env), path_(std::move(path)) {}

  Status Append(std::string_view data) override;
  Status Sync() override;
  Status Close() override;

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectionEnv* env_;
  std::string path_;
};

Status FaultInjectionEnv::MaybeFault(const std::string& path, bool* torn) {
  if (torn != nullptr) *torn = false;
  if (!armed_) return Status::OK();
  if (!path_filter_.empty() && path.find(path_filter_) == std::string::npos) {
    return Status::OK();
  }
  int64_t op = ops_++;
  if (!fired_ && op < fail_at_) return Status::OK();
  bool first = !fired_;
  fired_ = true;
  switch (kind_) {
    case FaultKind::kNoSpace:
      return ResourceExhausted() << "injected ENOSPC at op " << op;
    case FaultKind::kTornWrite:
      if (first && torn != nullptr && torn_pending_) {
        torn_pending_ = false;
        *torn = true;
      }
      return IOError() << "injected torn write at op " << op;
    case FaultKind::kIOError:
      break;
  }
  return IOError() << "injected I/O fault at op " << op;
}

Status FaultInjectionWritableFile::Append(std::string_view data) {
  bool torn = false;
  Status fault = env_->MaybeFault(path_, &torn);
  if (fault.ok()) return base_->Append(data);
  // A torn write persists a prefix of the record before the "crash".
  if (torn && !data.empty()) {
    (void)base_->Append(data.substr(0, (data.size() + 1) / 2));
    (void)base_->Sync();
  }
  return fault;
}

Status FaultInjectionWritableFile::Sync() {
  DMX_RETURN_IF_ERROR(env_->MaybeFault(path_, nullptr));
  return base_->Sync();
}

Status FaultInjectionWritableFile::Close() {
  Status fault = env_->MaybeFault(path_, nullptr);
  // Always release the descriptor, even when reporting an injected failure.
  Status close_status = base_->Close();
  if (!fault.ok()) return fault;
  return close_status;
}

Result<std::unique_ptr<WritableFile>> FaultInjectionEnv::NewWritableFile(
    const std::string& path, bool append) {
  DMX_RETURN_IF_ERROR(MaybeFault(path, nullptr));
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> base,
                       base_->NewWritableFile(path, append));
  return std::unique_ptr<WritableFile>(
      std::make_unique<FaultInjectionWritableFile>(std::move(base), this,
                                                   path));
}

Status FaultInjectionEnv::RenameFile(const std::string& from,
                                     const std::string& to) {
  // Either endpoint matching the filter makes the rename a filtered op.
  bool from_hits = path_filter_.empty() ||
                   from.find(path_filter_) != std::string::npos;
  DMX_RETURN_IF_ERROR(MaybeFault(from_hits ? from : to, nullptr));
  return base_->RenameFile(from, to);
}

Status FaultInjectionEnv::DeleteFile(const std::string& path) {
  DMX_RETURN_IF_ERROR(MaybeFault(path, nullptr));
  return base_->DeleteFile(path);
}

Status FaultInjectionEnv::TruncateFile(const std::string& path,
                                       uint64_t size) {
  DMX_RETURN_IF_ERROR(MaybeFault(path, nullptr));
  return base_->TruncateFile(path, size);
}

Status FaultInjectionEnv::CreateDir(const std::string& path) {
  DMX_RETURN_IF_ERROR(MaybeFault(path, nullptr));
  return base_->CreateDir(path);
}

Status FaultInjectionEnv::SyncDir(const std::string& path) {
  DMX_RETURN_IF_ERROR(MaybeFault(path, nullptr));
  return base_->SyncDir(path);
}

}  // namespace dmx
