// Allocation accounting for the hot paths (DESIGN.md §14).
//
// Built with -DDMX_ALLOC_STATS=ON, this TU replaces the global operator
// new/delete with thin wrappers that bump thread-local counters (allocation
// count, requested bytes, free count). An AllocStats::Region snapshot-pairs
// those counters so benchmarks and the allocation-budget tests can measure
// exactly how many heap allocations one operation performs on the calling
// thread:
//
//   dmx::AllocStats::Region r;
//   ... run the scan / join / prediction ...
//   dmx::AllocCounts d = r.Delta();   // allocs + bytes since construction
//
// Counters are thread-local on purpose: gtest, the catalog and background
// threads allocate freely, and a per-thread delta keeps their noise out of a
// measurement without any synchronisation on the allocation path. The cost
// per allocation when enabled is two thread-local integer increments; when
// the option is OFF this header still compiles everywhere and every call
// collapses to a zero-returning inline — no interposition, no overhead,
// which is why the option defaults to OFF and only the dedicated hotpath
// CI job turns it on.

#ifndef DMX_COMMON_ALLOC_STATS_H_
#define DMX_COMMON_ALLOC_STATS_H_

#include <cstdint>

namespace dmx {

// Monotonic per-thread totals. `bytes` counts bytes *requested* through
// operator new (not allocator overhead); frees carry no size (sized delete
// is not universal), so only their count is tracked.
struct AllocCounts {
  std::uint64_t allocs = 0;
  std::uint64_t bytes = 0;
  std::uint64_t frees = 0;
};

class AllocStats {
 public:
  // True when the binary was built with -DDMX_ALLOC_STATS=ON and the
  // counting operators are live. Tests use this to skip budget assertions
  // in builds where every Delta() is legitimately zero.
  static bool Enabled();

  // Totals for the calling thread since thread start.
  static AllocCounts ThreadTotals();

  // RAII measurement window. Regions nest freely (each keeps its own start
  // snapshot) and are cheap enough to wrap single benchmark iterations.
  class Region {
   public:
    Region() : start_(ThreadTotals()) {}

    // Allocations on this thread since the Region was constructed.
    AllocCounts Delta() const {
      AllocCounts now = ThreadTotals();
      return AllocCounts{now.allocs - start_.allocs, now.bytes - start_.bytes,
                         now.frees - start_.frees};
    }

   private:
    AllocCounts start_;
  };
};

}  // namespace dmx

#endif  // DMX_COMMON_ALLOC_STATS_H_
