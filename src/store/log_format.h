// Record framing shared by the durable store's WAL, snapshot and manifest
// files. Each record is:
//
//   [u32 payload_size][u32 masked_crc][payload bytes]          (little-endian)
//
// where masked_crc is a LevelDB-style masked CRC32C over the length word and
// the payload. Masking plus header coverage means no all-zero byte run can
// frame as a valid record, so zero-filled preallocated blocks left by a
// crash are detected instead of parsing as empty records.
//
// A reader distinguishes two failure shapes:
//   * torn tail — damage confined to the final record (short header, short
//     payload, a checksum mismatch on the last record, or a zero-filled run
//     extending to EOF): the write was interrupted; the log is valid up to
//     the previous record.
//   * mid-log corruption — a bad record followed by further non-zero bytes:
//     the file was damaged after the fact; surfaced as kCorruption.

#ifndef DMX_STORE_LOG_FORMAT_H_
#define DMX_STORE_LOG_FORMAT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace dmx::store {

// --- little-endian fixed/length-prefixed primitives ---

void PutFixed32(std::string* dst, uint32_t v);
bool GetFixed32(std::string_view* src, uint32_t* v);
void PutFixed64(std::string* dst, uint64_t v);
bool GetFixed64(std::string_view* src, uint64_t* v);
void PutLengthPrefixed(std::string* dst, std::string_view s);
bool GetLengthPrefixed(std::string_view* src, std::string_view* out);

/// Frames `payload` as one record appended to `dst`.
void AppendRecordTo(std::string* dst, std::string_view payload);

/// \brief Appends checksummed records to an Env file.
class RecordWriter {
 public:
  explicit RecordWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  Status Append(std::string_view payload);
  Status Sync() { return file_->Sync(); }
  Status Close() { return file_->Close(); }

 private:
  std::unique_ptr<WritableFile> file_;
};

struct ReadLogResult {
  std::vector<std::string> records;
  /// Byte offset just past the last valid record (truncation point).
  uint64_t valid_bytes = 0;
  /// True when a torn final record was dropped.
  bool torn_tail = false;
};

/// Parses every record of `data`. Torn final record => OK with
/// torn_tail=true; damage before the end => kCorruption.
Result<ReadLogResult> ParseLog(std::string_view data);

/// \brief Lenient variant for quarantine repair: always yields the valid
/// record prefix, plus the verdict on how parsing stopped.
///
/// `damage` is OK when the log is clean or merely torn (torn_tail set as in
/// ParseLog); kCorruption when damage was found before the end of the file.
/// In every case `log.records` / `log.valid_bytes` describe the longest
/// valid prefix, so a caller can truncate the file back to health.
struct ParsedPrefix {
  ReadLogResult log;
  Status damage;
};
ParsedPrefix ParseLogPrefix(std::string_view data);

/// ReadFileToString + ParseLog. A missing file is an empty log.
Result<ReadLogResult> ReadLogFile(Env* env, const std::string& path);

}  // namespace dmx::store

#endif  // DMX_STORE_LOG_FORMAT_H_
