// DurableStore: crash-safe persistence for the provider's catalogs, making
// mining models and tables genuinely first-class *database* objects (paper
// §2) — they survive process death.
//
// Layout of a store directory (sharded WAL, DESIGN.md §8):
//
//   MANIFEST                    one record: "DMXMANIFEST2" + snapshot seq +
//                               next shard number + the shard table
//                               {id, model, epoch, min_records}; atomically
//                               renamed into place — this is the commit point
//   snapshot-<seq>              full catalog image: table ('T') and model
//                               ('M') entries, terminated by an 'E' record
//   shard-catalog-<epoch>.log   catalog shard: DDL and relational-table
//                               statements journaled since snapshot <seq>
//   shard-m<num>-<epoch>.log    one shard per model: its TRAIN/INSERT
//                               statements and serialized model blobs
//   quarantine/                 shard files that failed recovery, each with a
//                               machine-readable <file>.reason JSON sidecar
//
// Every shard file starts with an 'H' header record naming its shard id,
// model, epoch and the snapshot seq it was born under; every journaled
// record is framed as 'W' + a global sequence number (gsn), so recovery can
// parse shards in parallel and then re-apply all records in their original
// total order.
//
// Recovery: read MANIFEST (missing => directory-scan fallback; present but
// undecodable => the open fails with kCorruption — recovering without the
// shard table would sweep committed rotated shards), apply the snapshot,
// then parse + deserialize all live shards on a bounded worker pool and
// replay the merged records in gsn order. A torn final record in any shard
// is truncated silently; a shard with damage earlier in the file (or one
// that fails to re-apply) is moved to quarantine/ instead of failing Open —
// the affected model degrades to kUnavailable until Repair re-adopts the
// shard's valid prefix. The store is policy-free about *what* the records
// mean — a StoreClient (the provider) applies and captures catalog state.

#ifndef DMX_STORE_STORE_H_
#define DMX_STORE_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "store/log_format.h"

namespace dmx::store {

/// Shard id of the catalog shard (DDL + relational statements).
inline constexpr char kCatalogShardId[] = "catalog";

/// One snapshot entry / decoded WAL payload.
struct StoreRecord {
  char kind = 0;      ///< 'S' statement, 'M' model blob, 'T' table, 'E' end.
  std::string name;   ///< Object name ('M'/'T').
  std::string meta;   ///< 'T': serialized schema; else empty.
  std::string data;   ///< 'S': statement text; 'M': PMML; 'T': CSV.
};

std::string EncodeStatementRecord(std::string_view text);
std::string EncodeModelRecord(std::string_view name, std::string_view pmml);
std::string EncodeTableRecord(std::string_view name, std::string_view meta,
                              std::string_view csv);
Result<StoreRecord> DecodeStoreRecord(std::string_view payload);

/// Result of deserializing a blob/table off-thread, opaque to the store.
using PreparedObject = std::shared_ptr<void>;

/// \brief Applies recovered records to, and captures snapshots from, the
/// catalog. Implemented by the provider.
class StoreClient {
 public:
  virtual ~StoreClient() = default;

  /// Re-executes one journaled DDL/DML statement.
  virtual Status ApplyStatement(const std::string& text) = 0;

  /// Installs a model from its serialized form, replacing any same-named one.
  virtual Status ApplyModelBlob(const std::string& name,
                                const std::string& pmml) = 0;

  /// Installs a table snapshot, replacing any same-named one.
  virtual Status ApplyTableSnapshot(const StoreRecord& record) = 0;

  /// Serializes the whole catalog (tables then models) for a snapshot.
  virtual Result<std::vector<StoreRecord>> CaptureSnapshot() = 0;

  // --- parallel-recovery seam -------------------------------------------
  // Prepare* deserialize the expensive part of a record and MUST be safe to
  // call from concurrent recovery worker threads (they run while Open holds
  // every relevant lock, and are joined before anything is applied).
  // ApplyPrepared* run on the recovering thread in record order. The default
  // implementations defer all work to the Apply path, so a client that does
  // not override them still recovers correctly — just serially.

  /// Deserializes a model blob off-thread; nullptr means "not prepared".
  virtual Result<PreparedObject> PrepareModelBlob(const std::string& name,
                                                  const std::string& pmml) {
    (void)name;
    (void)pmml;
    return PreparedObject();
  }
  /// Installs a model prepared by PrepareModelBlob (nullptr: fall back to
  /// ApplyModelBlob on `pmml`).
  virtual Status ApplyPreparedModel(const std::string& name,
                                    const std::string& pmml,
                                    const PreparedObject& prepared) {
    (void)prepared;
    return ApplyModelBlob(name, pmml);
  }
  /// Parses a table snapshot off-thread; nullptr means "not prepared".
  virtual Result<PreparedObject> PrepareTableSnapshot(
      const StoreRecord& record) {
    (void)record;
    return PreparedObject();
  }
  virtual Status ApplyPreparedTable(const StoreRecord& record,
                                    const PreparedObject& prepared) {
    (void)prepared;
    return ApplyTableSnapshot(record);
  }
};

struct StoreOptions {
  Env* env = nullptr;  ///< nullptr: Env::Default().
  /// Checkpoint automatically once this many WAL records accumulate across
  /// all shards (0 disables auto-checkpointing).
  uint64_t auto_checkpoint_interval = 0;
  /// Worker threads for the recovery parse/deserialize phase. 0 picks the
  /// hardware concurrency (capped at 8); 1 recovers serially.
  int recovery_threads = 0;
};

struct RecoveryStats {
  uint64_t snapshot_seq = 0;
  uint64_t snapshot_entries = 0;
  uint64_t replayed_statements = 0;
  uint64_t replayed_blobs = 0;
  bool torn_tail_truncated = false;
  uint64_t shards_recovered = 0;    ///< Live shards replayed this open.
  uint64_t shards_quarantined = 0;  ///< Shards quarantined this open.
};

/// One shard's state as reported by GetStatus / the recovery report.
struct ShardStatus {
  std::string id;     ///< "catalog" or "m<num>".
  std::string model;  ///< Empty for the catalog shard.
  uint64_t epoch = 0;
  uint64_t records = 0;     ///< Journaled records (live shards only).
  bool quarantined = false;
  std::string reason;  ///< Why the shard was quarantined; empty when live.
};

struct StoreStatus {
  uint64_t snapshot_seq = 0;
  std::vector<ShardStatus> shards;  ///< Live shards, then quarantined ones.
};

struct RepairStats {
  uint64_t records_reapplied = 0;
  uint64_t records_skipped = 0;  ///< Superseded records (kAlreadyExists).
  uint64_t bytes_dropped = 0;    ///< Bytes past the valid prefix.
};

/// Thread-safety: the provider already serializes every journaling statement
/// under its exclusive catalog lock, but the store carries its own Mutex so
/// the shard/manifest invariants (writers, epochs, the gsn counter and the
/// shard table move together) are machine-checked rather than inherited by
/// convention — and so direct store users (tests, tools) get the same
/// guarantee without a provider. Recovery worker threads never touch guarded
/// state: they parse bytes handed to them and return results to the opening
/// thread.
class DurableStore {
 public:
  /// Opens (creating if needed) the store at `dir` and recovers its contents
  /// into `client`. The client must outlive the store. Shards that fail
  /// recovery are quarantined (see recovery_report()), not surfaced as
  /// errors; only snapshot/MANIFEST damage fails the open.
  static Result<std::unique_ptr<DurableStore>> Open(const std::string& dir,
                                                    StoreClient* client,
                                                    StoreOptions options = {});

  /// Appends one catalog-shard record and fsyncs it. On success the
  /// statement is durable. May trigger an auto-checkpoint (whose failure is
  /// not the statement's failure: the record is already safe, so it is
  /// swallowed and retried at the next interval).
  Status JournalStatement(const std::string& text) DMX_EXCLUDES(mu_);

  /// Appends one statement to `model`'s shard (creating the shard when the
  /// model journals for the first time).
  Status JournalModelStatement(const std::string& model,
                               const std::string& text) DMX_EXCLUDES(mu_);

  /// Journals a serialized model into `name`'s shard. A blob supersedes
  /// every earlier record of that shard, so this rotates the shard to a new
  /// epoch holding only the blob, committing via a MANIFEST rewrite.
  Status JournalModelBlob(const std::string& name, const std::string& pmml)
      DMX_EXCLUDES(mu_);

  /// Snapshots the catalog and retires every shard. Crash-safe at every
  /// step: until the MANIFEST rename commits, recovery uses the old
  /// snapshot + shards. Refused while the catalog shard is quarantined
  /// (checkpointing would silently discard its unreplayed records).
  Status Checkpoint() DMX_EXCLUDES(mu_);

  /// Re-adopts quarantined shard `shard_id`: truncates its file to the valid
  /// record prefix, re-applies those records through the client, and brings
  /// the shard back live at a bumped epoch (MANIFEST rewrite commits the
  /// adoption). Records superseded by later state (kAlreadyExists) are
  /// skipped. Must be called under the same exclusive catalog regime as
  /// Open (the provider's Repair wrapper does this).
  Status Repair(const std::string& shard_id, RepairStats* stats = nullptr)
      DMX_EXCLUDES(mu_);

  /// Stats of the Open-time recovery pass. Written once before the store is
  /// published, immutable afterwards — hence not guarded.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }

  /// Per-shard outcomes of the Open-time recovery pass, including
  /// quarantines outstanding from previous sessions. Immutable after Open.
  const std::vector<ShardStatus>& recovery_report() const {
    return recovery_report_;
  }

  /// Live + quarantined shards right now.
  StoreStatus GetStatus() const DMX_EXCLUDES(mu_);

  /// True while the catalog shard is quarantined: journaled writes are
  /// refused with kUnavailable until Repair re-adopts it.
  bool catalog_quarantined() const DMX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return quarantined_.count(kCatalogShardId) > 0;
  }

  uint64_t snapshot_seq() const DMX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return seq_;
  }
  /// Records across all live shards (recovered + newly journaled).
  uint64_t wal_records() const DMX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return total_records_;
  }
  const std::string& dir() const { return dir_; }

 private:
  /// One live shard: its identity, current epoch and (lazy) writer.
  struct Shard {
    std::string id;
    std::string model;  ///< Empty for the catalog shard.
    uint64_t epoch = 1;
    uint64_t born_snapshot = 0;  ///< Snapshot seq current at creation.
    uint64_t records = 0;        ///< Journaled records (header excluded).
    std::unique_ptr<RecordWriter> writer;
  };

  /// A quarantined shard awaiting Repair.
  struct QuarantineEntry {
    std::string id;
    std::string model;
    uint64_t epoch = 0;
    std::string file;    ///< Original file name (also the quarantine name).
    std::string reason;  ///< Human-readable failure description.
    /// Set when this session already applied a prefix of the shard (a
    /// mid-replay failure): Repair would double-apply, so it is refused
    /// until the store is reopened.
    bool partial_this_session = false;
  };

  DurableStore(std::string dir, StoreClient* client, StoreOptions options);

  Status Recover() DMX_REQUIRES(mu_);
  void LoadOutstandingQuarantines() DMX_REQUIRES(mu_);

  /// Moves `file` (when present) into quarantine/ and writes its .reason
  /// sidecar; registers the entry. Best-effort on the file operations — the
  /// entry is registered (and the shard kept out of the live set) even when
  /// the move fails.
  void QuarantineShard(QuarantineEntry entry, uint64_t valid_bytes,
                       uint64_t valid_records) DMX_REQUIRES(mu_);

  Status Append(Shard* shard, std::string inner_payload) DMX_REQUIRES(mu_);
  Status EnsureShardWriter(Shard* shard) DMX_REQUIRES(mu_);
  /// Returns the live shard for `model`, creating one on first use.
  Result<Shard*> ResolveModelShard(const std::string& model)
      DMX_REQUIRES(mu_);
  /// Refuses journaling into quarantined territory with kUnavailable.
  Status CheckWritable(const std::string& shard_id) DMX_REQUIRES(mu_);

  /// Checkpoint body; split out so Append's auto-checkpoint can run without
  /// re-locking.
  Status CheckpointLocked() DMX_REQUIRES(mu_);
  /// Writes MANIFEST listing every live shard at its current epoch/records.
  Status WriteManifestLocked() DMX_REQUIRES(mu_);

  std::string SnapshotPath(uint64_t seq) const;
  std::string ShardFileName(const std::string& id, uint64_t epoch) const;
  std::string ShardPath(const std::string& id, uint64_t epoch) const;
  std::string ManifestPath() const;
  std::string QuarantineDir() const;
  /// Best-effort removal of *.tmp and files from retired shard epochs /
  /// snapshot seqs. Namespace-aware: only names matching the store's own
  /// patterns are ever deleted; quarantine/ and foreign files are untouched.
  void CleanStaleFiles() DMX_REQUIRES(mu_);

  const std::string dir_;
  StoreClient* const client_;
  const StoreOptions options_;
  Env* const env_;

  /// Serializes shard appends, rotation and the manifest.
  mutable Mutex mu_{"store.mu"};
  uint64_t seq_ DMX_GUARDED_BY(mu_) = 0;
  uint64_t next_shard_num_ DMX_GUARDED_BY(mu_) = 0;
  uint64_t next_gsn_ DMX_GUARDED_BY(mu_) = 1;
  uint64_t total_records_ DMX_GUARDED_BY(mu_) = 0;
  /// Live shards by id.
  std::map<std::string, Shard> shards_ DMX_GUARDED_BY(mu_);
  /// Model name -> live shard id.
  std::map<std::string, std::string> model_shard_ DMX_GUARDED_BY(mu_);
  /// Quarantined shards by id.
  std::map<std::string, QuarantineEntry> quarantined_ DMX_GUARDED_BY(mu_);

  RecoveryStats recovery_stats_;
  std::vector<ShardStatus> recovery_report_;
};

}  // namespace dmx::store

#endif  // DMX_STORE_STORE_H_
