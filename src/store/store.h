// DurableStore: crash-safe persistence for the provider's catalogs, making
// mining models and tables genuinely first-class *database* objects (paper
// §2) — they survive process death.
//
// Layout of a store directory:
//
//   MANIFEST            one record: "DMXMANIFEST <seq>" (atomic-renamed)
//   snapshot-<seq>      full catalog image: table ('T') and model ('M')
//                       entries, terminated by an 'E' record; written to a
//                       .tmp file, fsynced, then atomically renamed
//   wal-<seq>.log       statements journaled since snapshot <seq>; every
//                       append is fsynced before the caller sees success
//
// Recovery: pick the newest valid snapshot (MANIFEST fast path, directory
// scan fallback), apply its entries, then replay the matching WAL. A torn
// final WAL record is truncated silently; damage earlier in a file surfaces
// as kCorruption. The store is policy-free about *what* the records mean —
// a StoreClient (the provider) applies and captures catalog state.

#ifndef DMX_STORE_STORE_H_
#define DMX_STORE_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "store/log_format.h"

namespace dmx::store {

/// One snapshot entry / decoded WAL payload.
struct StoreRecord {
  char kind = 0;      ///< 'S' statement, 'M' model blob, 'T' table, 'E' end.
  std::string name;   ///< Object name ('M'/'T').
  std::string meta;   ///< 'T': serialized schema; else empty.
  std::string data;   ///< 'S': statement text; 'M': PMML; 'T': CSV.
};

std::string EncodeStatementRecord(std::string_view text);
std::string EncodeModelRecord(std::string_view name, std::string_view pmml);
std::string EncodeTableRecord(std::string_view name, std::string_view meta,
                              std::string_view csv);
Result<StoreRecord> DecodeStoreRecord(std::string_view payload);

/// \brief Applies recovered records to, and captures snapshots from, the
/// catalog. Implemented by the provider.
class StoreClient {
 public:
  virtual ~StoreClient() = default;

  /// Re-executes one journaled DDL/DML statement.
  virtual Status ApplyStatement(const std::string& text) = 0;

  /// Installs a model from its serialized form, replacing any same-named one.
  virtual Status ApplyModelBlob(const std::string& name,
                                const std::string& pmml) = 0;

  /// Installs a table snapshot, replacing any same-named one.
  virtual Status ApplyTableSnapshot(const StoreRecord& record) = 0;

  /// Serializes the whole catalog (tables then models) for a snapshot.
  virtual Result<std::vector<StoreRecord>> CaptureSnapshot() = 0;
};

struct StoreOptions {
  Env* env = nullptr;  ///< nullptr: Env::Default().
  /// Checkpoint automatically once this many WAL records accumulate
  /// (0 disables auto-checkpointing).
  uint64_t auto_checkpoint_interval = 0;
};

struct RecoveryStats {
  uint64_t snapshot_seq = 0;
  uint64_t snapshot_entries = 0;
  uint64_t replayed_statements = 0;
  uint64_t replayed_blobs = 0;
  bool torn_tail_truncated = false;
};

/// Thread-safety: the provider already serializes every journaling statement
/// under its exclusive catalog lock, but the store carries its own Mutex so
/// the WAL/epoch invariants (`wal_`, `seq_`, `wal_records_` move together)
/// are machine-checked rather than inherited by convention — and so direct
/// store users (tests, tools) get the same guarantee without a provider.
class DurableStore {
 public:
  /// Opens (creating if needed) the store at `dir` and recovers its contents
  /// into `client`. The client must outlive the store.
  static Result<std::unique_ptr<DurableStore>> Open(const std::string& dir,
                                                    StoreClient* client,
                                                    StoreOptions options = {});

  /// Appends one record to the WAL and fsyncs it. On success the statement
  /// is durable. May trigger an auto-checkpoint (whose failure is not the
  /// statement's failure: the WAL record is already safe, so it is swallowed
  /// and retried at the next interval).
  Status JournalStatement(const std::string& text) DMX_EXCLUDES(mu_);
  Status JournalModelBlob(const std::string& name, const std::string& pmml)
      DMX_EXCLUDES(mu_);

  /// Snapshots the catalog and rotates the WAL. Crash-safe at every step:
  /// until the MANIFEST rename commits, recovery uses the old snapshot+WAL.
  Status Checkpoint() DMX_EXCLUDES(mu_);

  /// Stats of the Open-time recovery pass. Written once before the store is
  /// published, immutable afterwards — hence not guarded.
  const RecoveryStats& recovery_stats() const { return recovery_stats_; }
  uint64_t snapshot_seq() const DMX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return seq_;
  }
  /// Records in the active WAL (recovered + newly journaled).
  uint64_t wal_records() const DMX_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return wal_records_;
  }
  const std::string& dir() const { return dir_; }

 private:
  DurableStore(std::string dir, StoreClient* client, StoreOptions options);

  Status Recover() DMX_REQUIRES(mu_);
  Status Append(std::string_view payload) DMX_REQUIRES(mu_);
  Status EnsureWalWriter() DMX_REQUIRES(mu_);
  /// Checkpoint body; split out so Append's auto-checkpoint can run without
  /// re-locking.
  Status CheckpointLocked() DMX_REQUIRES(mu_);
  std::string SnapshotPath(uint64_t seq) const;
  std::string WalPath(uint64_t seq) const;
  std::string ManifestPath() const;
  /// Best-effort removal of *.tmp and files from other snapshot epochs.
  void CleanStaleFiles() DMX_REQUIRES(mu_);

  const std::string dir_;
  StoreClient* const client_;
  const StoreOptions options_;
  Env* const env_;

  /// Serializes WAL appends and epoch rotation.
  mutable Mutex mu_{"store.mu"};
  uint64_t seq_ DMX_GUARDED_BY(mu_) = 0;
  uint64_t wal_records_ DMX_GUARDED_BY(mu_) = 0;
  std::unique_ptr<RecordWriter> wal_ DMX_GUARDED_BY(mu_);
  RecoveryStats recovery_stats_;
};

}  // namespace dmx::store

#endif  // DMX_STORE_STORE_H_
