#include "store/store.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <set>
#include <tuple>
#include <thread>

namespace dmx::store {

namespace {

constexpr char kManifestMagic2[] = "DMXMANIFEST2";

std::string FormatSeq(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06" PRIu64, seq);
  return buf;
}

/// "snapshot-000123" -> 123; nullopt-style false for non-matching names.
bool ParseSeqSuffix(const std::string& name, const std::string& prefix,
                    const std::string& suffix, uint64_t* seq) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  char* end = nullptr;
  *seq = std::strtoull(digits.c_str(), &end, 10);
  return end == digits.c_str() + digits.size();
}

/// "shard-<id>-<epoch>.log" -> (id, epoch). The id itself never contains the
/// trailing "-<epoch>" ambiguity: the epoch is the final dash-separated run
/// of digits.
bool ParseShardFileName(const std::string& name, std::string* id,
                        uint64_t* epoch) {
  constexpr char kPrefix[] = "shard-";
  constexpr char kSuffix[] = ".log";
  size_t prefix_len = sizeof(kPrefix) - 1;
  size_t suffix_len = sizeof(kSuffix) - 1;
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, kPrefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, kSuffix) != 0) {
    return false;
  }
  std::string middle =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  size_t dash = middle.find_last_of('-');
  if (dash == std::string::npos || dash == 0 || dash + 1 >= middle.size()) {
    return false;
  }
  std::string digits = middle.substr(dash + 1);
  char* end = nullptr;
  *epoch = std::strtoull(digits.c_str(), &end, 10);
  if (end != digits.c_str() + digits.size()) return false;
  *id = middle.substr(0, dash);
  return !id->empty();
}

/// "m000017" -> 17 for model shard ids; false for "catalog" / foreign ids.
bool ParseShardNum(const std::string& id, uint64_t* num) {
  if (id.size() < 2 || id[0] != 'm') return false;
  char* end = nullptr;
  *num = std::strtoull(id.c_str() + 1, &end, 10);
  return end == id.c_str() + id.size();
}

std::string ModelShardId(uint64_t num) { return "m" + FormatSeq(num); }

// --- shard header ('H') and journal ('W') payloads -----------------------

std::string EncodeShardHeader(const std::string& id, const std::string& model,
                              uint64_t epoch, uint64_t born_snapshot) {
  std::string out(1, 'H');
  PutLengthPrefixed(&out, id);
  PutLengthPrefixed(&out, model);
  PutFixed64(&out, epoch);
  PutFixed64(&out, born_snapshot);
  return out;
}

struct ShardHeader {
  std::string id;
  std::string model;
  uint64_t epoch = 0;
  uint64_t born_snapshot = 0;
};

bool DecodeShardHeader(std::string_view payload, ShardHeader* out) {
  if (payload.empty() || payload[0] != 'H') return false;
  std::string_view rest = payload.substr(1);
  std::string_view id;
  std::string_view model;
  if (!GetLengthPrefixed(&rest, &id) || !GetLengthPrefixed(&rest, &model) ||
      !GetFixed64(&rest, &out->epoch) ||
      !GetFixed64(&rest, &out->born_snapshot)) {
    return false;
  }
  out->id.assign(id.data(), id.size());
  out->model.assign(model.data(), model.size());
  return true;
}

std::string EncodeJournalPayload(uint64_t gsn, std::string_view inner) {
  std::string out(1, 'W');
  PutFixed64(&out, gsn);
  out.append(inner.data(), inner.size());
  return out;
}

bool DecodeJournalPayload(std::string_view payload, uint64_t* gsn,
                          std::string_view* inner) {
  if (payload.empty() || payload[0] != 'W') return false;
  std::string_view rest = payload.substr(1);
  if (!GetFixed64(&rest, gsn)) return false;
  *inner = rest;
  return true;
}

// --- MANIFEST v2 ----------------------------------------------------------

struct ManifestShard {
  std::string id;
  std::string model;
  uint64_t epoch = 0;
  /// Records known journaled at manifest-write time: a floor used to tell a
  /// legitimately-empty shard from a vanished file.
  uint64_t min_records = 0;
};

struct ManifestData {
  uint64_t seq = 0;
  uint64_t next_shard_num = 0;
  std::vector<ManifestShard> shards;
};

std::string EncodeManifestPayload(const ManifestData& m) {
  std::string out = kManifestMagic2;
  PutFixed64(&out, m.seq);
  PutFixed64(&out, m.next_shard_num);
  PutFixed32(&out, static_cast<uint32_t>(m.shards.size()));
  for (const ManifestShard& shard : m.shards) {
    PutLengthPrefixed(&out, shard.id);
    PutLengthPrefixed(&out, shard.model);
    PutFixed64(&out, shard.epoch);
    PutFixed64(&out, shard.min_records);
  }
  return out;
}

bool DecodeManifestPayload(std::string_view payload, ManifestData* out) {
  constexpr size_t kMagicLen = sizeof(kManifestMagic2) - 1;
  if (payload.size() < kMagicLen ||
      payload.compare(0, kMagicLen, kManifestMagic2) != 0) {
    return false;
  }
  std::string_view rest = payload.substr(kMagicLen);
  uint32_t count = 0;
  if (!GetFixed64(&rest, &out->seq) ||
      !GetFixed64(&rest, &out->next_shard_num) || !GetFixed32(&rest, &count)) {
    return false;
  }
  out->shards.clear();
  for (uint32_t i = 0; i < count; ++i) {
    ManifestShard shard;
    std::string_view id;
    std::string_view model;
    if (!GetLengthPrefixed(&rest, &id) || !GetLengthPrefixed(&rest, &model) ||
        !GetFixed64(&rest, &shard.epoch) ||
        !GetFixed64(&rest, &shard.min_records)) {
      return false;
    }
    shard.id.assign(id.data(), id.size());
    shard.model.assign(model.data(), model.size());
    out->shards.push_back(std::move(shard));
  }
  return true;
}

// --- quarantine reason files (minimal JSON) -------------------------------

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out += (static_cast<unsigned char>(c) < 0x20) ? ' ' : c;
    }
  }
  return out;
}

std::string JsonUnescape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 >= s.size()) {
      out += s[i];
      continue;
    }
    ++i;
    switch (s[i]) {
      case 'n':
        out += '\n';
        break;
      case 't':
        out += '\t';
        break;
      case 'r':
        out += '\r';
        break;
      default:
        out += s[i];
    }
  }
  return out;
}

bool ExtractJsonString(const std::string& body, const std::string& key,
                       std::string* out) {
  std::string needle = "\"" + key + "\":\"";
  size_t start = body.find(needle);
  if (start == std::string::npos) return false;
  start += needle.size();
  size_t end = start;
  while (end < body.size()) {
    if (body[end] == '\\') {
      end += 2;
      continue;
    }
    if (body[end] == '"') break;
    ++end;
  }
  if (end >= body.size()) return false;
  *out = JsonUnescape(std::string_view(body).substr(start, end - start));
  return true;
}

bool ExtractJsonUint(const std::string& body, const std::string& key,
                     uint64_t* out) {
  std::string needle = "\"" + key + "\":";
  size_t start = body.find(needle);
  if (start == std::string::npos) return false;
  start += needle.size();
  char* end = nullptr;
  *out = std::strtoull(body.c_str() + start, &end, 10);
  return end != body.c_str() + start;
}

// --- recovery worker pool -------------------------------------------------

/// Runs fn(0..n-1) on up to `threads` workers. Workers claim indices from an
/// atomic counter; they touch only their own task's state, so no locks are
/// needed (and none may be taken: these threads run inside Open's critical
/// section).
void RunParallel(int threads, size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  int workers = std::min<int>(threads, static_cast<int>(n));
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto worker = [&] {
    while (true) {
      size_t i = next.fetch_add(1);
      if (i >= n) return;
      fn(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers) - 1);
  for (int t = 1; t < workers; ++t) pool.emplace_back(worker);
  worker();
  for (std::thread& t : pool) t.join();
}

int ResolveRecoveryThreads(int requested) {
  if (requested > 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  if (hw == 0) hw = 4;
  return static_cast<int>(std::min(hw, 8u));
}

/// One decoded journal record, tagged with its shard for the gsn merge.
struct ScannedRecord {
  uint64_t gsn = 0;
  StoreRecord record;
  PreparedObject prepared;  ///< For 'M' records prepared off-thread.
};

/// Worker-side scan of one candidate shard file.
struct ShardScan {
  // Inputs.
  std::string id;
  std::string model;  ///< From the manifest; workers fill it from the header
                      ///< for unknown shards.
  uint64_t epoch = 0;
  std::string path;
  std::string file_name;
  bool known = false;        ///< Listed in the manifest.
  uint64_t min_records = 0;  ///< Manifest floor: acked records at commit.
  // Outputs.
  Status failure;  ///< Non-OK: shard must be quarantined.
  bool header_valid = false;
  uint64_t born_snapshot = 0;
  bool torn = false;
  uint64_t valid_bytes = 0;
  std::vector<ScannedRecord> records;
};

}  // namespace

std::string EncodeStatementRecord(std::string_view text) {
  std::string out(1, 'S');
  out.append(text.data(), text.size());
  return out;
}

std::string EncodeModelRecord(std::string_view name, std::string_view pmml) {
  std::string out(1, 'M');
  PutLengthPrefixed(&out, name);
  out.append(pmml.data(), pmml.size());
  return out;
}

std::string EncodeTableRecord(std::string_view name, std::string_view meta,
                              std::string_view csv) {
  std::string out(1, 'T');
  PutLengthPrefixed(&out, name);
  PutLengthPrefixed(&out, meta);
  out.append(csv.data(), csv.size());
  return out;
}

Result<StoreRecord> DecodeStoreRecord(std::string_view payload) {
  if (payload.empty()) return Corruption() << "empty store record";
  StoreRecord record;
  record.kind = payload[0];
  std::string_view rest = payload.substr(1);
  switch (record.kind) {
    case 'S':
      record.data.assign(rest.data(), rest.size());
      return record;
    case 'E':
      return record;
    case 'M': {
      std::string_view name;
      if (!GetLengthPrefixed(&rest, &name)) {
        return Corruption() << "model record with malformed name";
      }
      record.name.assign(name.data(), name.size());
      record.data.assign(rest.data(), rest.size());
      return record;
    }
    case 'T': {
      std::string_view name;
      std::string_view meta;
      if (!GetLengthPrefixed(&rest, &name) ||
          !GetLengthPrefixed(&rest, &meta)) {
        return Corruption() << "table record with malformed header";
      }
      record.name.assign(name.data(), name.size());
      record.meta.assign(meta.data(), meta.size());
      record.data.assign(rest.data(), rest.size());
      return record;
    }
    default:
      return Corruption() << "unknown store record kind '" << record.kind
                          << "'";
  }
}

DurableStore::DurableStore(std::string dir, StoreClient* client,
                           StoreOptions options)
    : dir_(std::move(dir)),
      client_(client),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

std::string DurableStore::SnapshotPath(uint64_t seq) const {
  return dir_ + "/snapshot-" + FormatSeq(seq);
}

std::string DurableStore::ShardFileName(const std::string& id,
                                        uint64_t epoch) const {
  return "shard-" + id + "-" + FormatSeq(epoch) + ".log";
}

std::string DurableStore::ShardPath(const std::string& id,
                                    uint64_t epoch) const {
  return dir_ + "/" + ShardFileName(id, epoch);
}

std::string DurableStore::ManifestPath() const { return dir_ + "/MANIFEST"; }

std::string DurableStore::QuarantineDir() const {
  return dir_ + "/quarantine";
}

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, StoreClient* client, StoreOptions options) {
  std::unique_ptr<DurableStore> store(new DurableStore(dir, client, options));
  Status status;
  {
    // The store is not published yet, so there is no contention — the lock
    // is taken purely to satisfy Recover's REQUIRES(mu_) contract.
    MutexLock lock(&store->mu_);
    status = store->Recover();
  }
  if (!status.ok()) {
    return status.WithContext("opening store '" + dir + "'");
  }
  return store;
}

Status DurableStore::Recover() {
  DMX_RETURN_IF_ERROR(env_->CreateDir(dir_));
  const int threads = ResolveRecoveryThreads(options_.recovery_threads);

  // 1. Resolve the manifest: snapshot seq, shard-number floor, shard table.
  // A MANIFEST that exists but does not decode must fail the open, never
  // downgrade to the directory-scan fallback: without the shard table every
  // committed shard at epoch >= 2 would classify as stale and be swept —
  // silent loss of acknowledged data. The crash model cannot produce this
  // state (AtomicWriteFile leaves the previous MANIFEST intact until the
  // rename), so reaching it means fs-level damage or a foreign format.
  ManifestData manifest;
  bool have_manifest = false;
  if (env_->FileExists(ManifestPath())) {
    DMX_ASSIGN_OR_RETURN(ReadLogResult raw,
                         ReadLogFile(env_, ManifestPath()));
    if (raw.records.size() != 1 ||
        !DecodeManifestPayload(raw.records[0], &manifest)) {
      return Corruption() << "MANIFEST exists but is undecodable ("
                          << raw.records.size() << " records"
                          << (raw.torn_tail ? ", torn tail" : "")
                          << "); refusing to recover without the shard table";
    }
    have_manifest = true;
    seq_ = manifest.seq;
    next_shard_num_ = manifest.next_shard_num;
  }
  if (!have_manifest) {
    // Fallback (MANIFEST genuinely absent — a pre-first-commit store): the
    // newest snapshot on disk (rename is atomic, so a present snapshot is
    // whole — its 'E' terminator is verified below anyway).
    DMX_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
    for (const std::string& name : names) {
      uint64_t seq = 0;
      if (ParseSeqSuffix(name, "snapshot-", "", &seq) && seq > seq_) {
        seq_ = seq;
      }
    }
  }

  // 2. Apply the snapshot. Expensive entries (model blobs, table CSV) are
  // deserialized on the worker pool, then applied in capture order. Snapshot
  // damage is NOT quarantinable — it is the base every shard builds on — so
  // it still fails the open with kCorruption.
  if (seq_ > 0) {
    Result<ReadLogResult> snapshot = ReadLogFile(env_, SnapshotPath(seq_));
    if (!snapshot.ok()) {
      return snapshot.status().WithContext("reading snapshot '" +
                                           SnapshotPath(seq_) + "'");
    }
    bool terminated = !snapshot->records.empty() && !snapshot->torn_tail &&
                      snapshot->records.back() == "E";
    if (!terminated) {
      return Corruption() << "snapshot '" << SnapshotPath(seq_)
                          << "' is incomplete (missing end record)";
    }
    std::vector<StoreRecord> entries;
    entries.reserve(snapshot->records.size());
    for (const std::string& payload : snapshot->records) {
      DMX_ASSIGN_OR_RETURN(StoreRecord record, DecodeStoreRecord(payload));
      if (record.kind == 'E') continue;
      if (record.kind != 'T' && record.kind != 'M') {
        return Corruption() << "record kind '" << record.kind
                            << "' is invalid inside a snapshot";
      }
      entries.push_back(std::move(record));
    }
    std::vector<Result<PreparedObject>> prepared(entries.size(),
                                                 PreparedObject());
    RunParallel(threads, entries.size(), [&](size_t i) {
      prepared[i] = entries[i].kind == 'M'
                        ? client_->PrepareModelBlob(entries[i].name,
                                                    entries[i].data)
                        : client_->PrepareTableSnapshot(entries[i]);
    });
    for (size_t i = 0; i < entries.size(); ++i) {
      const StoreRecord& record = entries[i];
      if (!prepared[i].ok()) {
        return prepared[i].status().WithContext("restoring '" + record.name +
                                                "' from snapshot");
      }
      Status applied =
          record.kind == 'M'
              ? client_->ApplyPreparedModel(record.name, record.data,
                                            prepared[i].value())
              : client_->ApplyPreparedTable(record, prepared[i].value());
      DMX_RETURN_IF_ERROR(applied.WithContext(
          std::string("restoring ") +
          (record.kind == 'M' ? "model '" : "table '") + record.name + "'"));
      ++recovery_stats_.snapshot_entries;
    }
  }
  recovery_stats_.snapshot_seq = seq_;

  // 3. Discover candidate shard files and decide which are scannable:
  // manifest-known shards at exactly their manifest epoch; unknown shards at
  // epoch 1 (anything else is an uncommitted rotation or a retired epoch —
  // stale, swept below).
  DMX_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
  std::map<std::string, std::vector<uint64_t>> candidates;
  for (const std::string& name : names) {
    std::string id;
    uint64_t epoch = 0;
    if (ParseShardFileName(name, &id, &epoch)) {
      candidates[id].push_back(epoch);
      uint64_t num = 0;
      if (ParseShardNum(id, &num) && num + 1 > next_shard_num_) {
        next_shard_num_ = num + 1;  // ids are never reused, even stale ones
      }
    }
  }

  std::vector<ShardScan> scans;
  std::map<std::string, const ManifestShard*> manifest_by_id;
  for (const ManifestShard& entry : manifest.shards) {
    manifest_by_id[entry.id] = &entry;
    auto it = candidates.find(entry.id);
    bool file_present =
        it != candidates.end() &&
        std::find(it->second.begin(), it->second.end(), entry.epoch) !=
            it->second.end();
    if (file_present) {
      ShardScan scan;
      scan.id = entry.id;
      scan.model = entry.model;
      scan.epoch = entry.epoch;
      scan.known = true;
      scan.min_records = entry.min_records;
      scan.file_name = ShardFileName(entry.id, entry.epoch);
      scan.path = ShardPath(entry.id, entry.epoch);
      scans.push_back(std::move(scan));
    } else if (entry.min_records > 0) {
      // The manifest promised journaled records; the file is gone. That is
      // real data loss, not a legitimately-empty shard.
      QuarantineEntry q;
      q.id = entry.id;
      q.model = entry.model;
      q.epoch = entry.epoch;
      q.file = ShardFileName(entry.id, entry.epoch);
      q.reason = "Not found: shard file '" + q.file + "' is missing (" +
                 std::to_string(entry.min_records) +
                 " journaled records lost)";
      QuarantineShard(std::move(q), 0, 0);
    } else {
      // Known but legitimately empty: bring it back live without a file.
      Shard shard;
      shard.id = entry.id;
      shard.model = entry.model;
      shard.epoch = entry.epoch;
      shard.born_snapshot = seq_;
      shards_[entry.id] = std::move(shard);
    }
  }
  for (const auto& [id, epochs] : candidates) {
    if (manifest_by_id.count(id) > 0) continue;
    if (std::find(epochs.begin(), epochs.end(), uint64_t{1}) ==
        epochs.end()) {
      continue;  // no epoch-1 file: every epoch is uncommitted — stale
    }
    ShardScan scan;
    scan.id = id;
    scan.epoch = 1;
    scan.known = false;
    scan.file_name = ShardFileName(id, 1);
    scan.path = ShardPath(id, 1);
    scans.push_back(std::move(scan));
  }

  // 4. Parse + deserialize every scannable shard on the worker pool. Workers
  // only read files and fill their own ShardScan; all verdicts, truncations
  // and applies happen on this thread after the join.
  RunParallel(threads, scans.size(), [&](size_t i) {
    ShardScan& scan = scans[i];
    Result<std::string> data = env_->ReadFileToString(scan.path);
    if (!data.ok()) {
      scan.failure = data.status();
      return;
    }
    ParsedPrefix parsed = ParseLogPrefix(*data);
    scan.torn = parsed.log.torn_tail;
    scan.valid_bytes = parsed.log.valid_bytes;
    for (size_t r = 0; r < parsed.log.records.size(); ++r) {
      const std::string& payload = parsed.log.records[r];
      if (r == 0) {
        ShardHeader header;
        if (!DecodeShardHeader(payload, &header)) {
          // An unreadable header on a manifest-known shard is damage; on an
          // unknown shard it means the creating append never acked, so the
          // main thread treats the file as stale.
          if (scan.known) {
            scan.failure = Corruption() << "shard header is unreadable";
          }
          return;
        }
        if (header.id != scan.id || header.epoch != scan.epoch) {
          scan.failure = Corruption()
                         << "shard header names '" << header.id << "' epoch "
                         << header.epoch << ", expected '" << scan.id
                         << "' epoch " << scan.epoch;
          return;
        }
        scan.header_valid = true;
        scan.born_snapshot = header.born_snapshot;
        if (!scan.known) scan.model = header.model;
        continue;
      }
      uint64_t gsn = 0;
      std::string_view inner;
      if (!DecodeJournalPayload(payload, &gsn, &inner)) {
        scan.failure = Corruption()
                       << "journal record " << r << " is not framed as 'W'";
        return;
      }
      Result<StoreRecord> decoded = DecodeStoreRecord(inner);
      if (!decoded.ok()) {
        scan.failure = decoded.status();
        return;
      }
      if (decoded->kind != 'S' && decoded->kind != 'M') {
        scan.failure = Corruption() << "record kind '" << decoded->kind
                                    << "' is invalid inside a shard";
        return;
      }
      ScannedRecord rec;
      rec.gsn = gsn;
      rec.record = std::move(*decoded);
      if (rec.record.kind == 'M') {
        Result<PreparedObject> prep =
            client_->PrepareModelBlob(rec.record.name, rec.record.data);
        if (!prep.ok()) {
          scan.failure =
              prep.status().WithContext("deserializing journaled model '" +
                                        rec.record.name + "'");
          return;
        }
        rec.prepared = std::move(prep).value();
      }
      scan.records.push_back(std::move(rec));
    }
    // Mid-log damage still fails the shard — but the valid prefix was
    // decoded first regardless: it names the owning model (the header) even
    // on a manifest-unknown shard, so the quarantine can degrade that model.
    if (scan.failure.ok() && !parsed.damage.ok()) {
      scan.failure = parsed.damage;
    }
  });

  // 5. Triage the scans: quarantine the damaged, truncate torn tails, drop
  // stale unknowns, keep the rest for the merge.
  std::vector<ShardScan*> live;
  for (ShardScan& scan : scans) {
    if (!scan.known) {
      bool stale = !scan.header_valid && scan.failure.ok();
      if (scan.header_valid && scan.born_snapshot != seq_) stale = true;
      if (stale) continue;  // left to the namespace-aware sweep
      if (scan.failure.ok() && !scan.model.empty() &&
          model_shard_.count(scan.model) > 0) {
        continue;  // duplicate claim on a model; the known shard wins
      }
    }
    if (scan.failure.ok() && scan.known &&
        scan.records.size() < scan.min_records) {
      // The file parses cleanly but holds fewer records than the manifest
      // committed (fs rollback, lost writes): acknowledged records are gone.
      // Checked before the torn-tail truncation so the file is quarantined
      // whole. Every append is fsynced before it acks, so a legitimate torn
      // tail can only be the one record past the manifest floor.
      scan.failure = Corruption()
                     << "shard replays " << scan.records.size()
                     << " records but the manifest promises "
                     << scan.min_records << " — acknowledged records lost";
    }
    if (scan.failure.ok() && scan.torn) {
      Status truncated = env_->TruncateFile(scan.path, scan.valid_bytes);
      if (!truncated.ok()) {
        scan.failure =
            truncated.WithContext("truncating torn tail of '" + scan.path +
                                  "'");
      } else {
        recovery_stats_.torn_tail_truncated = true;
      }
    }
    if (!scan.failure.ok()) {
      QuarantineEntry q;
      q.id = scan.id;
      q.model = scan.model;
      q.epoch = scan.epoch;
      q.file = scan.file_name;
      q.reason = scan.failure.ToString();
      QuarantineShard(std::move(q), scan.valid_bytes, scan.records.size());
      continue;
    }
    if (!scan.model.empty()) model_shard_[scan.model] = scan.id;
    live.push_back(&scan);
  }

  // 6. Merge every surviving record back into the original execution order
  // (the gsn total order) and re-apply. A record that fails to apply
  // quarantines its shard and skips the shard's remaining records; the other
  // shards keep replaying.
  struct MergeRef {
    uint64_t gsn;
    size_t shard;
    size_t index;
  };
  std::vector<MergeRef> merged;
  for (size_t s = 0; s < live.size(); ++s) {
    for (size_t r = 0; r < live[s]->records.size(); ++r) {
      merged.push_back({live[s]->records[r].gsn, s, r});
    }
  }
  // Gsns are unique (consumed even by failed appends), so the tie-break on
  // (shard, index) is pure defense: replay order stays deterministic even
  // against a log that somehow carries duplicates.
  std::sort(merged.begin(), merged.end(),
            [](const MergeRef& a, const MergeRef& b) {
              return std::tie(a.gsn, a.shard, a.index) <
                     std::tie(b.gsn, b.shard, b.index);
            });
  std::vector<bool> dead(live.size(), false);
  std::vector<uint64_t> applied(live.size(), 0);
  for (const MergeRef& ref : merged) {
    if (dead[ref.shard]) continue;
    ShardScan& scan = *live[ref.shard];
    ScannedRecord& rec = scan.records[ref.index];
    Status status =
        rec.record.kind == 'S'
            ? client_->ApplyStatement(rec.record.data)
                  .WithContext("replaying journaled statement")
            : client_
                  ->ApplyPreparedModel(rec.record.name, rec.record.data,
                                       rec.prepared)
                  .WithContext("replaying journaled model '" +
                               rec.record.name + "'");
    if (!status.ok()) {
      dead[ref.shard] = true;
      if (!scan.model.empty()) model_shard_.erase(scan.model);
      QuarantineEntry q;
      q.id = scan.id;
      q.model = scan.model;
      q.epoch = scan.epoch;
      q.file = scan.file_name;
      q.reason = status.ToString();
      q.partial_this_session = applied[ref.shard] > 0;
      QuarantineShard(std::move(q), scan.valid_bytes, scan.records.size());
      continue;
    }
    ++applied[ref.shard];
    if (rec.record.kind == 'S') {
      ++recovery_stats_.replayed_statements;
    } else {
      ++recovery_stats_.replayed_blobs;
    }
    if (rec.gsn >= next_gsn_) next_gsn_ = rec.gsn + 1;
  }

  // 7. Register the survivors as live shards.
  for (size_t s = 0; s < live.size(); ++s) {
    if (dead[s]) continue;
    const ShardScan& scan = *live[s];
    Shard shard;
    shard.id = scan.id;
    shard.model = scan.model;
    shard.epoch = scan.epoch;
    shard.born_snapshot = scan.header_valid ? scan.born_snapshot : seq_;
    shard.records = scan.records.size();
    total_records_ += shard.records;
    shards_[scan.id] = std::move(shard);
    ++recovery_stats_.shards_recovered;
  }

  LoadOutstandingQuarantines();

  // 8. Publish the per-shard report: live shards first, then quarantined.
  for (const auto& [id, shard] : shards_) {
    ShardStatus row;
    row.id = id;
    row.model = shard.model;
    row.epoch = shard.epoch;
    row.records = shard.records;
    recovery_report_.push_back(std::move(row));
  }
  for (const auto& [id, entry] : quarantined_) {
    ShardStatus row;
    row.id = id;
    row.model = entry.model;
    row.epoch = entry.epoch;
    row.quarantined = true;
    row.reason = entry.reason;
    recovery_report_.push_back(std::move(row));
  }

  CleanStaleFiles();
  return Status::OK();
}

void DurableStore::QuarantineShard(QuarantineEntry entry, uint64_t valid_bytes,
                                   uint64_t valid_records) {
  (void)env_->CreateDir(QuarantineDir());
  const std::string src = dir_ + "/" + entry.file;
  const std::string dst = QuarantineDir() + "/" + entry.file;
  if (env_->FileExists(src)) {
    (void)env_->RenameFile(src, dst);
    (void)env_->SyncDir(dir_);
  }
  // Machine-readable sidecar; best-effort (the in-memory entry is
  // authoritative for this session, and a reason-less quarantined file is
  // still resurfaced at the next open).
  std::string code = entry.reason.substr(0, entry.reason.find(':'));
  std::string reason_json =
      "{\"shard\":\"" + JsonEscape(entry.id) + "\",\"model\":\"" +
      JsonEscape(entry.model) + "\",\"epoch\":" + std::to_string(entry.epoch) +
      ",\"file\":\"" + JsonEscape(entry.file) + "\",\"code\":\"" +
      JsonEscape(code) + "\",\"detail\":\"" + JsonEscape(entry.reason) +
      "\",\"valid_bytes\":" + std::to_string(valid_bytes) +
      ",\"valid_records\":" + std::to_string(valid_records) + "}\n";
  (void)env_->WriteStringToFile(dst + ".reason", reason_json);
  ++recovery_stats_.shards_quarantined;
  quarantined_[entry.id] = std::move(entry);
}

void DurableStore::LoadOutstandingQuarantines() {
  if (!env_->FileExists(QuarantineDir())) return;
  Result<std::vector<std::string>> names = env_->ListDir(QuarantineDir());
  if (!names.ok()) return;
  // Sidecars first — directory order is arbitrary, and a bare shard file
  // must not register a reason-less (and model-less) entry that shadows its
  // own sidecar.
  constexpr char kReasonSuffix[] = ".reason";
  constexpr size_t kSuffixLen = sizeof(kReasonSuffix) - 1;
  auto is_sidecar = [&](const std::string& name) {
    return name.size() > kSuffixLen &&
           name.compare(name.size() - kSuffixLen, kSuffixLen,
                        kReasonSuffix) == 0;
  };
  std::sort(names->begin(), names->end(),
            [&](const std::string& a, const std::string& b) {
              return is_sidecar(a) > is_sidecar(b);
            });
  std::set<std::string> seen_files;
  for (const std::string& name : *names) {
    std::string file;
    QuarantineEntry entry;
    if (is_sidecar(name)) {
      file = name.substr(0, name.size() - kSuffixLen);
      Result<std::string> body =
          env_->ReadFileToString(QuarantineDir() + "/" + name);
      if (body.ok()) {
        (void)ExtractJsonString(*body, "shard", &entry.id);
        (void)ExtractJsonString(*body, "model", &entry.model);
        (void)ExtractJsonUint(*body, "epoch", &entry.epoch);
        (void)ExtractJsonString(*body, "detail", &entry.reason);
      }
    } else {
      // A quarantined shard whose reason sidecar never made it to disk.
      if (seen_files.count(name) > 0) continue;
      file = name;
    }
    if (!seen_files.insert(file).second) continue;
    if (entry.id.empty()) {
      uint64_t epoch = 0;
      std::string id;
      if (!ParseShardFileName(file, &id, &epoch)) continue;
      entry.id = id;
      entry.epoch = epoch;
      if (entry.reason.empty()) {
        entry.reason = "quarantined (reason file missing)";
      }
    }
    entry.file = file;
    if (quarantined_.count(entry.id) > 0 || shards_.count(entry.id) > 0) {
      continue;  // already quarantined this open, or repaired concurrently
    }
    if (entry.model.empty() && entry.id != kCatalogShardId) {
      // Sidecar missing or incomplete: the shard file's own 'H' header still
      // names the owning model. Without the attribution, ResolveModelShard
      // could hand that model a fresh shard and fork its history (a later
      // Repair would replay stale records over the new lineage).
      Result<std::string> data =
          env_->ReadFileToString(QuarantineDir() + "/" + file);
      if (data.ok()) {
        ParsedPrefix parsed = ParseLogPrefix(*data);
        ShardHeader header;
        if (!parsed.log.records.empty() &&
            DecodeShardHeader(parsed.log.records[0], &header)) {
          entry.model = header.model;
        }
      }
    }
    uint64_t num = 0;
    if (ParseShardNum(entry.id, &num) && num + 1 > next_shard_num_) {
      next_shard_num_ = num + 1;
    }
    quarantined_[entry.id] = std::move(entry);
  }
}

void DurableStore::CleanStaleFiles() {
  Result<std::vector<std::string>> names = env_->ListDir(dir_);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    std::string id;
    bool stale = false;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale = true;
    } else if (ParseSeqSuffix(name, "snapshot-", "", &seq)) {
      stale = seq != seq_;
    } else if (ParseShardFileName(name, &id, &seq)) {
      // Only the store's own shard namespace is sweepable, and never a
      // quarantined id (its file may still be here if the move failed).
      auto it = shards_.find(id);
      bool is_live = it != shards_.end() && it->second.epoch == seq;
      stale = !is_live && quarantined_.count(id) == 0;
    }
    // Anything else — quarantine/, user files, unrecognized names — is not
    // ours to delete.
    if (stale) (void)env_->DeleteFile(dir_ + "/" + name);
  }
}

Status DurableStore::CheckWritable(const std::string& shard_id) {
  auto catalog = quarantined_.find(kCatalogShardId);
  if (catalog != quarantined_.end()) {
    return Unavailable()
           << "store is read-only: catalog shard quarantined ("
           << catalog->second.reason << "); run Repair to restore it";
  }
  auto it = quarantined_.find(shard_id);
  if (it != quarantined_.end()) {
    Status status = Unavailable() << "shard '" << shard_id
                                  << "' is quarantined (" << it->second.reason
                                  << ")";
    return status.WithContext("quarantined shard '" + it->second.file + "'");
  }
  return Status::OK();
}

Status DurableStore::EnsureShardWriter(Shard* shard) {
  if (shard->writer != nullptr) return Status::OK();
  const std::string path = ShardPath(shard->id, shard->epoch);
  const bool created = !env_->FileExists(path);
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env_->NewWritableFile(path, /*append=*/true));
  auto writer = std::make_unique<RecordWriter>(std::move(file));
  if (created) {
    // A freshly created shard's directory entry must be durable before
    // records are fsynced into it — otherwise a crash can lose the whole
    // file even though every append reported success. The header itself is
    // made durable by the first record's Sync.
    DMX_RETURN_IF_ERROR(writer->Append(EncodeShardHeader(
        shard->id, shard->model, shard->epoch, shard->born_snapshot)));
    DMX_RETURN_IF_ERROR(env_->SyncDir(dir_));
  }
  shard->writer = std::move(writer);
  return Status::OK();
}

Status DurableStore::Append(Shard* shard, std::string inner_payload) {
  DMX_RETURN_IF_ERROR(EnsureShardWriter(shard));
  // The gsn is consumed even when the append fails: the write can land and
  // only the fsync report the error, leaving a durable record that carries
  // this gsn. Reusing it for the next statement would put two records at
  // the same position in the recovery merge, making replay order arbitrary.
  uint64_t gsn = next_gsn_++;
  DMX_RETURN_IF_ERROR(
      shard->writer->Append(EncodeJournalPayload(gsn, inner_payload)));
  DMX_RETURN_IF_ERROR(shard->writer->Sync());
  ++shard->records;
  ++total_records_;
  if (options_.auto_checkpoint_interval > 0 &&
      total_records_ >= options_.auto_checkpoint_interval) {
    // The record above is already durable; a failed checkpoint leaves the
    // old snapshot+shards authoritative, so the statement still succeeds.
    (void)CheckpointLocked();
  }
  return Status::OK();
}

Result<DurableStore::Shard*> DurableStore::ResolveModelShard(
    const std::string& model) {
  auto mapped = model_shard_.find(model);
  if (mapped != model_shard_.end()) {
    return &shards_[mapped->second];
  }
  // A quarantined shard may still own this model; creating a second shard
  // would fork its history. A quarantine whose owner could not be recovered
  // (header unreadable, sidecar gone) may own ANY model, so it blocks every
  // new-shard creation until repaired.
  const QuarantineEntry* unattributed = nullptr;
  for (const auto& [id, entry] : quarantined_) {
    if (entry.model == model) {
      Status status = Unavailable()
                      << "model '" << model << "' is degraded: shard '" << id
                      << "' is quarantined (" << entry.reason << ")";
      return status.WithContext("quarantined shard '" + entry.file + "'");
    }
    if (entry.model.empty() && id != kCatalogShardId) {
      unattributed = &entry;
    }
  }
  if (unattributed != nullptr) {
    Status status = Unavailable()
                    << "cannot create a shard for model '" << model
                    << "': quarantined shard '" << unattributed->id
                    << "' has no recorded owner model and may own it ("
                    << unattributed->reason << ")";
    return status.WithContext("quarantined shard '" + unattributed->file +
                              "'");
  }
  Shard shard;
  shard.id = ModelShardId(next_shard_num_++);
  shard.model = model;
  shard.epoch = 1;
  shard.born_snapshot = seq_;
  std::string id = shard.id;
  shards_[id] = std::move(shard);
  model_shard_[model] = id;
  return &shards_[id];
}

Status DurableStore::JournalStatement(const std::string& text) {
  MutexLock lock(&mu_);
  DMX_RETURN_IF_ERROR(
      CheckWritable(kCatalogShardId).WithContext("journaling statement"));
  auto it = shards_.find(kCatalogShardId);
  if (it == shards_.end()) {
    Shard shard;
    shard.id = kCatalogShardId;
    shard.epoch = 1;
    shard.born_snapshot = seq_;
    it = shards_.emplace(kCatalogShardId, std::move(shard)).first;
  }
  return Append(&it->second, EncodeStatementRecord(text))
      .WithContext("journaling statement");
}

Status DurableStore::JournalModelStatement(const std::string& model,
                                           const std::string& text) {
  MutexLock lock(&mu_);
  DMX_RETURN_IF_ERROR(CheckWritable("").WithContext(
      "journaling statement for model '" + model + "'"));
  Result<Shard*> shard = ResolveModelShard(model);
  if (!shard.ok()) {
    return shard.status().WithContext("journaling statement for model '" +
                                      model + "'");
  }
  return Append(*shard, EncodeStatementRecord(text))
      .WithContext("journaling statement for model '" + model + "'");
}

Status DurableStore::JournalModelBlob(const std::string& name,
                                      const std::string& pmml) {
  MutexLock lock(&mu_);
  DMX_RETURN_IF_ERROR(
      CheckWritable("").WithContext("journaling model '" + name + "'"));
  Result<Shard*> resolved = ResolveModelShard(name);
  if (!resolved.ok()) {
    return resolved.status().WithContext("journaling model '" + name + "'");
  }
  Shard* shard = *resolved;
  std::string inner = EncodeModelRecord(name, pmml);

  if (shard->records == 0 && shard->writer == nullptr &&
      !env_->FileExists(ShardPath(shard->id, shard->epoch))) {
    // Fresh shard: the blob is its first record; no rotation needed.
    return Append(shard, std::move(inner))
        .WithContext("journaling model '" + name + "'");
  }

  // The blob supersedes everything this shard holds: rotate to a new epoch
  // containing only the blob. Commit point is the MANIFEST rewrite — until
  // it lands, recovery replays the old epoch (the blob is unacknowledged);
  // after it, the old epoch is stale.
  uint64_t old_epoch = shard->epoch;
  uint64_t old_records = shard->records;
  uint64_t new_epoch = old_epoch + 1;
  // Consumed unconditionally, same as Append: a failed rotation can still
  // leave the new epoch file on disk, and its record carries this gsn.
  uint64_t gsn = next_gsn_++;
  std::string bytes;
  AppendRecordTo(&bytes, EncodeShardHeader(shard->id, shard->model, new_epoch,
                                           seq_));
  AppendRecordTo(&bytes, EncodeJournalPayload(gsn, inner));
  DMX_RETURN_IF_ERROR(
      env_->AtomicWriteFile(ShardPath(shard->id, new_epoch), bytes)
          .WithContext("journaling model '" + name + "'"));

  shard->epoch = new_epoch;
  shard->born_snapshot = seq_;
  shard->records = 1;
  Status committed = WriteManifestLocked();
  if (!committed.ok()) {
    // Roll back: the old epoch file is untouched and still authoritative.
    shard->epoch = old_epoch;
    shard->records = old_records;
    shard->born_snapshot = seq_;
    (void)env_->DeleteFile(ShardPath(shard->id, new_epoch));
    return committed.WithContext("journaling model '" + name + "'");
  }
  if (shard->writer != nullptr) {
    (void)shard->writer->Close();
    shard->writer.reset();
  }
  (void)env_->DeleteFile(ShardPath(shard->id, old_epoch));
  total_records_ = total_records_ >= old_records
                       ? total_records_ - old_records + 1
                       : 1;
  if (options_.auto_checkpoint_interval > 0 &&
      total_records_ >= options_.auto_checkpoint_interval) {
    (void)CheckpointLocked();
  }
  return Status::OK();
}

Status DurableStore::WriteManifestLocked() {
  ManifestData manifest;
  manifest.seq = seq_;
  manifest.next_shard_num = next_shard_num_;
  for (const auto& [id, shard] : shards_) {
    ManifestShard entry;
    entry.id = id;
    entry.model = shard.model;
    entry.epoch = shard.epoch;
    entry.min_records = shard.records;
    manifest.shards.push_back(std::move(entry));
  }
  std::string file;
  AppendRecordTo(&file, EncodeManifestPayload(manifest));
  return env_->AtomicWriteFile(ManifestPath(), file)
      .WithContext("committing manifest");
}

Status DurableStore::Checkpoint() {
  MutexLock lock(&mu_);
  return CheckpointLocked();
}

Status DurableStore::CheckpointLocked() {
  if (quarantined_.count(kCatalogShardId) > 0) {
    return Unavailable() << "cannot checkpoint: catalog shard is quarantined "
                            "(checkpointing would discard its unreplayed "
                            "records); run Repair first";
  }
  DMX_ASSIGN_OR_RETURN(std::vector<StoreRecord> entries,
                       client_->CaptureSnapshot());
  uint64_t new_seq = seq_ + 1;

  // 1. Snapshot: write-temp -> fsync -> atomic rename.
  std::string snapshot;
  for (const StoreRecord& entry : entries) {
    std::string payload =
        entry.kind == 'M' ? EncodeModelRecord(entry.name, entry.data)
                          : EncodeTableRecord(entry.name, entry.meta,
                                              entry.data);
    AppendRecordTo(&snapshot, payload);
  }
  AppendRecordTo(&snapshot, "E");
  DMX_RETURN_IF_ERROR(
      env_->AtomicWriteFile(SnapshotPath(new_seq), snapshot)
          .WithContext("writing snapshot " + FormatSeq(new_seq)));

  // 2. Commit point: the MANIFEST rename flips recovery to the new epoch.
  // Every shard is retired — its records live in the snapshot now — so the
  // shard table is empty and model ids keep advancing from next_shard_num_.
  ManifestData manifest;
  manifest.seq = new_seq;
  manifest.next_shard_num = next_shard_num_;
  std::string file;
  AppendRecordTo(&file, EncodeManifestPayload(manifest));
  DMX_RETURN_IF_ERROR(env_->AtomicWriteFile(ManifestPath(), file)
                          .WithContext("committing manifest"));

  // 3. Retire the old epoch (best effort; stale files are swept on open).
  std::vector<std::string> old_files;
  for (auto& [id, shard] : shards_) {
    if (shard.writer != nullptr) {
      (void)shard.writer->Close();
      shard.writer.reset();
    }
    old_files.push_back(ShardPath(id, shard.epoch));
  }
  uint64_t old_seq = seq_;
  seq_ = new_seq;
  shards_.clear();
  model_shard_.clear();
  total_records_ = 0;
  for (const std::string& path : old_files) {
    if (env_->FileExists(path)) (void)env_->DeleteFile(path);
  }
  if (old_seq > 0 && env_->FileExists(SnapshotPath(old_seq))) {
    (void)env_->DeleteFile(SnapshotPath(old_seq));
  }
  return Status::OK();
}

Status DurableStore::Repair(const std::string& shard_id, RepairStats* stats) {
  MutexLock lock(&mu_);
  auto it = quarantined_.find(shard_id);
  if (it == quarantined_.end()) {
    return NotFound() << "no quarantined shard '" << shard_id << "'";
  }
  QuarantineEntry& entry = it->second;
  if (entry.partial_this_session) {
    return InvalidState()
           << "shard '" << shard_id
           << "' was partially replayed this session; reopen the store "
              "before repairing it";
  }

  // 1. Truncate-to-valid-prefix: take every record that still parses, in
  // file order (ascending gsn). A shard whose file is missing re-adopts
  // empty — the quarantine mark is what gets cleared.
  RepairStats local;
  std::vector<StoreRecord> records;
  const std::string qpath = QuarantineDir() + "/" + entry.file;
  if (env_->FileExists(qpath)) {
    DMX_ASSIGN_OR_RETURN(std::string data, env_->ReadFileToString(qpath));
    ParsedPrefix parsed = ParseLogPrefix(data);
    local.bytes_dropped = data.size() - parsed.log.valid_bytes;
    for (size_t r = 0; r < parsed.log.records.size(); ++r) {
      const std::string& payload = parsed.log.records[r];
      if (r == 0) {
        ShardHeader header;
        if (DecodeShardHeader(payload, &header)) continue;
        // No valid header: nothing below can be trusted.
        break;
      }
      uint64_t gsn = 0;
      std::string_view inner;
      if (!DecodeJournalPayload(payload, &gsn, &inner)) break;
      Result<StoreRecord> decoded = DecodeStoreRecord(inner);
      if (!decoded.ok() || (decoded->kind != 'S' && decoded->kind != 'M')) {
        break;
      }
      records.push_back(std::move(*decoded));
    }
  }

  // 2. Re-apply the prefix through the client. Statements are re-executed
  // against the *current* catalog; a record superseded by later state
  // (kAlreadyExists — e.g. a CREATE whose object was since restored from a
  // blob) is skipped, any other failure aborts with the shard still
  // quarantined.
  for (const StoreRecord& record : records) {
    Status status = record.kind == 'S'
                        ? client_->ApplyStatement(record.data)
                        : client_->ApplyModelBlob(record.name, record.data);
    if (status.code() == StatusCode::kAlreadyExists) {
      ++local.records_skipped;
      continue;
    }
    if (!status.ok()) {
      entry.partial_this_session = local.records_reapplied > 0;
      return status.WithContext("repairing shard '" + shard_id + "'");
    }
    ++local.records_reapplied;
  }

  // 3. Re-adopt at a bumped epoch: rewrite the records with fresh gsns (the
  // old ones may collide with records journaled since the quarantine), then
  // commit via the MANIFEST.
  uint64_t new_epoch = entry.epoch + 1;
  std::string bytes;
  AppendRecordTo(&bytes, EncodeShardHeader(entry.id, entry.model, new_epoch,
                                           seq_));
  uint64_t first_gsn = next_gsn_;
  uint64_t gsn = first_gsn;
  for (const StoreRecord& record : records) {
    std::string inner = record.kind == 'S'
                            ? EncodeStatementRecord(record.data)
                            : EncodeModelRecord(record.name, record.data);
    AppendRecordTo(&bytes, EncodeJournalPayload(gsn++, inner));
  }
  Status wrote = env_->AtomicWriteFile(ShardPath(entry.id, new_epoch), bytes)
                     .WithContext("re-adopting shard '" + shard_id + "'");
  if (!wrote.ok()) {
    // Step 2 already mutated the live catalog: a same-session retry would
    // re-apply those records on top of themselves.
    entry.partial_this_session = local.records_reapplied > 0;
    return wrote;
  }

  Shard shard;
  shard.id = entry.id;
  shard.model = entry.model;
  shard.epoch = new_epoch;
  shard.born_snapshot = seq_;
  shard.records = records.size();
  std::string model = entry.model;
  std::string file = entry.file;
  shards_[shard_id] = std::move(shard);
  if (!model.empty()) model_shard_[model] = shard_id;
  quarantined_.erase(it);

  Status committed = WriteManifestLocked();
  if (!committed.ok()) {
    // Roll back the adoption; the quarantine stays in place.
    shards_.erase(shard_id);
    if (!model.empty()) model_shard_.erase(model);
    QuarantineEntry restored;
    restored.id = shard_id;
    restored.model = model;
    restored.epoch = new_epoch - 1;
    restored.file = file;
    restored.reason = "repair interrupted: " + committed.ToString();
    // The step-2 catalog mutations are not rolled back; refuse a
    // same-session retry that would double-apply them.
    restored.partial_this_session = local.records_reapplied > 0;
    quarantined_[shard_id] = std::move(restored);
    (void)env_->DeleteFile(ShardPath(shard_id, new_epoch));
    return committed.WithContext("re-adopting shard '" + shard_id + "'");
  }
  next_gsn_ = gsn;
  total_records_ += records.size();
  (void)env_->DeleteFile(qpath);
  (void)env_->DeleteFile(qpath + ".reason");
  if (stats != nullptr) *stats = local;
  return Status::OK();
}

StoreStatus DurableStore::GetStatus() const {
  MutexLock lock(&mu_);
  StoreStatus out;
  out.snapshot_seq = seq_;
  for (const auto& [id, shard] : shards_) {
    ShardStatus row;
    row.id = id;
    row.model = shard.model;
    row.epoch = shard.epoch;
    row.records = shard.records;
    out.shards.push_back(std::move(row));
  }
  for (const auto& [id, entry] : quarantined_) {
    ShardStatus row;
    row.id = id;
    row.model = entry.model;
    row.epoch = entry.epoch;
    row.quarantined = true;
    row.reason = entry.reason;
    out.shards.push_back(std::move(row));
  }
  return out;
}

}  // namespace dmx::store
