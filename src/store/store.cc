#include "store/store.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace dmx::store {

namespace {

constexpr char kManifestMagic[] = "DMXMANIFEST ";

std::string FormatSeq(uint64_t seq) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%06" PRIu64, seq);
  return buf;
}

/// "snapshot-000123" -> 123; nullopt-style -1 for non-matching names.
bool ParseSeqSuffix(const std::string& name, const std::string& prefix,
                    const std::string& suffix, uint64_t* seq) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  char* end = nullptr;
  *seq = std::strtoull(digits.c_str(), &end, 10);
  return end == digits.c_str() + digits.size();
}

}  // namespace

std::string EncodeStatementRecord(std::string_view text) {
  std::string out(1, 'S');
  out.append(text.data(), text.size());
  return out;
}

std::string EncodeModelRecord(std::string_view name, std::string_view pmml) {
  std::string out(1, 'M');
  PutLengthPrefixed(&out, name);
  out.append(pmml.data(), pmml.size());
  return out;
}

std::string EncodeTableRecord(std::string_view name, std::string_view meta,
                              std::string_view csv) {
  std::string out(1, 'T');
  PutLengthPrefixed(&out, name);
  PutLengthPrefixed(&out, meta);
  out.append(csv.data(), csv.size());
  return out;
}

Result<StoreRecord> DecodeStoreRecord(std::string_view payload) {
  if (payload.empty()) return Corruption() << "empty store record";
  StoreRecord record;
  record.kind = payload[0];
  std::string_view rest = payload.substr(1);
  switch (record.kind) {
    case 'S':
      record.data.assign(rest.data(), rest.size());
      return record;
    case 'E':
      return record;
    case 'M': {
      std::string_view name;
      if (!GetLengthPrefixed(&rest, &name)) {
        return Corruption() << "model record with malformed name";
      }
      record.name.assign(name.data(), name.size());
      record.data.assign(rest.data(), rest.size());
      return record;
    }
    case 'T': {
      std::string_view name;
      std::string_view meta;
      if (!GetLengthPrefixed(&rest, &name) ||
          !GetLengthPrefixed(&rest, &meta)) {
        return Corruption() << "table record with malformed header";
      }
      record.name.assign(name.data(), name.size());
      record.meta.assign(meta.data(), meta.size());
      record.data.assign(rest.data(), rest.size());
      return record;
    }
    default:
      return Corruption() << "unknown store record kind '" << record.kind
                          << "'";
  }
}

DurableStore::DurableStore(std::string dir, StoreClient* client,
                           StoreOptions options)
    : dir_(std::move(dir)),
      client_(client),
      options_(options),
      env_(options.env != nullptr ? options.env : Env::Default()) {}

std::string DurableStore::SnapshotPath(uint64_t seq) const {
  return dir_ + "/snapshot-" + FormatSeq(seq);
}

std::string DurableStore::WalPath(uint64_t seq) const {
  return dir_ + "/wal-" + FormatSeq(seq) + ".log";
}

std::string DurableStore::ManifestPath() const { return dir_ + "/MANIFEST"; }

Result<std::unique_ptr<DurableStore>> DurableStore::Open(
    const std::string& dir, StoreClient* client, StoreOptions options) {
  std::unique_ptr<DurableStore> store(new DurableStore(dir, client, options));
  Status status;
  {
    // The store is not published yet, so there is no contention — the lock
    // is taken purely to satisfy Recover's REQUIRES(mu_) contract.
    MutexLock lock(&store->mu_);
    status = store->Recover();
  }
  if (!status.ok()) {
    return status.WithContext("opening store '" + dir + "'");
  }
  return store;
}

Status DurableStore::Recover() {
  DMX_RETURN_IF_ERROR(env_->CreateDir(dir_));

  // Resolve the current snapshot sequence: MANIFEST first, else scan for the
  // newest snapshot file (rename is atomic, so a present snapshot is whole —
  // its 'E' terminator is verified below anyway).
  bool have_seq = false;
  if (env_->FileExists(ManifestPath())) {
    DMX_ASSIGN_OR_RETURN(ReadLogResult manifest,
                         ReadLogFile(env_, ManifestPath()));
    if (manifest.records.size() == 1 &&
        manifest.records[0].rfind(kManifestMagic, 0) == 0) {
      seq_ = std::strtoull(
          manifest.records[0].c_str() + sizeof(kManifestMagic) - 1, nullptr,
          10);
      have_seq = true;
    }
  }
  if (!have_seq) {
    DMX_ASSIGN_OR_RETURN(std::vector<std::string> names, env_->ListDir(dir_));
    for (const std::string& name : names) {
      uint64_t seq = 0;
      if (ParseSeqSuffix(name, "snapshot-", "", &seq) && seq > seq_) {
        seq_ = seq;
      }
    }
  }

  if (seq_ > 0) {
    Result<ReadLogResult> snapshot = ReadLogFile(env_, SnapshotPath(seq_));
    if (!snapshot.ok()) {
      return snapshot.status().WithContext("reading snapshot '" +
                                           SnapshotPath(seq_) + "'");
    }
    bool terminated = !snapshot->records.empty() &&
                      !snapshot->torn_tail &&
                      snapshot->records.back() == "E";
    if (!terminated) {
      return Corruption() << "snapshot '" << SnapshotPath(seq_)
                          << "' is incomplete (missing end record)";
    }
    for (const std::string& payload : snapshot->records) {
      DMX_ASSIGN_OR_RETURN(StoreRecord record, DecodeStoreRecord(payload));
      switch (record.kind) {
        case 'T':
          DMX_RETURN_IF_ERROR(client_->ApplyTableSnapshot(record).WithContext(
              "restoring table '" + record.name + "'"));
          break;
        case 'M':
          DMX_RETURN_IF_ERROR(
              client_->ApplyModelBlob(record.name, record.data)
                  .WithContext("restoring model '" + record.name + "'"));
          break;
        case 'E':
          break;
        default:
          return Corruption() << "record kind '" << record.kind
                              << "' is invalid inside a snapshot";
      }
      if (record.kind != 'E') ++recovery_stats_.snapshot_entries;
    }
  }
  recovery_stats_.snapshot_seq = seq_;

  // Replay the WAL, truncating a torn final record.
  const std::string wal_path = WalPath(seq_);
  DMX_ASSIGN_OR_RETURN(ReadLogResult wal, ReadLogFile(env_, wal_path));
  if (wal.torn_tail) {
    DMX_RETURN_IF_ERROR(
        env_->TruncateFile(wal_path, wal.valid_bytes)
            .WithContext("truncating torn WAL tail of '" + wal_path + "'"));
    recovery_stats_.torn_tail_truncated = true;
  }
  for (const std::string& payload : wal.records) {
    DMX_ASSIGN_OR_RETURN(StoreRecord record, DecodeStoreRecord(payload));
    switch (record.kind) {
      case 'S':
        DMX_RETURN_IF_ERROR(client_->ApplyStatement(record.data).WithContext(
            "replaying journaled statement"));
        ++recovery_stats_.replayed_statements;
        break;
      case 'M':
        DMX_RETURN_IF_ERROR(
            client_->ApplyModelBlob(record.name, record.data)
                .WithContext("replaying imported model '" + record.name +
                             "'"));
        ++recovery_stats_.replayed_blobs;
        break;
      default:
        return Corruption() << "record kind '" << record.kind
                            << "' is invalid inside a WAL";
    }
  }
  wal_records_ = wal.records.size();

  CleanStaleFiles();
  return Status::OK();
}

void DurableStore::CleanStaleFiles() {
  Result<std::vector<std::string>> names = env_->ListDir(dir_);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    uint64_t seq = 0;
    bool stale = false;
    if (name.size() > 4 && name.compare(name.size() - 4, 4, ".tmp") == 0) {
      stale = true;
    } else if (ParseSeqSuffix(name, "snapshot-", "", &seq) ||
               ParseSeqSuffix(name, "wal-", ".log", &seq)) {
      stale = seq != seq_;
    }
    if (stale) (void)env_->DeleteFile(dir_ + "/" + name);
  }
}

Status DurableStore::EnsureWalWriter() {
  if (wal_ != nullptr) return Status::OK();
  const std::string path = WalPath(seq_);
  const bool created = !env_->FileExists(path);
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                       env_->NewWritableFile(path, /*append=*/true));
  // A freshly created WAL's directory entry must be durable before records
  // are fsynced into it — otherwise a crash can lose the whole file even
  // though every append reported success.
  if (created) DMX_RETURN_IF_ERROR(env_->SyncDir(dir_));
  wal_ = std::make_unique<RecordWriter>(std::move(file));
  return Status::OK();
}

Status DurableStore::Append(std::string_view payload) {
  DMX_RETURN_IF_ERROR(EnsureWalWriter());
  DMX_RETURN_IF_ERROR(wal_->Append(payload));
  DMX_RETURN_IF_ERROR(wal_->Sync());
  ++wal_records_;
  if (options_.auto_checkpoint_interval > 0 &&
      wal_records_ >= options_.auto_checkpoint_interval) {
    // The record above is already durable; a failed checkpoint leaves the
    // old snapshot+WAL authoritative, so the statement still succeeds.
    (void)CheckpointLocked();
  }
  return Status::OK();
}

Status DurableStore::JournalStatement(const std::string& text) {
  MutexLock lock(&mu_);
  return Append(EncodeStatementRecord(text))
      .WithContext("journaling statement");
}

Status DurableStore::JournalModelBlob(const std::string& name,
                                      const std::string& pmml) {
  MutexLock lock(&mu_);
  return Append(EncodeModelRecord(name, pmml))
      .WithContext("journaling model '" + name + "'");
}

Status DurableStore::Checkpoint() {
  MutexLock lock(&mu_);
  return CheckpointLocked();
}

Status DurableStore::CheckpointLocked() {
  DMX_ASSIGN_OR_RETURN(std::vector<StoreRecord> entries,
                       client_->CaptureSnapshot());
  uint64_t new_seq = seq_ + 1;

  // 1. Snapshot: write-temp -> fsync -> atomic rename.
  std::string snapshot;
  for (const StoreRecord& entry : entries) {
    std::string payload =
        entry.kind == 'M' ? EncodeModelRecord(entry.name, entry.data)
                          : EncodeTableRecord(entry.name, entry.meta,
                                              entry.data);
    AppendRecordTo(&snapshot, payload);
  }
  AppendRecordTo(&snapshot, "E");
  DMX_RETURN_IF_ERROR(
      env_->AtomicWriteFile(SnapshotPath(new_seq), snapshot)
          .WithContext("writing snapshot " + FormatSeq(new_seq)));

  // 2. Commit point: the MANIFEST rename flips recovery to the new epoch.
  std::string manifest;
  AppendRecordTo(&manifest,
                 std::string(kManifestMagic) + std::to_string(new_seq));
  DMX_RETURN_IF_ERROR(env_->AtomicWriteFile(ManifestPath(), manifest)
                          .WithContext("committing manifest"));

  // 3. Retire the old epoch (best effort; stale files are swept on open).
  if (wal_ != nullptr) {
    (void)wal_->Close();
    wal_.reset();
  }
  uint64_t old_seq = seq_;
  seq_ = new_seq;
  wal_records_ = 0;
  if (env_->FileExists(WalPath(old_seq))) (void)env_->DeleteFile(WalPath(old_seq));
  if (old_seq > 0 && env_->FileExists(SnapshotPath(old_seq))) {
    (void)env_->DeleteFile(SnapshotPath(old_seq));
  }
  return Status::OK();
}

}  // namespace dmx::store
