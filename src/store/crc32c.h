// CRC-32C (Castagnoli): the checksum guarding every record of the durable
// store's WAL, snapshots and manifest. Software table-driven implementation;
// same polynomial (0x1EDC6F41, reflected 0x82F63B78) as RocksDB / iSCSI.

#ifndef DMX_STORE_CRC32C_H_
#define DMX_STORE_CRC32C_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dmx::store {

/// Extends `crc` over `data` (pass 0 to start a new checksum).
uint32_t Crc32cExtend(uint32_t crc, const void* data, size_t n);

inline uint32_t Crc32c(std::string_view data) {
  return Crc32cExtend(0, data.data(), data.size());
}

}  // namespace dmx::store

#endif  // DMX_STORE_CRC32C_H_
