#include "store/log_format.h"

#include "store/crc32c.h"

namespace dmx::store {

void PutFixed32(std::string* dst, uint32_t v) {
  char buf[4] = {static_cast<char>(v & 0xFF),
                 static_cast<char>((v >> 8) & 0xFF),
                 static_cast<char>((v >> 16) & 0xFF),
                 static_cast<char>((v >> 24) & 0xFF)};
  dst->append(buf, 4);
}

bool GetFixed32(std::string_view* src, uint32_t* v) {
  if (src->size() < 4) return false;
  const auto* p = reinterpret_cast<const unsigned char*>(src->data());
  *v = static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
       (static_cast<uint32_t>(p[2]) << 16) |
       (static_cast<uint32_t>(p[3]) << 24);
  src->remove_prefix(4);
  return true;
}

void PutFixed64(std::string* dst, uint64_t v) {
  PutFixed32(dst, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  PutFixed32(dst, static_cast<uint32_t>(v >> 32));
}

bool GetFixed64(std::string_view* src, uint64_t* v) {
  uint32_t lo = 0;
  uint32_t hi = 0;
  if (src->size() < 8) return false;
  if (!GetFixed32(src, &lo) || !GetFixed32(src, &hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

void PutLengthPrefixed(std::string* dst, std::string_view s) {
  PutFixed32(dst, static_cast<uint32_t>(s.size()));
  dst->append(s.data(), s.size());
}

bool GetLengthPrefixed(std::string_view* src, std::string_view* out) {
  uint32_t len = 0;
  if (!GetFixed32(src, &len)) return false;
  if (src->size() < len) return false;
  *out = src->substr(0, len);
  src->remove_prefix(len);
  return true;
}

namespace {

// LevelDB-style CRC masking: rotate and add a constant so the stored value
// is never the raw CRC of its input. Combined with covering the length word,
// this guarantees a run of zero bytes (block preallocation surviving a
// crash) can never frame as a valid record — CRC32C of an empty payload is
// 0, which an unmasked, payload-only checksum would accept.
constexpr uint32_t kCrcMaskDelta = 0xa282ead8u;

uint32_t MaskCrc(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + kCrcMaskDelta;
}

/// Checksum of one record: masked CRC32C over the 4 length bytes followed by
/// the payload.
uint32_t RecordCrc(uint32_t size, std::string_view payload) {
  std::string size_bytes;
  PutFixed32(&size_bytes, size);
  uint32_t crc = Crc32cExtend(0, size_bytes.data(), size_bytes.size());
  crc = Crc32cExtend(crc, payload.data(), payload.size());
  return MaskCrc(crc);
}

bool AllZero(std::string_view data) {
  return data.find_first_not_of('\0') == std::string_view::npos;
}

}  // namespace

void AppendRecordTo(std::string* dst, std::string_view payload) {
  uint32_t size = static_cast<uint32_t>(payload.size());
  PutFixed32(dst, size);
  PutFixed32(dst, RecordCrc(size, payload));
  dst->append(payload.data(), payload.size());
}

Status RecordWriter::Append(std::string_view payload) {
  std::string framed;
  framed.reserve(payload.size() + 8);
  AppendRecordTo(&framed, payload);
  return file_->Append(framed);
}

ParsedPrefix ParseLogPrefix(std::string_view data) {
  ParsedPrefix out;
  const uint64_t total = data.size();
  uint64_t offset = 0;
  while (offset < total) {
    std::string_view rest = data.substr(offset);
    uint32_t size = 0;
    uint32_t crc = 0;
    // Short header or short payload: the record region necessarily extends
    // to EOF, so this is a torn final write.
    if (!GetFixed32(&rest, &size) || !GetFixed32(&rest, &crc) ||
        rest.size() < size) {
      out.log.torn_tail = true;
      return out;
    }
    std::string_view payload = rest.substr(0, size);
    uint64_t next = offset + 8 + size;
    if (RecordCrc(size, payload) != crc) {
      if (next >= total) {
        // Checksum failure on the final record: torn write.
        out.log.torn_tail = true;
        return out;
      }
      if (AllZero(data.substr(offset))) {
        // A zero-filled run to EOF is preallocated blocks left behind by a
        // crash, not damage to written records: torn tail, truncate it.
        out.log.torn_tail = true;
        return out;
      }
      out.damage = Corruption()
                   << "checksum mismatch in record at offset " << offset
                   << " (" << size << " bytes, followed by " << total - next
                   << " more)";
      return out;
    }
    out.log.records.emplace_back(payload);
    offset = next;
    out.log.valid_bytes = offset;
  }
  return out;
}

Result<ReadLogResult> ParseLog(std::string_view data) {
  ParsedPrefix parsed = ParseLogPrefix(data);
  if (!parsed.damage.ok()) return parsed.damage;
  return std::move(parsed.log);
}

Result<ReadLogResult> ReadLogFile(Env* env, const std::string& path) {
  if (!env->FileExists(path)) return ReadLogResult{};
  DMX_ASSIGN_OR_RETURN(std::string data, env->ReadFileToString(path));
  Result<ReadLogResult> parsed = ParseLog(data);
  if (!parsed.ok()) {
    return parsed.status().WithContext("reading log '" + path + "'");
  }
  return parsed;
}

}  // namespace dmx::store
