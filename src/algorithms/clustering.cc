#include "algorithms/clustering.h"

#include <algorithm>
#include <cmath>

#include "common/exec_guard.h"
#include "common/random.h"
#include "common/string_util.h"

namespace dmx {

namespace {

const std::string kServiceName = "Clustering";

constexpr double kMinVariance = 1e-6;
constexpr size_t kMaxFullBernoulli = 512;

double LogGaussian(double x, double mean, double variance) {
  variance = std::max(variance, kMinVariance);
  double d = x - mean;
  return -0.5 * (std::log(2 * M_PI * variance) + d * d / variance);
}

// Log-likelihood of `c` under one cluster's component distributions.
double ClusterLogLikelihood(const ClusteringModel::ClusterStats& cluster,
                            const AttributeSet& attrs, const DataCase& c,
                            bool use_outputs, double alpha) {
  double ll = 0;
  for (size_t a = 0; a < attrs.attributes.size(); ++a) {
    const Attribute& attr = attrs.attributes[a];
    if (!attr.is_input && !(use_outputs && attr.is_output)) continue;
    double v = c.values[a];
    if (IsMissing(v)) continue;
    if (attr.is_continuous) {
      auto it = cluster.cont_stats.find(static_cast<int>(a));
      if (it != cluster.cont_stats.end() && it->second.weight > 0) {
        ll += LogGaussian(v, it->second.mean, it->second.variance());
      } else {
        ll += LogGaussian(v, 0, 1e6);
      }
    } else {
      double card = std::max(1, attr.cardinality());
      int state = static_cast<int>(v);
      double count = 0;
      auto it = cluster.cat_counts.find(static_cast<int>(a));
      if (it != cluster.cat_counts.end() &&
          static_cast<size_t>(state) < it->second.size()) {
        count = it->second[state];
      }
      ll += std::log((count + alpha) / (cluster.weight + alpha * card));
    }
  }
  for (size_t g = 0; g < attrs.groups.size(); ++g) {
    const NestedGroup& group = attrs.groups[g];
    if (!group.is_input && !(use_outputs && group.is_output)) continue;
    auto it = cluster.group_counts.find(static_cast<int>(g));
    std::vector<char> present(group.keys.size(), 0);
    for (const CaseItem& item : c.groups[g]) {
      if (item.key >= 0 && static_cast<size_t>(item.key) < present.size()) {
        present[item.key] = 1;
      }
    }
    bool full = group.keys.size() <= kMaxFullBernoulli;
    for (size_t item = 0; item < group.keys.size(); ++item) {
      double count = 0;
      if (it != cluster.group_counts.end() && item < it->second.size()) {
        count = it->second[item];
      }
      double p = (count + alpha) / (cluster.weight + 2 * alpha);
      if (present[item]) {
        ll += std::log(p);
      } else if (full) {
        ll += std::log1p(-std::min(p, 1 - 1e-12));
      }
    }
  }
  return ll;
}

}  // namespace

ClusteringModel::ClusteringModel(std::vector<ClusterStats> clusters,
                                 double case_count, double alpha)
    : clusters_(std::move(clusters)), case_count_(case_count), alpha_(alpha) {
  cluster_names_.reserve(clusters_.size());
  for (size_t i = 0; i < clusters_.size(); ++i) {
    cluster_names_.push_back(Value::Text("Cluster " + std::to_string(i + 1)));
  }
}

const std::string& ClusteringModel::service_name() const {
  return kServiceName;
}

std::vector<double> ClusteringModel::Responsibilities(const AttributeSet& attrs,
                                                      const DataCase& c,
                                                      bool use_outputs) const {
  const size_t k = clusters_.size();
  std::vector<double> log_post(k);
  double total_weight = 0;
  for (const ClusterStats& cluster : clusters_) total_weight += cluster.weight;
  for (size_t i = 0; i < k; ++i) {
    double prior = (clusters_[i].weight + alpha_) /
                   (total_weight + alpha_ * static_cast<double>(k));
    log_post[i] = std::log(prior) +
                  ClusterLogLikelihood(clusters_[i], attrs, c, use_outputs,
                                       alpha_);
  }
  double max_log = *std::max_element(log_post.begin(), log_post.end());
  double norm = 0;
  for (double& lp : log_post) {
    lp = std::exp(lp - max_log);
    norm += lp;
  }
  if (norm > 0) {
    for (double& lp : log_post) lp /= norm;
  }
  return log_post;
}

Result<CasePrediction> ClusteringModel::Predict(
    const AttributeSet& attrs, const DataCase& input,
    const PredictOptions& options) const {
  // dmx-hot-begin(clu-predict)
  DMX_RETURN_IF_ERROR(GuardCheck());
  CasePrediction out;
  std::vector<double> resp = Responsibilities(attrs, input,
                                              /*use_outputs=*/false);

  // Cluster membership pseudo-target.
  AttributePrediction membership;
  membership.histogram.reserve(clusters_.size());
  for (size_t i = 0; i < clusters_.size(); ++i) {
    ScoredValue sv;
    sv.value = cluster_names_[i];
    sv.state = static_cast<int>(i);
    sv.probability = resp[i];
    sv.support = clusters_[i].weight;
    membership.histogram.push_back(std::move(sv));
  }
  std::stable_sort(membership.histogram.begin(), membership.histogram.end(),
                   [](const ScoredValue& a, const ScoredValue& b) {
                     return a.probability > b.probability;
                   });
  if (!membership.histogram.empty()) {
    membership.predicted = membership.histogram[0].value;
    membership.probability = membership.histogram[0].probability;
    membership.support = membership.histogram[0].support;
    membership.cluster_id = static_cast<int>(
        std::max_element(resp.begin(), resp.end()) - resp.begin());
  }
  out.targets.emplace(kClusterTarget, std::move(membership));

  // Mixture-posterior predictions for PREDICT columns. The per-state scratch
  // is shared across targets; assign() resizes without shrinking.
  std::vector<double> probs;
  std::vector<double> supports;
  for (int target : attrs.OutputAttributeIndices()) {
    const Attribute& attr = attrs.attributes[static_cast<size_t>(target)];
    AttributePrediction prediction;
    if (attr.is_continuous) {
      double mean = 0;
      double second_moment = 0;
      double support = 0;
      for (size_t i = 0; i < clusters_.size(); ++i) {
        auto it = clusters_[i].cont_stats.find(target);
        if (it == clusters_[i].cont_stats.end()) continue;
        mean += resp[i] * it->second.mean;
        second_moment += resp[i] * (it->second.variance() +
                                    it->second.mean * it->second.mean);
        support += resp[i] * it->second.weight;
      }
      prediction.predicted = Value::Double(mean);
      prediction.probability = 1.0;
      prediction.variance = std::max(0.0, second_moment - mean * mean);
      prediction.support = support;
      ScoredValue sv;
      sv.value = prediction.predicted;
      sv.probability = 1.0;
      sv.support = support;
      sv.variance = prediction.variance;
      prediction.histogram.push_back(std::move(sv));
    } else {
      int card = std::max(1, attr.cardinality());
      probs.assign(card, 0.0);
      supports.assign(card, 0.0);
      for (size_t i = 0; i < clusters_.size(); ++i) {
        auto it = clusters_[i].cat_counts.find(target);
        for (int state = 0; state < card; ++state) {
          double count = 0;
          if (it != clusters_[i].cat_counts.end() &&
              static_cast<size_t>(state) < it->second.size()) {
            count = it->second[state];
          }
          probs[state] += resp[i] * (count + alpha_) /
                          (clusters_[i].weight + alpha_ * card);
          supports[state] += resp[i] * count;
        }
      }
      for (int state = 0; state < card; ++state) {
        if (probs[state] <= 0 && !options.include_zero_probability) continue;
        ScoredValue sv;
        sv.value = attr.StateValue(state);
        sv.state = state;
        sv.probability = probs[state];
        sv.support = supports[state];
        prediction.histogram.push_back(std::move(sv));
      }
      std::stable_sort(prediction.histogram.begin(),
                       prediction.histogram.end(),
                       [](const ScoredValue& a, const ScoredValue& b) {
                         return a.probability > b.probability;
                       });
      if (options.max_histogram > 0 &&
          prediction.histogram.size() >
              static_cast<size_t>(options.max_histogram)) {
        prediction.histogram.resize(options.max_histogram);
      }
      if (!prediction.histogram.empty()) {
        prediction.predicted = prediction.histogram[0].value;
        prediction.probability = prediction.histogram[0].probability;
        prediction.support = prediction.histogram[0].support;
      }
    }
    out.targets.emplace(attr.name, std::move(prediction));
  }
  // dmx-hot-end(clu-predict)
  return out;
}

Result<ContentNodePtr> ClusteringModel::BuildContent(
    const AttributeSet& attrs) const {
  auto root = std::make_shared<ContentNode>();
  root->type = NodeType::kModel;
  root->unique_name = "CL";
  root->caption = "Clustering model (" + std::to_string(clusters_.size()) +
                  " clusters)";
  root->support = case_count_;
  root->probability = 1.0;
  for (size_t i = 0; i < clusters_.size(); ++i) {
    const ClusterStats& cluster = clusters_[i];
    auto node = std::make_shared<ContentNode>();
    node->type = NodeType::kCluster;
    node->unique_name = "CL/" + std::to_string(i + 1);
    node->caption = "Cluster " + std::to_string(i + 1);
    node->support = cluster.weight;
    node->probability = case_count_ > 0 ? cluster.weight / case_count_ : 0;
    for (const auto& [attr_index, counts] : cluster.cat_counts) {
      const Attribute& attr = attrs.attributes[attr_index];
      for (size_t state = 0; state < counts.size(); ++state) {
        if (counts[state] <= 0) continue;
        node->distribution.push_back(
            {attr.name, attr.StateValue(static_cast<int>(state)),
             counts[state],
             cluster.weight > 0 ? counts[state] / cluster.weight : 0, 0});
      }
    }
    for (const auto& [attr_index, moments] : cluster.cont_stats) {
      const Attribute& attr = attrs.attributes[attr_index];
      node->distribution.push_back({attr.name, Value::Double(moments.mean),
                                    moments.weight, 1.0, moments.variance()});
    }
    for (const auto& [group_index, counts] : cluster.group_counts) {
      const NestedGroup& group = attrs.groups[group_index];
      for (size_t item = 0; item < counts.size(); ++item) {
        if (counts[item] <= 0) continue;
        node->distribution.push_back(
            {group.name, group.keys[item], counts[item],
             cluster.weight > 0 ? counts[item] / cluster.weight : 0, 0});
      }
    }
    root->children.push_back(std::move(node));
  }
  return root;
}

ClusteringService::ClusteringService() {
  caps_.name = kServiceName;
  caps_.display_name = "Mixture-Model Clustering";
  caps_.description =
      "EM / K-means segmentation over scalar and nested-table attributes; "
      "predicts PREDICT columns through the mixture posterior";
  caps_.supports_prediction = true;
  caps_.is_segmentation = true;
  caps_.supports_continuous_targets = true;
  caps_.supports_discrete_targets = true;
  caps_.parameters = {
      {"CLUSTER_COUNT", "Number of clusters", Value::Long(4)},
      {"CLUSTER_METHOD", "'EM' or 'KMEANS'", Value::Text("EM")},
      {"MAX_ITERATIONS", "Maximum EM iterations", Value::Long(50)},
      {"STOPPING_TOLERANCE", "Mean log-likelihood improvement threshold",
       Value::Double(1e-4)},
      {"SEED", "Random seed for initialization", Value::Long(42)},
      {"ALPHA", "Smoothing pseudo-count", Value::Double(0.5)},
  };
}

Status ClusteringService::ValidateBinding(const AttributeSet& attrs) const {
  if (attrs.attributes.empty() && attrs.groups.empty()) {
    return InvalidArgument() << "Clustering model has no attributes";
  }
  return MiningService::ValidateBinding(attrs);
}

Result<std::unique_ptr<TrainedModel>> ClusteringService::Train(
    const AttributeSet& attrs, const std::vector<DataCase>& cases,
    const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(int64_t k, params.at("CLUSTER_COUNT").AsLong());
  DMX_ASSIGN_OR_RETURN(int64_t max_iterations,
                       params.at("MAX_ITERATIONS").AsLong());
  DMX_ASSIGN_OR_RETURN(double tolerance,
                       params.at("STOPPING_TOLERANCE").AsDouble());
  DMX_ASSIGN_OR_RETURN(int64_t seed, params.at("SEED").AsLong());
  DMX_ASSIGN_OR_RETURN(double alpha, params.at("ALPHA").AsDouble());
  const Value& method_value = params.at("CLUSTER_METHOD");
  if (!method_value.is_text()) {
    return InvalidArgument() << "CLUSTER_METHOD must be a string";
  }
  bool kmeans;
  if (EqualsCi(method_value.text_value(), "EM")) {
    kmeans = false;
  } else if (EqualsCi(method_value.text_value(), "KMEANS")) {
    kmeans = true;
  } else {
    return InvalidArgument() << "CLUSTER_METHOD must be 'EM' or 'KMEANS', got '"
                             << method_value.text_value() << "'";
  }
  if (k < 1) return InvalidArgument() << "CLUSTER_COUNT must be >= 1";
  if (cases.empty()) {
    return InvalidState() << "cannot train a clustering model on zero cases";
  }

  const size_t n = cases.size();
  const size_t num_clusters = static_cast<size_t>(
      std::min<int64_t>(k, static_cast<int64_t>(n)));

  // Responsibilities, initialized by random hard assignment.
  std::vector<std::vector<double>> resp(n,
                                        std::vector<double>(num_clusters, 0));
  Rng rng(static_cast<uint64_t>(seed));
  for (size_t i = 0; i < n; ++i) {
    resp[i][rng.Uniform(num_clusters)] = 1.0;
  }

  double total_weight = 0;
  for (const DataCase& c : cases) total_weight += c.weight;

  std::vector<ClusteringModel::ClusterStats> clusters;
  double previous_ll = -std::numeric_limits<double>::infinity();
  // Per-case log-likelihood scratch, reused across all EM iterations.
  std::vector<double> log_like(num_clusters);
  // dmx-hot-begin(clu-train-em)
  for (int64_t iteration = 0; iteration < max_iterations; ++iteration) {
    // --- M step: rebuild cluster statistics from responsibilities ---
    clusters.assign(num_clusters, ClusteringModel::ClusterStats());
    for (size_t i = 0; i < n; ++i) {
      if ((i & 255) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
      const DataCase& c = cases[i];
      for (size_t j = 0; j < num_clusters; ++j) {
        double r = resp[i][j] * c.weight;
        if (r <= 1e-12) continue;
        ClusteringModel::ClusterStats& cluster = clusters[j];
        cluster.weight += r;
        for (size_t a = 0; a < attrs.attributes.size(); ++a) {
          double v = c.values[a];
          if (IsMissing(v)) continue;
          const Attribute& attr = attrs.attributes[a];
          if (attr.is_continuous) {
            auto& moments = cluster.cont_stats[static_cast<int>(a)];
            moments.weight += r;
            double delta = v - moments.mean;
            moments.mean += delta * r / moments.weight;
            moments.m2 += r * delta * (v - moments.mean);
          } else {
            auto& counts = cluster.cat_counts[static_cast<int>(a)];
            int state = static_cast<int>(v);
            if (counts.size() <= static_cast<size_t>(state)) {
              counts.resize(state + 1, 0.0);
            }
            counts[state] += r;
          }
        }
        for (size_t g = 0; g < attrs.groups.size(); ++g) {
          auto& counts = cluster.group_counts[static_cast<int>(g)];
          for (const CaseItem& item : c.groups[g]) {
            if (item.key < 0) continue;
            if (counts.size() <= static_cast<size_t>(item.key)) {
              counts.resize(item.key + 1, 0.0);
            }
            counts[item.key] += r;
          }
        }
      }
    }

    // --- E step: recompute responsibilities ---
    ClusteringModel snapshot(clusters, total_weight, alpha);
    double ll = 0;
    for (size_t i = 0; i < n; ++i) {
      if ((i & 255) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
      double max_log = -std::numeric_limits<double>::infinity();
      for (size_t j = 0; j < num_clusters; ++j) {
        double prior =
            (clusters[j].weight + alpha) /
            (total_weight + alpha * static_cast<double>(num_clusters));
        log_like[j] = std::log(prior) +
                      ClusterLogLikelihood(clusters[j], attrs, cases[i],
                                           /*use_outputs=*/true, alpha);
        max_log = std::max(max_log, log_like[j]);
      }
      double norm = 0;
      for (double& lp : log_like) {
        lp = std::exp(lp - max_log);
        norm += lp;
      }
      ll += max_log + std::log(norm);
      if (kmeans) {
        size_t best = static_cast<size_t>(
            std::max_element(log_like.begin(), log_like.end()) -
            log_like.begin());
        std::fill(resp[i].begin(), resp[i].end(), 0.0);
        resp[i][best] = 1.0;
      } else {
        for (size_t j = 0; j < num_clusters; ++j) {
          resp[i][j] = norm > 0 ? log_like[j] / norm : 1.0 / num_clusters;
        }
      }
    }
    double mean_ll = ll / static_cast<double>(n);
    if (std::fabs(mean_ll - previous_ll) < tolerance) break;
    previous_ll = mean_ll;
  }
  // dmx-hot-end(clu-train-em)

  return std::unique_ptr<TrainedModel>(
      new ClusteringModel(std::move(clusters), total_weight, alpha));
}

}  // namespace dmx
