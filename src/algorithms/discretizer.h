// Discretization service (paper §3.2.2 DISCRETIZED): transforms a continuous
// column "into a number of ORDERED states". Three methods:
//
//  * EQUAL_RANGES      — uniform-width buckets over [min, max];
//  * EQUAL_FREQUENCIES — quantile buckets (equal case counts);
//  * CLUSTERS          — 1-D k-means; bucket bounds at centroid midpoints.
//
// The returned bounds vector b defines buckets (-inf, b0), [b0, b1), ...,
// [b_last, +inf) — `Attribute::BucketOf` applies them at bind time.

#ifndef DMX_ALGORITHMS_DISCRETIZER_H_
#define DMX_ALGORITHMS_DISCRETIZER_H_

#include <vector>

#include "common/status.h"
#include "model/column_spec.h"

namespace dmx {

/// Computes bucket boundaries for `values` (NaNs must be pre-filtered).
/// Degenerate inputs (constant column, fewer distinct values than buckets)
/// return fewer bounds; an empty input returns no bounds (single bucket).
Result<std::vector<double>> ComputeBucketBounds(std::vector<double> values,
                                                DiscretizationMethod method,
                                                int buckets);

}  // namespace dmx

#endif  // DMX_ALGORITHMS_DISCRETIZER_H_
