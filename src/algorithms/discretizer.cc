#include "algorithms/discretizer.h"

#include <algorithm>
#include <cmath>

namespace dmx {

namespace {

std::vector<double> EqualRanges(const std::vector<double>& sorted, int buckets) {
  double lo = sorted.front();
  double hi = sorted.back();
  std::vector<double> bounds;
  if (lo == hi) return bounds;
  for (int i = 1; i < buckets; ++i) {
    bounds.push_back(lo + (hi - lo) * i / buckets);
  }
  return bounds;
}

std::vector<double> EqualFrequencies(const std::vector<double>& sorted,
                                     int buckets) {
  std::vector<double> bounds;
  const size_t n = sorted.size();
  for (int i = 1; i < buckets; ++i) {
    size_t idx = n * static_cast<size_t>(i) / buckets;
    if (idx >= n) idx = n - 1;
    double bound = sorted[idx];
    if (!bounds.empty() && bound <= bounds.back()) continue;  // skip dup bounds
    bounds.push_back(bound);
  }
  return bounds;
}

std::vector<double> Clusters(const std::vector<double>& sorted, int buckets) {
  // 1-D k-means, deterministically initialized at the quantiles.
  const size_t n = sorted.size();
  int k = std::min<int>(buckets, static_cast<int>(n));
  std::vector<double> centroids;
  centroids.reserve(k);
  for (int i = 0; i < k; ++i) {
    centroids.push_back(sorted[(n - 1) * static_cast<size_t>(2 * i + 1) /
                               static_cast<size_t>(2 * k)]);
  }
  std::sort(centroids.begin(), centroids.end());
  centroids.erase(std::unique(centroids.begin(), centroids.end()),
                  centroids.end());
  for (int iter = 0; iter < 50; ++iter) {
    std::vector<double> sum(centroids.size(), 0);
    std::vector<size_t> count(centroids.size(), 0);
    // Points are sorted, so cluster membership is contiguous; sweep once.
    size_t c = 0;
    for (double v : sorted) {
      while (c + 1 < centroids.size() &&
             std::fabs(centroids[c + 1] - v) < std::fabs(centroids[c] - v)) {
        ++c;
      }
      // A later centroid can still be closer when v jumps back is impossible
      // (sorted), but an earlier one can be: rewind as needed.
      while (c > 0 &&
             std::fabs(centroids[c - 1] - v) < std::fabs(centroids[c] - v)) {
        --c;
      }
      sum[c] += v;
      count[c] += 1;
    }
    bool changed = false;
    for (size_t i = 0; i < centroids.size(); ++i) {
      if (count[i] == 0) continue;
      double next = sum[i] / static_cast<double>(count[i]);
      if (next != centroids[i]) {
        centroids[i] = next;
        changed = true;
      }
    }
    std::sort(centroids.begin(), centroids.end());
    if (!changed) break;
  }
  std::vector<double> bounds;
  for (size_t i = 1; i < centroids.size(); ++i) {
    double bound = (centroids[i - 1] + centroids[i]) / 2;
    if (!bounds.empty() && bound <= bounds.back()) continue;
    bounds.push_back(bound);
  }
  return bounds;
}

}  // namespace

Result<std::vector<double>> ComputeBucketBounds(std::vector<double> values,
                                                DiscretizationMethod method,
                                                int buckets) {
  if (buckets < 2) {
    return InvalidArgument() << "DISCRETIZED needs at least 2 buckets, got "
                             << buckets;
  }
  values.erase(std::remove_if(values.begin(), values.end(),
                              [](double v) { return std::isnan(v); }),
               values.end());
  if (values.empty()) return std::vector<double>{};
  std::sort(values.begin(), values.end());
  switch (method) {
    case DiscretizationMethod::kEqualRanges:
      return EqualRanges(values, buckets);
    case DiscretizationMethod::kEqualFrequencies:
      return EqualFrequencies(values, buckets);
    case DiscretizationMethod::kClusters:
      return Clusters(values, buckets);
  }
  return Internal() << "unreachable discretization method";
}

}  // namespace dmx
