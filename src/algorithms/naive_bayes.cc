#include "algorithms/naive_bayes.h"

#include <algorithm>
#include <cmath>

#include "common/exec_guard.h"

namespace dmx {

namespace {

const std::string kServiceName = "Naive_Bayes";

// Items per nested group above which the Bernoulli likelihood only scores
// present items (full absent-item products get too expensive and too sharp).
constexpr size_t kMaxFullBernoulli = 512;

constexpr double kMinVariance = 1e-6;

double LogGaussian(double x, double mean, double variance) {
  variance = std::max(variance, kMinVariance);
  double d = x - mean;
  return -0.5 * (std::log(2 * M_PI * variance) + d * d / variance);
}

// Grows a 2-D count table so [cls][state] is addressable.
void EnsureSize(std::vector<std::vector<double>>* table, size_t classes,
                size_t states) {
  if (table->size() < classes) table->resize(classes);
  for (auto& row : *table) {
    if (row.size() < states) row.resize(states, 0.0);
  }
}

}  // namespace

void GaussianMoments::Add(double value, double w) {
  weight += w;
  double delta = value - mean;
  mean += delta * w / weight;
  m2 += w * delta * (value - mean);
}

double GaussianMoments::variance() const {
  return weight > 0 ? m2 / weight : 0;
}

NaiveBayesModel::NaiveBayesModel(std::vector<int> target_attributes,
                                 double alpha)
    : alpha_(alpha) {
  for (int t : target_attributes) {
    TargetStats stats;
    stats.target = t;
    targets_.push_back(std::move(stats));
  }
}

const std::string& NaiveBayesModel::service_name() const {
  return kServiceName;
}

// Loops here are per-attribute, bounded by the model definition; the
// per-case guard checkpoint runs in the InsertCases driver right before
// each call (core/mining_model.cc).
// dmx-lint: allow(guarded-loops)
Status NaiveBayesModel::ConsumeCase(const AttributeSet& attrs,
                                    const DataCase& c) {
  case_count_ += c.weight;
  for (TargetStats& stats : targets_) {
    double label = c.values[stats.target];
    if (IsMissing(label)) continue;  // Unlabeled cases teach this target nothing.
    int cls = static_cast<int>(label);
    // Soft label: PROBABILITY OF <target> scales the case's contribution.
    double w = c.weight * c.confidence(static_cast<size_t>(stats.target));
    if (w <= 0) continue;
    if (stats.class_counts.size() <= static_cast<size_t>(cls)) {
      stats.class_counts.resize(cls + 1, 0.0);
    }
    stats.class_counts[cls] += w;

    for (size_t a = 0; a < attrs.attributes.size(); ++a) {
      const Attribute& attr = attrs.attributes[a];
      if (!attr.is_input || static_cast<int>(a) == stats.target) continue;
      double v = c.values[a];
      if (IsMissing(v)) continue;
      if (attr.is_continuous) {
        auto& moments = stats.cont_stats[static_cast<int>(a)];
        if (moments.size() <= static_cast<size_t>(cls)) {
          moments.resize(cls + 1);
        }
        moments[cls].Add(v, w);
      } else {
        int state = static_cast<int>(v);
        auto& table = stats.cat_counts[static_cast<int>(a)];
        EnsureSize(&table, cls + 1, state + 1);
        table[cls][state] += w;
      }
    }
    for (size_t g = 0; g < attrs.groups.size(); ++g) {
      if (!attrs.groups[g].is_input) continue;
      auto& table = stats.group_counts[static_cast<int>(g)];
      size_t max_item = 0;
      for (const CaseItem& item : c.groups[g]) {
        max_item = std::max(max_item, static_cast<size_t>(item.key));
      }
      EnsureSize(&table, cls + 1, c.groups[g].empty() ? 0 : max_item + 1);
      for (const CaseItem& item : c.groups[g]) {
        table[cls][item.key] += w;
      }
    }
  }
  return Status::OK();
}

Result<CasePrediction> NaiveBayesModel::Predict(
    const AttributeSet& attrs, const DataCase& input,
    const PredictOptions& options) const {
  // dmx-hot-begin(nb-predict)
  DMX_RETURN_IF_ERROR(GuardCheck());
  CasePrediction out;
  // Per-class scratch, reused across targets; assign() resizes without
  // shrinking.
  std::vector<double> log_post;
  std::vector<char> present;
  for (const TargetStats& stats : targets_) {
    const Attribute& target = attrs.attributes[stats.target];
    size_t num_classes =
        std::max<size_t>(stats.class_counts.size(),
                         static_cast<size_t>(target.cardinality()));
    AttributePrediction prediction;
    if (num_classes == 0) {
      out.targets.emplace(target.name, std::move(prediction));
      continue;
    }
    double total = 0;
    for (double n : stats.class_counts) total += n;

    log_post.assign(num_classes, 0.0);
    for (size_t cls = 0; cls < num_classes; ++cls) {
      double prior = cls < stats.class_counts.size() ? stats.class_counts[cls]
                                                     : 0.0;
      log_post[cls] =
          std::log((prior + alpha_) / (total + alpha_ * num_classes));
    }

    for (size_t a = 0; a < attrs.attributes.size(); ++a) {
      const Attribute& attr = attrs.attributes[a];
      if (!attr.is_input || static_cast<int>(a) == stats.target) continue;
      double v = input.values[a];
      if (IsMissing(v)) continue;
      if (attr.is_continuous) {
        auto it = stats.cont_stats.find(static_cast<int>(a));
        if (it == stats.cont_stats.end()) continue;
        for (size_t cls = 0; cls < num_classes; ++cls) {
          if (cls < it->second.size() && it->second[cls].weight > 0) {
            log_post[cls] +=
                LogGaussian(v, it->second[cls].mean, it->second[cls].variance());
          } else {
            log_post[cls] += LogGaussian(v, 0, 1e6);  // vague fallback
          }
        }
      } else {
        auto it = stats.cat_counts.find(static_cast<int>(a));
        if (it == stats.cat_counts.end()) continue;
        int state = static_cast<int>(v);
        double card = std::max(1, attr.cardinality());
        for (size_t cls = 0; cls < num_classes; ++cls) {
          double count = 0;
          double class_total = 0;
          if (cls < it->second.size()) {
            const auto& row = it->second[cls];
            if (static_cast<size_t>(state) < row.size()) count = row[state];
            for (double n : row) class_total += n;
          }
          log_post[cls] +=
              std::log((count + alpha_) / (class_total + alpha_ * card));
        }
      }
    }

    for (size_t g = 0; g < attrs.groups.size(); ++g) {
      const NestedGroup& group = attrs.groups[g];
      if (!group.is_input) continue;
      auto it = stats.group_counts.find(static_cast<int>(g));
      if (it == stats.group_counts.end()) continue;
      present.assign(group.keys.size(), 0);
      for (const CaseItem& item : input.groups[g]) {
        if (item.key >= 0 && static_cast<size_t>(item.key) < present.size()) {
          present[item.key] = 1;
        }
      }
      bool full = group.keys.size() <= kMaxFullBernoulli;
      for (size_t cls = 0; cls < num_classes; ++cls) {
        double class_n =
            cls < stats.class_counts.size() ? stats.class_counts[cls] : 0.0;
        for (size_t item = 0; item < group.keys.size(); ++item) {
          double count = 0;
          if (cls < it->second.size() &&
              item < it->second[cls].size()) {
            count = it->second[cls][item];
          }
          double p = (count + alpha_) / (class_n + 2 * alpha_);
          if (present[item]) {
            log_post[cls] += std::log(p);
          } else if (full) {
            log_post[cls] += std::log1p(-std::min(p, 1 - 1e-12));
          }
        }
      }
    }

    // Normalize in probability space.
    double max_log = *std::max_element(log_post.begin(), log_post.end());
    double norm = 0;
    for (double& lp : log_post) {
      lp = std::exp(lp - max_log);
      norm += lp;
    }
    prediction.histogram.reserve(num_classes);
    for (size_t cls = 0; cls < num_classes; ++cls) {
      double p = norm > 0 ? log_post[cls] / norm : 0;
      if (p <= 0 && !options.include_zero_probability) continue;
      ScoredValue sv;
      sv.value = target.StateValue(static_cast<int>(cls));
      sv.state = static_cast<int>(cls);
      sv.probability = p;
      sv.support =
          cls < stats.class_counts.size() ? stats.class_counts[cls] : 0;
      prediction.histogram.push_back(std::move(sv));
    }
    std::stable_sort(prediction.histogram.begin(), prediction.histogram.end(),
                     [](const ScoredValue& a, const ScoredValue& b) {
                       return a.probability > b.probability;
                     });
    if (options.max_histogram > 0 &&
        prediction.histogram.size() >
            static_cast<size_t>(options.max_histogram)) {
      prediction.histogram.resize(options.max_histogram);
    }
    if (!prediction.histogram.empty()) {
      prediction.predicted = prediction.histogram[0].value;
      prediction.probability = prediction.histogram[0].probability;
      prediction.support = prediction.histogram[0].support;
    }
    out.targets.emplace(target.name, std::move(prediction));
  }
  // dmx-hot-end(nb-predict)
  return out;
}

Result<ContentNodePtr> NaiveBayesModel::BuildContent(
    const AttributeSet& attrs) const {
  auto root = std::make_shared<ContentNode>();
  root->type = NodeType::kModel;
  root->unique_name = "NB";
  root->caption = "Naive Bayes model";
  root->support = case_count_;
  root->probability = 1.0;

  for (const TargetStats& stats : targets_) {
    const Attribute& target = attrs.attributes[stats.target];
    auto target_node = std::make_shared<ContentNode>();
    target_node->type = NodeType::kTree;
    target_node->unique_name = "NB/" + target.name;
    target_node->caption = "Target: " + target.name;
    double total = 0;
    for (double n : stats.class_counts) total += n;
    target_node->support = total;
    for (size_t cls = 0; cls < stats.class_counts.size(); ++cls) {
      target_node->distribution.push_back(
          {target.name, target.StateValue(static_cast<int>(cls)),
           stats.class_counts[cls],
           total > 0 ? stats.class_counts[cls] / total : 0, 0});
    }

    // One node per input attribute carrying P(input state | class).
    for (const auto& [attr_index, table] : stats.cat_counts) {
      const Attribute& attr = attrs.attributes[attr_index];
      auto node = std::make_shared<ContentNode>();
      node->type = NodeType::kNaiveBayesAttribute;
      node->unique_name = target_node->unique_name + "/" + attr.name;
      node->caption = attr.name;
      for (size_t cls = 0; cls < table.size(); ++cls) {
        double class_total = 0;
        for (double n : table[cls]) class_total += n;
        for (size_t state = 0; state < table[cls].size(); ++state) {
          if (table[cls][state] <= 0) continue;
          node->distribution.push_back(
              {target.StateName(static_cast<int>(cls)) + " | " + attr.name,
               attr.StateValue(static_cast<int>(state)), table[cls][state],
               class_total > 0 ? table[cls][state] / class_total : 0, 0});
        }
      }
      target_node->children.push_back(std::move(node));
    }
    for (const auto& [attr_index, moments] : stats.cont_stats) {
      const Attribute& attr = attrs.attributes[attr_index];
      auto node = std::make_shared<ContentNode>();
      node->type = NodeType::kNaiveBayesAttribute;
      node->unique_name = target_node->unique_name + "/" + attr.name;
      node->caption = attr.name;
      for (size_t cls = 0; cls < moments.size(); ++cls) {
        if (moments[cls].weight <= 0) continue;
        node->distribution.push_back(
            {target.StateName(static_cast<int>(cls)) + " | " + attr.name,
             Value::Double(moments[cls].mean), moments[cls].weight, 0,
             moments[cls].variance()});
      }
      target_node->children.push_back(std::move(node));
    }
    root->children.push_back(std::move(target_node));
  }
  return root;
}

NaiveBayesService::NaiveBayesService() {
  caps_.name = kServiceName;
  caps_.display_name = "Naive Bayes";
  caps_.description =
      "Incremental naive-Bayes classifier over discrete targets with "
      "categorical, Gaussian-continuous and nested-table inputs";
  caps_.supports_prediction = true;
  caps_.supports_incremental = true;
  caps_.supports_continuous_targets = false;
  caps_.supports_discrete_targets = true;
  caps_.parameters = {
      {"ALPHA", "Laplace smoothing pseudo-count", Value::Double(1.0)},
  };
}

Result<std::unique_ptr<TrainedModel>> NaiveBayesService::CreateEmpty(
    const AttributeSet& attrs, const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(double alpha, params.at("ALPHA").AsDouble());
  std::vector<int> targets = attrs.OutputAttributeIndices();
  if (targets.empty()) {
    return InvalidArgument() << "Naive_Bayes model has no PREDICT column";
  }
  return std::unique_ptr<TrainedModel>(
      new NaiveBayesModel(std::move(targets), alpha));
}

Result<std::unique_ptr<TrainedModel>> NaiveBayesService::Train(
    const AttributeSet& attrs, const std::vector<DataCase>& cases,
    const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<TrainedModel> model,
                       CreateEmpty(attrs, params));
  size_t n = 0;
  // dmx-hot-begin(nb-train-consume)
  for (const DataCase& c : cases) {
    if ((n++ & 255) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
    DMX_RETURN_IF_ERROR(model->ConsumeCase(attrs, c));
  }
  // dmx-hot-end(nb-train-consume)
  return model;
}

}  // namespace dmx
