// Association-rules mining service (Apriori): frequent itemsets and
// single-consequent rules over nested-table items, optionally enriched with
// case-level discrete attributes as items (so rules like
// "Gender = 'Male', Beer => Ham" can surface). This is the service class the
// paper motivates with "the set of products that the customer is likely to
// buy" — a prediction that "may actually be a collection of predictions".
//
// Prediction targets the PREDICT nested table: given the case's current
// items, applicable rules vote for absent items; the ranked recommendations
// come back as the target's histogram (rendered as a nested table by
// PredictHistogram / Predict(<table column>, n)).

#ifndef DMX_ALGORITHMS_ASSOCIATION_RULES_H_
#define DMX_ALGORITHMS_ASSOCIATION_RULES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/mining_service.h"

namespace dmx {

/// \brief Trained association model: the frequent itemsets and rules.
class AssociationModel : public TrainedModel {
 public:
  /// One atomic item: a nested-group key or a scalar attribute state.
  struct Item {
    int group = -1;      ///< >=0: nested group index; -1: scalar attribute.
    int attribute = -1;  ///< Scalar attribute index when group < 0.
    int state = -1;      ///< Key index (group item) or category state.

    bool operator==(const Item& other) const {
      return group == other.group && attribute == other.attribute &&
             state == other.state;
    }
    bool operator<(const Item& other) const {
      if (group != other.group) return group < other.group;
      if (attribute != other.attribute) return attribute < other.attribute;
      return state < other.state;
    }
  };

  struct Itemset {
    std::vector<int> items;  ///< Item ids, sorted ascending.
    double support = 0;      ///< Weighted case count containing the set.
  };

  struct Rule {
    std::vector<int> antecedent;  ///< Item ids, sorted.
    int consequent = -1;          ///< Item id.
    double support = 0;           ///< Of antecedent + consequent.
    double confidence = 0;
    double lift = 0;
  };

  AssociationModel(std::vector<Item> items, std::vector<Itemset> itemsets,
                   std::vector<Rule> rules, double case_count);

  const std::string& service_name() const override;
  double case_count() const override { return case_count_; }

  Result<CasePrediction> Predict(const AttributeSet& attrs,
                                 const DataCase& input,
                                 const PredictOptions& options) const override;

  Result<ContentNodePtr> BuildContent(const AttributeSet& attrs) const override;

  const std::vector<Item>& items() const { return items_; }
  const std::vector<Itemset>& itemsets() const { return itemsets_; }
  const std::vector<Rule>& rules() const { return rules_; }

  /// Display form of one interned item ("Beer" or "Gender = 'Male'").
  std::string ItemName(const AttributeSet& attrs, int item_id) const;

 private:
  std::vector<Item> items_;        ///< Interned item table; index == item id.
  std::vector<Itemset> itemsets_;  ///< All frequent itemsets (size >= 1).
  std::vector<Rule> rules_;
  double case_count_ = 0;
};

/// \brief Apriori plug-in. Parameters:
///   MINIMUM_SUPPORT       (DOUBLE, default 0.03) — fraction when < 1,
///                          absolute weighted count otherwise
///   MINIMUM_PROBABILITY   (DOUBLE, default 0.4) — rule confidence floor
///   MAXIMUM_ITEMSET_SIZE  (LONG, default 3)
///   INCLUDE_SCALAR_ITEMS  (LONG, default 1) — case attributes as items
class AssociationService : public MiningService {
 public:
  AssociationService();

  const ServiceCapabilities& capabilities() const override { return caps_; }

  Result<std::unique_ptr<TrainedModel>> Train(
      const AttributeSet& attrs, const std::vector<DataCase>& cases,
      const ParamMap& params) const override;

  Status ValidateBinding(const AttributeSet& attrs) const override;

 private:
  ServiceCapabilities caps_;
};

}  // namespace dmx

#endif  // DMX_ALGORITHMS_ASSOCIATION_RULES_H_
