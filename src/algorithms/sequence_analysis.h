// Sequence-analysis mining service: the remaining capability class the paper
// names among provider capabilities ("prediction, segmentation, sequence
// analysis, etc.", §3) and the consumer of the SEQUENCE_TIME content type
// (§3.2.2: "typically used to associate a sequence time with individual
// attribute values such as purchase time").
//
// The model is a first-order Markov chain over the items of the PREDICT
// nested table, ordered within each case by its SEQUENCE_TIME column:
// initial-state counts plus item-to-item transition counts. Prediction ranks
// the likely NEXT items given the case's most recent item. Fully
// incremental (counts only).

#ifndef DMX_ALGORITHMS_SEQUENCE_ANALYSIS_H_
#define DMX_ALGORITHMS_SEQUENCE_ANALYSIS_H_

#include <memory>
#include <string>
#include <vector>

#include "model/mining_service.h"

namespace dmx {

/// \brief Trained first-order Markov chains (one per sequence group).
class MarkovSequenceModel : public TrainedModel {
 public:
  struct Chain {
    int group = -1;  ///< AttributeSet group index.
    /// transitions[from][to]: weighted count of "to immediately after from".
    std::vector<std::vector<double>> transitions;
    /// initial[item]: weighted count of sequences starting with the item.
    std::vector<double> initial;
    double sequence_count = 0;  ///< Cases with at least one ordered item.
  };

  MarkovSequenceModel(std::vector<int> groups, double alpha);

  const std::string& service_name() const override;
  double case_count() const override { return case_count_; }

  Status ConsumeCase(const AttributeSet& attrs, const DataCase& c) override;

  Result<CasePrediction> Predict(const AttributeSet& attrs,
                                 const DataCase& input,
                                 const PredictOptions& options) const override;

  Result<ContentNodePtr> BuildContent(const AttributeSet& attrs) const override;

  const std::vector<Chain>& chains() const { return chains_; }
  std::vector<Chain>& mutable_chains() { return chains_; }
  double alpha() const { return alpha_; }
  void set_case_count(double n) { case_count_ = n; }

  /// Returns a case's item keys for `group`, ordered by the group's
  /// SEQUENCE_TIME value (items with a missing time sort last, stably).
  static std::vector<int> OrderedItems(const NestedGroup& group,
                                       const std::vector<CaseItem>& items);

 private:
  std::vector<Chain> chains_;
  double alpha_;
  double case_count_ = 0;
};

/// \brief Plug-in. Parameters: ALPHA (smoothing, default 0.5).
class SequenceAnalysisService : public MiningService {
 public:
  SequenceAnalysisService();

  const ServiceCapabilities& capabilities() const override { return caps_; }

  Result<std::unique_ptr<TrainedModel>> Train(
      const AttributeSet& attrs, const std::vector<DataCase>& cases,
      const ParamMap& params) const override;

  Result<std::unique_ptr<TrainedModel>> CreateEmpty(
      const AttributeSet& attrs, const ParamMap& params) const override;

  /// Requires at least one PREDICT nested table with a SEQUENCE_TIME column.
  Status ValidateBinding(const AttributeSet& attrs) const override;

 private:
  ServiceCapabilities caps_;
};

}  // namespace dmx

#endif  // DMX_ALGORITHMS_SEQUENCE_ANALYSIS_H_
