// Registration of the built-in mining services. A provider created through
// dmx::Provider gets all of these plus the aliases the paper's examples use.

#ifndef DMX_ALGORITHMS_BUILTIN_SERVICES_H_
#define DMX_ALGORITHMS_BUILTIN_SERVICES_H_

#include "model/service_registry.h"

namespace dmx {

/// Registers Decision_Trees, Naive_Bayes, Clustering, Association_Rules,
/// Linear_Regression and Sequence_Analysis, plus the paper's
/// "Decision_Trees_101" alias.
Status RegisterBuiltinServices(ServiceRegistry* registry);

}  // namespace dmx

#endif  // DMX_ALGORITHMS_BUILTIN_SERVICES_H_
