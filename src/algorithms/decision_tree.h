// Decision-tree mining service: the paper's running example algorithm
// ("Decision_Trees_101"). Builds one binary tree per PREDICT column —
// classification trees (entropy gain) for discrete/discretized targets and
// regression trees (variance reduction) for continuous ones.
//
// Split predicates cover the whole bound attribute space:
//   * categorical attribute  == state          (one-vs-rest)
//   * continuous attribute   <= threshold
//   * nested table           contains item     (existence tests over the
//                                               caseset's nested keys)
// Cases with a missing tested value follow the "else" branch.

#ifndef DMX_ALGORITHMS_DECISION_TREE_H_
#define DMX_ALGORITHMS_DECISION_TREE_H_

#include <memory>
#include <string>
#include <vector>

#include "model/mining_service.h"

namespace dmx {

/// \brief Trained forest: one tree per output attribute.
class DecisionTreeModel : public TrainedModel {
 public:
  /// A binary split predicate.
  struct Split {
    enum class Kind { kCategorical, kContinuous, kItem };
    Kind kind = Kind::kCategorical;
    int attribute = -1;   ///< For kCategorical / kContinuous.
    int state = -1;       ///< kCategorical: test value == state.
    double threshold = 0; ///< kContinuous: test value <= threshold.
    int group = -1;       ///< kItem: nested group index.
    int item = -1;        ///< kItem: key index within the group.

    /// True when the case goes down the "then" (left) branch. Missing
    /// values answer false.
    bool Test(const DataCase& c) const;

    /// Human-readable predicate ("Gender = 'Male'", "Age <= 32.5",
    /// "Product Purchases contains 'Beer'").
    std::string Describe(const AttributeSet& attrs) const;
  };

  struct Node {
    int then_child = -1;  ///< -1 on leaves.
    int else_child = -1;
    Split split;
    double support = 0;
    double score = 0;  ///< Split gain.
    /// Classification: per-target-state weighted counts.
    std::vector<double> class_counts;
    /// Regression: sufficient statistics of the target at this node.
    double mean = 0;
    double variance = 0;

    bool is_leaf() const { return then_child < 0; }
  };

  struct TargetTree {
    int target = -1;  ///< Output attribute index.
    bool regression = false;
    std::vector<Node> nodes;  ///< nodes[0] is the root.
  };

  explicit DecisionTreeModel(std::vector<TargetTree> trees, double case_count)
      : trees_(std::move(trees)), case_count_(case_count) {}

  const std::string& service_name() const override;
  double case_count() const override { return case_count_; }

  Result<CasePrediction> Predict(const AttributeSet& attrs,
                                 const DataCase& input,
                                 const PredictOptions& options) const override;

  Result<ContentNodePtr> BuildContent(const AttributeSet& attrs) const override;

  const std::vector<TargetTree>& trees() const { return trees_; }

 private:
  std::vector<TargetTree> trees_;
  double case_count_ = 0;
};

/// \brief Decision-tree plug-in. Parameters:
///   MAXIMUM_DEPTH        (LONG, default 8)
///   MINIMUM_SUPPORT      (DOUBLE, default 10) — minimum cases per leaf
///   SCORE_THRESHOLD      (DOUBLE, default 1e-6) — minimum split gain
///   MAXIMUM_THRESHOLDS   (LONG, default 32) — continuous candidate cap
class DecisionTreeService : public MiningService {
 public:
  DecisionTreeService();

  const ServiceCapabilities& capabilities() const override { return caps_; }

  Result<std::unique_ptr<TrainedModel>> Train(
      const AttributeSet& attrs, const std::vector<DataCase>& cases,
      const ParamMap& params) const override;

 private:
  ServiceCapabilities caps_;
};

}  // namespace dmx

#endif  // DMX_ALGORITHMS_DECISION_TREE_H_
