// Linear-regression mining service: the "multi-regression DMM" the paper
// names among model classes (§3.3). Ridge-regularized least squares over a
// design matrix assembled from continuous inputs, one-hot encoded categorical
// inputs and nested-table item indicators. Incremental: the normal-equation
// accumulators (X'X, X'y) are updatable case by case.

#ifndef DMX_ALGORITHMS_LINEAR_REGRESSION_H_
#define DMX_ALGORITHMS_LINEAR_REGRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "model/mining_service.h"

namespace dmx {

/// \brief Trained (or incrementally accumulating) regression state.
class LinearRegressionModel : public TrainedModel {
 public:
  /// One design-matrix column.
  struct Feature {
    enum class Kind { kIntercept, kContinuous, kCategory, kItem };
    Kind kind = Kind::kIntercept;
    int attribute = -1;  ///< kContinuous / kCategory.
    int state = -1;      ///< kCategory: indicator of this state.
    int group = -1;      ///< kItem.
    int item = -1;       ///< kItem.

    std::string Describe(const AttributeSet& attrs) const;
  };

  struct TargetRegression {
    int target = -1;
    // Normal-equation accumulators (updated per case; solved lazily).
    std::vector<double> xtx;  ///< Row-major f x f.
    std::vector<double> xty;
    double yty = 0;
    double y_sum = 0;
    double weight_sum = 0;
    // Solved state.
    mutable std::vector<double> coefficients;
    mutable double residual_variance = 0;
    mutable bool solved = false;
  };

  LinearRegressionModel(std::vector<Feature> features,
                        std::vector<int> targets, double ridge_lambda);

  const std::string& service_name() const override;
  double case_count() const override { return case_count_; }

  Status ConsumeCase(const AttributeSet& attrs, const DataCase& c) override;

  Result<CasePrediction> Predict(const AttributeSet& attrs,
                                 const DataCase& input,
                                 const PredictOptions& options) const override;

  Result<ContentNodePtr> BuildContent(const AttributeSet& attrs) const override;

  const std::vector<Feature>& features() const { return features_; }
  const std::vector<TargetRegression>& targets() const { return targets_; }
  std::vector<TargetRegression>& mutable_targets() { return targets_; }
  double ridge_lambda() const { return ridge_lambda_; }
  void set_case_count(double n) { case_count_ = n; }

  /// Assembles a case's feature vector (missing continuous inputs impute 0;
  /// indicator features answer 0/1).
  std::vector<double> FeatureVector(const DataCase& c) const;

 private:
  /// Solves the ridge normal equations for a target (cached until the next
  /// ConsumeCase).
  Status Solve(const TargetRegression& reg) const;

  std::vector<Feature> features_;
  std::vector<TargetRegression> targets_;
  double ridge_lambda_;
  double case_count_ = 0;
};

/// \brief Plug-in. Parameters:
///   RIDGE_LAMBDA      (DOUBLE, default 1e-3)
///   MAXIMUM_FEATURES  (LONG, default 512) — design-matrix width guard
class LinearRegressionService : public MiningService {
 public:
  LinearRegressionService();

  const ServiceCapabilities& capabilities() const override { return caps_; }

  Result<std::unique_ptr<TrainedModel>> Train(
      const AttributeSet& attrs, const std::vector<DataCase>& cases,
      const ParamMap& params) const override;

  Result<std::unique_ptr<TrainedModel>> CreateEmpty(
      const AttributeSet& attrs, const ParamMap& params) const override;

 private:
  ServiceCapabilities caps_;
};

}  // namespace dmx

#endif  // DMX_ALGORITHMS_LINEAR_REGRESSION_H_
