#include "algorithms/linear_regression.h"

#include <algorithm>
#include <cmath>

#include "common/exec_guard.h"
#include "common/string_util.h"

namespace dmx {

namespace {

const std::string kServiceName = "Linear_Regression";

// Solves A x = b (A symmetric positive definite after ridge) by Gaussian
// elimination with partial pivoting. A and b are modified in place.
Status SolveLinearSystem(std::vector<double>* a, std::vector<double>* b,
                         size_t n, std::vector<double>* x) {
  auto at = [&](size_t r, size_t c) -> double& { return (*a)[r * n + c]; };
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  for (size_t col = 0; col < n; ++col) {
    // Pivot.
    size_t pivot = col;
    for (size_t r = col + 1; r < n; ++r) {
      if (std::fabs(at(r, col)) > std::fabs(at(pivot, col))) pivot = r;
    }
    if (std::fabs(at(pivot, col)) < 1e-12) {
      return InvalidState() << "singular design matrix in regression solve";
    }
    if (pivot != col) {
      for (size_t c = 0; c < n; ++c) std::swap(at(pivot, c), at(col, c));
      std::swap((*b)[pivot], (*b)[col]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double factor = at(r, col) / at(col, col);
      if (factor == 0) continue;
      for (size_t c = col; c < n; ++c) at(r, c) -= factor * at(col, c);
      (*b)[r] -= factor * (*b)[col];
    }
  }
  x->assign(n, 0.0);
  for (size_t ri = n; ri-- > 0;) {
    double sum = (*b)[ri];
    for (size_t c = ri + 1; c < n; ++c) sum -= at(ri, c) * (*x)[c];
    (*x)[ri] = sum / at(ri, ri);
  }
  return Status::OK();
}

}  // namespace

std::string LinearRegressionModel::Feature::Describe(
    const AttributeSet& attrs) const {
  switch (kind) {
    case Kind::kIntercept:
      return "(intercept)";
    case Kind::kContinuous:
      return attrs.attributes[attribute].name;
    case Kind::kCategory:
      return attrs.attributes[attribute].name + " = '" +
             attrs.attributes[attribute].StateName(state) + "'";
    case Kind::kItem:
      return attrs.groups[group].name + " contains '" +
             (item >= 0 &&
                      item < static_cast<int>(attrs.groups[group].keys.size())
                  ? attrs.groups[group].keys[item].ToString()
                  : "?") +
             "'";
  }
  return "?";
}

LinearRegressionModel::LinearRegressionModel(std::vector<Feature> features,
                                             std::vector<int> targets,
                                             double ridge_lambda)
    : features_(std::move(features)), ridge_lambda_(ridge_lambda) {
  const size_t f = features_.size();
  for (int target : targets) {
    TargetRegression reg;
    reg.target = target;
    reg.xtx.assign(f * f, 0.0);
    reg.xty.assign(f, 0.0);
    targets_.push_back(std::move(reg));
  }
}

const std::string& LinearRegressionModel::service_name() const {
  return kServiceName;
}

std::vector<double> LinearRegressionModel::FeatureVector(
    const DataCase& c) const {
  std::vector<double> x(features_.size(), 0.0);
  for (size_t f = 0; f < features_.size(); ++f) {
    const Feature& feature = features_[f];
    switch (feature.kind) {
      case Feature::Kind::kIntercept:
        x[f] = 1.0;
        break;
      case Feature::Kind::kContinuous: {
        double v = c.values[feature.attribute];
        x[f] = IsMissing(v) ? 0.0 : v;
        break;
      }
      case Feature::Kind::kCategory: {
        double v = c.values[feature.attribute];
        x[f] = (!IsMissing(v) && static_cast<int>(v) == feature.state) ? 1.0
                                                                       : 0.0;
        break;
      }
      case Feature::Kind::kItem: {
        if (feature.group >= 0 &&
            static_cast<size_t>(feature.group) < c.groups.size()) {
          for (const CaseItem& entry : c.groups[feature.group]) {
            if (entry.key == feature.item) {
              x[f] = 1.0;
              break;
            }
          }
        }
        break;
      }
    }
  }
  return x;
}

// Loops here are over the (fixed-size) feature vector; the per-case guard
// checkpoint runs in the InsertCases driver right before each call
// (core/mining_model.cc).
// dmx-lint: allow(guarded-loops)
Status LinearRegressionModel::ConsumeCase(const AttributeSet& attrs,
                                          const DataCase& c) {
  (void)attrs;
  std::vector<double> x = FeatureVector(c);
  const size_t f = features_.size();
  case_count_ += c.weight;
  for (TargetRegression& reg : targets_) {
    double y = c.values[reg.target];
    if (IsMissing(y)) continue;
    double w = c.weight * c.confidence(static_cast<size_t>(reg.target));
    if (w <= 0) continue;
    for (size_t i = 0; i < f; ++i) {
      if (x[i] == 0) continue;
      for (size_t j = i; j < f; ++j) {
        reg.xtx[i * f + j] += w * x[i] * x[j];
      }
      reg.xty[i] += w * x[i] * y;
    }
    reg.yty += w * y * y;
    reg.y_sum += w * y;
    reg.weight_sum += w;
    reg.solved = false;
  }
  return Status::OK();
}

Status LinearRegressionModel::Solve(const TargetRegression& reg) const {
  if (reg.solved) return Status::OK();
  const size_t f = features_.size();
  if (reg.weight_sum <= 0) {
    return InvalidState() << "regression target has no labeled cases";
  }
  std::vector<double> a(f * f);
  for (size_t i = 0; i < f; ++i) {
    for (size_t j = 0; j < f; ++j) {
      a[i * f + j] = i <= j ? reg.xtx[i * f + j] : reg.xtx[j * f + i];
    }
    a[i * f + i] += ridge_lambda_;
  }
  std::vector<double> b = reg.xty;
  DMX_RETURN_IF_ERROR(SolveLinearSystem(&a, &b, f, &reg.coefficients));
  // Residual variance from the accumulators:
  //   SSE = y'y - 2 w'X'y + w'X'Xw.
  double wxty = 0;
  for (size_t i = 0; i < f; ++i) wxty += reg.coefficients[i] * reg.xty[i];
  double wxxw = 0;
  for (size_t i = 0; i < f; ++i) {
    for (size_t j = 0; j < f; ++j) {
      double x2 = i <= j ? reg.xtx[i * f + j] : reg.xtx[j * f + i];
      wxxw += reg.coefficients[i] * x2 * reg.coefficients[j];
    }
  }
  double sse = std::max(0.0, reg.yty - 2 * wxty + wxxw);
  reg.residual_variance = sse / reg.weight_sum;
  reg.solved = true;
  return Status::OK();
}

Result<CasePrediction> LinearRegressionModel::Predict(
    const AttributeSet& attrs, const DataCase& input,
    const PredictOptions& options) const {
  (void)options;
  // dmx-hot-begin(lr-predict)
  DMX_RETURN_IF_ERROR(GuardCheck());
  CasePrediction out;
  std::vector<double> x = FeatureVector(input);
  for (const TargetRegression& reg : targets_) {
    DMX_RETURN_IF_ERROR(Solve(reg));
    double y = 0;
    for (size_t i = 0; i < x.size(); ++i) y += reg.coefficients[i] * x[i];
    AttributePrediction prediction;
    prediction.histogram.reserve(1);
    prediction.predicted = Value::Double(y);
    prediction.probability = 1.0;
    prediction.variance = reg.residual_variance;
    prediction.support = reg.weight_sum;
    ScoredValue sv;
    sv.value = prediction.predicted;
    sv.probability = 1.0;
    sv.support = reg.weight_sum;
    sv.variance = reg.residual_variance;
    prediction.histogram.push_back(std::move(sv));
    out.targets.emplace(attrs.attributes[reg.target].name,
                        std::move(prediction));
  }
  // dmx-hot-end(lr-predict)
  return out;
}

Result<ContentNodePtr> LinearRegressionModel::BuildContent(
    const AttributeSet& attrs) const {
  auto root = std::make_shared<ContentNode>();
  root->type = NodeType::kModel;
  root->unique_name = "LR";
  root->caption = "Linear regression model";
  root->support = case_count_;
  root->probability = 1.0;
  for (const TargetRegression& reg : targets_) {
    auto node = std::make_shared<ContentNode>();
    node->type = NodeType::kRegression;
    node->unique_name = "LR/" + attrs.attributes[reg.target].name;
    node->caption = "Regression for " + attrs.attributes[reg.target].name;
    node->support = reg.weight_sum;
    Status solve_status = Solve(reg);
    if (solve_status.ok()) {
      node->score = reg.residual_variance;
      for (size_t f = 0; f < features_.size(); ++f) {
        node->distribution.push_back(
            {features_[f].Describe(attrs),
             Value::Double(reg.coefficients[f]), reg.weight_sum, 0, 0});
      }
    } else {
      node->description = solve_status.ToString();
    }
    root->children.push_back(std::move(node));
  }
  return root;
}

LinearRegressionService::LinearRegressionService() {
  caps_.name = kServiceName;
  caps_.display_name = "Linear Regression";
  caps_.description =
      "Ridge-regularized multiple linear regression with one-hot categorical "
      "and nested-item indicator features; incremental";
  caps_.supports_prediction = true;
  caps_.supports_incremental = true;
  caps_.supports_continuous_targets = true;
  caps_.supports_discrete_targets = false;
  caps_.parameters = {
      {"RIDGE_LAMBDA", "L2 regularization strength", Value::Double(1e-3)},
      {"MAXIMUM_FEATURES", "Design-matrix width guard", Value::Long(512)},
  };
}

Result<std::unique_ptr<TrainedModel>> LinearRegressionService::CreateEmpty(
    const AttributeSet& attrs, const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(double ridge, params.at("RIDGE_LAMBDA").AsDouble());
  DMX_ASSIGN_OR_RETURN(int64_t max_features,
                       params.at("MAXIMUM_FEATURES").AsLong());
  std::vector<int> targets = attrs.OutputAttributeIndices();
  if (targets.empty()) {
    return InvalidArgument() << "Linear_Regression model has no PREDICT column";
  }

  using Feature = LinearRegressionModel::Feature;
  std::vector<Feature> features;
  features.push_back({Feature::Kind::kIntercept, -1, -1, -1, -1});
  for (size_t a = 0; a < attrs.attributes.size(); ++a) {
    const Attribute& attr = attrs.attributes[a];
    if (!attr.is_input || attr.is_output) continue;
    if (attr.is_continuous) {
      features.push_back(
          {Feature::Kind::kContinuous, static_cast<int>(a), -1, -1, -1});
    } else {
      // One-hot minus one state (the first is the baseline).
      for (int state = 1; state < attr.cardinality(); ++state) {
        features.push_back(
            {Feature::Kind::kCategory, static_cast<int>(a), state, -1, -1});
      }
    }
  }
  for (size_t g = 0; g < attrs.groups.size(); ++g) {
    const NestedGroup& group = attrs.groups[g];
    if (!group.is_input) continue;
    for (size_t item = 0; item < group.keys.size(); ++item) {
      features.push_back({Feature::Kind::kItem, -1, -1, static_cast<int>(g),
                          static_cast<int>(item)});
    }
  }
  if (features.size() > static_cast<size_t>(max_features)) {
    return InvalidArgument()
           << "regression design matrix would have " << features.size()
           << " columns, above MAXIMUM_FEATURES = " << max_features
           << "; raise the parameter or reduce the attribute space";
  }
  return std::unique_ptr<TrainedModel>(new LinearRegressionModel(
      std::move(features), std::move(targets), ridge));
}

Result<std::unique_ptr<TrainedModel>> LinearRegressionService::Train(
    const AttributeSet& attrs, const std::vector<DataCase>& cases,
    const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<TrainedModel> model,
                       CreateEmpty(attrs, params));
  size_t n = 0;
  // dmx-hot-begin(lr-train-consume)
  for (const DataCase& c : cases) {
    if ((n++ & 255) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
    DMX_RETURN_IF_ERROR(model->ConsumeCase(attrs, c));
  }
  // dmx-hot-end(lr-train-consume)
  return model;
}

}  // namespace dmx
