// Clustering mining service: the "segmentation" model class of paper §3.3.
// Mixture-model clustering over the full bound attribute space — multinomial
// components for categorical attributes, Gaussian components for continuous
// ones, per-item Bernoulli components for nested tables — trained by EM
// (CLUSTER_METHOD = 'EM') or hard-assignment K-means ('KMEANS').
//
// Besides exposing segments (the Cluster()/ClusterProbability() UDFs and the
// kCluster content nodes), a trained clustering model predicts any PREDICT
// column through the mixture posterior: P(target | case) =
// sum_c P(c | inputs) * P(target | c).

#ifndef DMX_ALGORITHMS_CLUSTERING_H_
#define DMX_ALGORITHMS_CLUSTERING_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/mining_service.h"

namespace dmx {

/// Pseudo-target name under which cluster membership predictions are filed
/// in a CasePrediction (read by the Cluster* UDFs).
inline constexpr const char* kClusterTarget = "$CLUSTER";

/// \brief Trained mixture model.
class ClusteringModel : public TrainedModel {
 public:
  struct ClusterStats {
    double weight = 0;  ///< Soft case count.
    /// cat_counts[attribute][state] — soft counts.
    std::map<int, std::vector<double>> cat_counts;
    struct Moments {
      double weight = 0, mean = 0, m2 = 0;
      double variance() const { return weight > 0 ? m2 / weight : 0; }
    };
    std::map<int, Moments> cont_stats;
    /// group_counts[group][item] — soft counts of cases containing the item.
    std::map<int, std::vector<double>> group_counts;
  };

  ClusteringModel(std::vector<ClusterStats> clusters, double case_count,
                  double alpha);

  const std::string& service_name() const override;
  double case_count() const override { return case_count_; }

  Result<CasePrediction> Predict(const AttributeSet& attrs,
                                 const DataCase& input,
                                 const PredictOptions& options) const override;

  Result<ContentNodePtr> BuildContent(const AttributeSet& attrs) const override;

  /// Posterior P(cluster | case) over non-missing *input* attributes.
  std::vector<double> Responsibilities(const AttributeSet& attrs,
                                       const DataCase& c,
                                       bool use_outputs) const;

  const std::vector<ClusterStats>& clusters() const { return clusters_; }
  std::vector<ClusterStats>& mutable_clusters() { return clusters_; }
  double alpha() const { return alpha_; }

 private:
  std::vector<ClusterStats> clusters_;
  /// "Cluster <i+1>" labels, formatted once — Predict emits one per cluster
  /// for every scored case.
  std::vector<Value> cluster_names_;
  double case_count_ = 0;
  double alpha_;
};

/// \brief Clustering plug-in. Parameters:
///   CLUSTER_COUNT      (LONG, default 4)
///   CLUSTER_METHOD     (TEXT, 'EM' or 'KMEANS', default 'EM')
///   MAX_ITERATIONS     (LONG, default 50)
///   STOPPING_TOLERANCE (DOUBLE, default 1e-4) — mean log-likelihood delta
///   SEED               (LONG, default 42)
///   ALPHA              (DOUBLE, default 0.5) — smoothing pseudo-count
class ClusteringService : public MiningService {
 public:
  ClusteringService();

  const ServiceCapabilities& capabilities() const override { return caps_; }

  Result<std::unique_ptr<TrainedModel>> Train(
      const AttributeSet& attrs, const std::vector<DataCase>& cases,
      const ParamMap& params) const override;

  Status ValidateBinding(const AttributeSet& attrs) const override;

 private:
  ServiceCapabilities caps_;
};

}  // namespace dmx

#endif  // DMX_ALGORITHMS_CLUSTERING_H_
