#include "algorithms/sequence_analysis.h"

#include <algorithm>

#include "common/exec_guard.h"

namespace dmx {

namespace {

const std::string kServiceName = "Sequence_Analysis";

void EnsureSquare(std::vector<std::vector<double>>* table, size_t size) {
  if (table->size() < size) table->resize(size);
  for (auto& row : *table) {
    if (row.size() < size) row.resize(size, 0.0);
  }
}

}  // namespace

MarkovSequenceModel::MarkovSequenceModel(std::vector<int> groups, double alpha)
    : alpha_(alpha) {
  for (int group : groups) {
    Chain chain;
    chain.group = group;
    chains_.push_back(std::move(chain));
  }
}

const std::string& MarkovSequenceModel::service_name() const {
  return kServiceName;
}

std::vector<int> MarkovSequenceModel::OrderedItems(
    const NestedGroup& group, const std::vector<CaseItem>& items) {
  struct Entry {
    int key;
    double time;
    size_t position;
  };
  std::vector<Entry> entries;
  entries.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    double time = std::numeric_limits<double>::infinity();
    if (group.sequence_time_value >= 0 &&
        static_cast<size_t>(group.sequence_time_value) <
            items[i].values.size() &&
        !IsMissing(items[i].values[group.sequence_time_value])) {
      time = items[i].values[group.sequence_time_value];
    }
    entries.push_back({items[i].key, time, i});
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.time < b.time;
                   });
  std::vector<int> out;
  out.reserve(entries.size());
  for (const Entry& e : entries) {
    if (e.key >= 0) out.push_back(e.key);
  }
  return out;
}

// Loops here are over one case's own sequence items; the per-case guard
// checkpoint runs in the InsertCases driver right before each call
// (core/mining_model.cc).
// dmx-lint: allow(guarded-loops)
Status MarkovSequenceModel::ConsumeCase(const AttributeSet& attrs,
                                        const DataCase& c) {
  case_count_ += c.weight;
  for (Chain& chain : chains_) {
    const NestedGroup& group = attrs.groups[chain.group];
    std::vector<int> sequence = OrderedItems(group, c.groups[chain.group]);
    if (sequence.empty()) continue;
    size_t vocabulary = group.keys.size();
    EnsureSquare(&chain.transitions, vocabulary);
    if (chain.initial.size() < vocabulary) chain.initial.resize(vocabulary, 0);
    chain.sequence_count += c.weight;
    chain.initial[sequence[0]] += c.weight;
    for (size_t i = 1; i < sequence.size(); ++i) {
      chain.transitions[sequence[i - 1]][sequence[i]] += c.weight;
    }
  }
  return Status::OK();
}

Result<CasePrediction> MarkovSequenceModel::Predict(
    const AttributeSet& attrs, const DataCase& input,
    const PredictOptions& options) const {
  // dmx-hot-begin(sa-predict)
  DMX_RETURN_IF_ERROR(GuardCheck());
  CasePrediction out;
  for (const Chain& chain : chains_) {
    const NestedGroup& group = attrs.groups[chain.group];
    // OrderedItems sorts the case's items by sequence time into a fresh
    // buffer; a model has at most a handful of chains.
    std::vector<int> sequence =  // dmx-lint: allow(hot-loop-alloc)
        OrderedItems(group, input.groups[chain.group]);
    const size_t vocabulary = group.keys.size();
    AttributePrediction prediction;
    prediction.histogram.reserve(vocabulary);

    // Distribution over the next item: transition row of the last item, or
    // the initial distribution for empty histories.
    const std::vector<double>* counts = nullptr;
    double total = 0;
    if (!sequence.empty() &&
        static_cast<size_t>(sequence.back()) < chain.transitions.size()) {
      counts = &chain.transitions[sequence.back()];
    } else if (sequence.empty() && !chain.initial.empty()) {
      counts = &chain.initial;
    }
    if (counts != nullptr) {
      for (double n : *counts) total += n;
    }
    for (size_t item = 0; item < vocabulary; ++item) {
      double count =
          counts != nullptr && item < counts->size() ? (*counts)[item] : 0;
      double p = (count + alpha_) /
                 (total + alpha_ * static_cast<double>(vocabulary));
      if (count <= 0 && !options.include_zero_probability && total > 0) {
        continue;
      }
      ScoredValue sv;
      sv.value = group.keys[item];
      sv.state = static_cast<int>(item);
      sv.probability = p;
      sv.support = count;
      prediction.histogram.push_back(std::move(sv));
    }
    std::stable_sort(prediction.histogram.begin(), prediction.histogram.end(),
                     [](const ScoredValue& a, const ScoredValue& b) {
                       return a.probability > b.probability;
                     });
    if (options.max_histogram > 0 &&
        prediction.histogram.size() >
            static_cast<size_t>(options.max_histogram)) {
      prediction.histogram.resize(options.max_histogram);
    }
    if (!prediction.histogram.empty()) {
      prediction.predicted = prediction.histogram[0].value;
      prediction.probability = prediction.histogram[0].probability;
      prediction.support = prediction.histogram[0].support;
    }
    out.targets.emplace(group.name, std::move(prediction));
  }
  // dmx-hot-end(sa-predict)
  return out;
}

Result<ContentNodePtr> MarkovSequenceModel::BuildContent(
    const AttributeSet& attrs) const {
  auto root = std::make_shared<ContentNode>();
  root->type = NodeType::kModel;
  root->unique_name = "SEQ";
  root->caption = "Markov sequence model";
  root->support = case_count_;
  root->probability = 1.0;
  for (const Chain& chain : chains_) {
    const NestedGroup& group = attrs.groups[chain.group];
    auto chain_node = std::make_shared<ContentNode>();
    chain_node->type = NodeType::kTree;
    chain_node->unique_name = "SEQ/" + group.name;
    chain_node->caption = "Chain for " + group.name;
    chain_node->support = chain.sequence_count;
    // Initial-state distribution on the chain node itself.
    double initial_total = 0;
    for (double n : chain.initial) initial_total += n;
    for (size_t item = 0; item < chain.initial.size(); ++item) {
      if (chain.initial[item] <= 0) continue;
      chain_node->distribution.push_back(
          {"(start)", group.keys[item], chain.initial[item],
           initial_total > 0 ? chain.initial[item] / initial_total : 0, 0});
    }
    // One rule node per observed transition.
    int counter = 0;
    for (size_t from = 0; from < chain.transitions.size(); ++from) {
      double row_total = 0;
      for (double n : chain.transitions[from]) row_total += n;
      if (row_total <= 0) continue;
      for (size_t to = 0; to < chain.transitions[from].size(); ++to) {
        double count = chain.transitions[from][to];
        if (count <= 0) continue;
        auto node = std::make_shared<ContentNode>();
        node->type = NodeType::kRule;
        node->unique_name =
            chain_node->unique_name + "/R" + std::to_string(++counter);
        node->caption = group.keys[from].ToString() + " then " +
                        group.keys[to].ToString();
        node->rule = node->caption;
        node->support = count;
        node->probability = count / row_total;
        chain_node->children.push_back(std::move(node));
      }
    }
    root->children.push_back(std::move(chain_node));
  }
  return root;
}

SequenceAnalysisService::SequenceAnalysisService() {
  caps_.name = kServiceName;
  caps_.display_name = "Sequence Analysis";
  caps_.description =
      "First-order Markov chains over SEQUENCE_TIME-ordered nested items; "
      "predicts the next likely items; incremental";
  caps_.supports_prediction = true;
  caps_.supports_incremental = true;
  caps_.supports_discrete_targets = false;
  caps_.supports_continuous_targets = false;
  caps_.supports_table_prediction = true;
  caps_.supports_sequence_analysis = true;
  caps_.parameters = {
      {"ALPHA", "Transition smoothing pseudo-count", Value::Double(0.5)},
  };
}

Status SequenceAnalysisService::ValidateBinding(const AttributeSet& attrs) const {
  for (const NestedGroup& group : attrs.groups) {
    if (group.is_output && group.sequence_time_value >= 0) {
      return Status::OK();
    }
  }
  return InvalidArgument()
         << "Sequence_Analysis needs a PREDICT nested TABLE with a "
            "SEQUENCE_TIME column (e.g. [Purchase Time] DOUBLE SEQUENCE_TIME)";
}

Result<std::unique_ptr<TrainedModel>> SequenceAnalysisService::CreateEmpty(
    const AttributeSet& attrs, const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(double alpha, params.at("ALPHA").AsDouble());
  std::vector<int> groups;
  for (size_t g = 0; g < attrs.groups.size(); ++g) {
    if (attrs.groups[g].is_output && attrs.groups[g].sequence_time_value >= 0) {
      groups.push_back(static_cast<int>(g));
    }
  }
  if (groups.empty()) {
    return InvalidArgument() << "Sequence_Analysis model has no PREDICT "
                                "nested table with a SEQUENCE_TIME column";
  }
  return std::unique_ptr<TrainedModel>(
      new MarkovSequenceModel(std::move(groups), alpha));
}

Result<std::unique_ptr<TrainedModel>> SequenceAnalysisService::Train(
    const AttributeSet& attrs, const std::vector<DataCase>& cases,
    const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<TrainedModel> model,
                       CreateEmpty(attrs, params));
  size_t n = 0;
  // dmx-hot-begin(sa-train-consume)
  for (const DataCase& c : cases) {
    if ((n++ & 255) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
    DMX_RETURN_IF_ERROR(model->ConsumeCase(attrs, c));
  }
  // dmx-hot-end(sa-train-consume)
  return model;
}

}  // namespace dmx
