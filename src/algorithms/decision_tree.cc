#include "algorithms/decision_tree.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "common/exec_guard.h"
#include "common/string_util.h"

namespace dmx {

namespace {

const std::string kServiceName = "Decision_Trees";

bool CaseContains(const DataCase& c, int group, int item) {
  if (group < 0 || static_cast<size_t>(group) >= c.groups.size()) return false;
  for (const CaseItem& entry : c.groups[group]) {
    if (entry.key == item) return true;
  }
  return false;
}

double Entropy(const std::vector<double>& counts, double total) {
  if (total <= 0) return 0;
  double h = 0;
  for (double n : counts) {
    if (n <= 0) continue;
    double p = n / total;
    h -= p * std::log2(p);
  }
  return h;
}

// Builder state for one target tree.
class TreeBuilder {
 public:
  TreeBuilder(const AttributeSet& attrs, const std::vector<DataCase>& cases,
              int target, bool regression, int max_depth, double min_support,
              double score_threshold, int max_thresholds)
      : attrs_(attrs),
        cases_(cases),
        target_(target),
        regression_(regression),
        max_depth_(max_depth),
        min_support_(min_support),
        score_threshold_(score_threshold),
        max_thresholds_(max_thresholds) {}

  Result<DecisionTreeModel::TargetTree> Build() {
    DecisionTreeModel::TargetTree tree;
    tree.target = target_;
    tree.regression = regression_;
    std::vector<int> all;
    all.reserve(cases_.size());
    for (size_t i = 0; i < cases_.size(); ++i) {
      if (!IsMissing(cases_[i].values[target_])) {
        all.push_back(static_cast<int>(i));
      }
    }
    nodes_.clear();
    BuildNode(all, 0);
    // A tripped guard stops the recursion early; surface the trip instead of
    // returning a half-grown tree.
    DMX_RETURN_IF_ERROR(guard_status_);
    tree.nodes = std::move(nodes_);
    return tree;
  }

 private:
  double CaseWeight(int index) const {
    const DataCase& c = cases_[index];
    return c.weight * c.confidence(static_cast<size_t>(target_));
  }

  // Fills the leaf statistics of `node` from `members`.
  void FillStats(const std::vector<int>& members,
                 DecisionTreeModel::Node* node) const {
    double total = 0;
    if (regression_) {
      double mean = 0;
      double m2 = 0;
      for (int i : members) {
        double w = CaseWeight(i);
        double v = cases_[i].values[target_];
        total += w;
        double delta = v - mean;
        mean += delta * w / total;
        m2 += w * delta * (v - mean);
      }
      node->mean = mean;
      node->variance = total > 0 ? m2 / total : 0;
    } else {
      int card = attrs_.attributes[target_].cardinality();
      node->class_counts.assign(std::max(card, 1), 0.0);
      for (int i : members) {
        double w = CaseWeight(i);
        int cls = static_cast<int>(cases_[i].values[target_]);
        if (cls >= static_cast<int>(node->class_counts.size())) {
          node->class_counts.resize(cls + 1, 0.0);
        }
        node->class_counts[cls] += w;
        total += w;
      }
    }
    node->support = total;
  }

  // Impurity of a candidate partition; lower is better. Classification uses
  // weighted entropy, regression weighted variance.
  struct SideStats {
    double total = 0;
    std::vector<double> counts;  // classification
    double sum = 0, sum2 = 0;    // regression
  };

  double Impurity(const SideStats& side) const {
    if (regression_) {
      if (side.total <= 0) return 0;
      double mean = side.sum / side.total;
      return side.sum2 / side.total - mean * mean;
    }
    return Entropy(side.counts, side.total);
  }

  void AddTo(SideStats* side, int index) const {
    double w = CaseWeight(index);
    side->total += w;
    if (regression_) {
      double v = cases_[index].values[target_];
      side->sum += w * v;
      side->sum2 += w * v * v;
    } else {
      int cls = static_cast<int>(cases_[index].values[target_]);
      if (cls >= static_cast<int>(side->counts.size())) {
        side->counts.resize(cls + 1, 0.0);
      }
      side->counts[cls] += w;
    }
  }

  double Gain(const SideStats& parent, const SideStats& left,
              const SideStats& right) const {
    if (left.total < min_support_ || right.total < min_support_) return -1;
    double parent_impurity = Impurity(parent);
    double split_impurity = (left.total * Impurity(left) +
                             right.total * Impurity(right)) /
                            parent.total;
    return parent_impurity - split_impurity;
  }

  struct BestSplit {
    DecisionTreeModel::Split split;
    double gain = -1;
  };

  void ConsiderSplit(const std::vector<int>& members,
                     const SideStats& parent,
                     const DecisionTreeModel::Split& split, BestSplit* best,
                     const std::function<bool(const DataCase&)>& test) const {
    SideStats left;
    SideStats right;
    for (int i : members) {
      if (test(cases_[i])) {
        AddTo(&left, i);
      } else {
        AddTo(&right, i);
      }
    }
    double gain = Gain(parent, left, right);
    if (gain > best->gain) {
      best->gain = gain;
      best->split = split;
    }
  }

  BestSplit FindBestSplit(const std::vector<int>& members) const {
    SideStats parent;
    for (int i : members) AddTo(&parent, i);
    BestSplit best;

    // Categorical one-vs-rest splits.
    for (size_t a = 0; a < attrs_.attributes.size(); ++a) {
      const Attribute& attr = attrs_.attributes[a];
      if (!attr.is_input || static_cast<int>(a) == target_) continue;
      if (attr.is_continuous) {
        // Continuous: candidate thresholds at quantiles of distinct values.
        std::vector<double> values;
        values.reserve(members.size());
        for (int i : members) {
          double v = cases_[i].values[a];
          if (!IsMissing(v)) values.push_back(v);
        }
        if (values.size() < 2) continue;
        std::sort(values.begin(), values.end());
        values.erase(std::unique(values.begin(), values.end()), values.end());
        if (values.size() < 2) continue;
        size_t candidates =
            std::min<size_t>(values.size() - 1,
                             static_cast<size_t>(max_thresholds_));
        for (size_t t = 0; t < candidates; ++t) {
          size_t idx = (values.size() - 1) * (t + 1) / (candidates + 1);
          double threshold = (values[idx] + values[idx + 1]) / 2;
          DecisionTreeModel::Split split;
          split.kind = DecisionTreeModel::Split::Kind::kContinuous;
          split.attribute = static_cast<int>(a);
          split.threshold = threshold;
          ConsiderSplit(members, parent, split, &best,
                        [a, threshold](const DataCase& c) {
                          double v = c.values[a];
                          return !IsMissing(v) && v <= threshold;
                        });
        }
      } else {
        // One pass builds per-state stats; each state yields a candidate.
        std::vector<SideStats> per_state;
        for (int i : members) {
          double v = cases_[i].values[a];
          if (IsMissing(v)) continue;
          int state = static_cast<int>(v);
          if (state >= static_cast<int>(per_state.size())) {
            per_state.resize(state + 1);
          }
          AddTo(&per_state[state], i);
        }
        for (size_t state = 0; state < per_state.size(); ++state) {
          const SideStats& left = per_state[state];
          if (left.total <= 0) continue;
          SideStats right;
          right.total = parent.total - left.total;
          if (regression_) {
            right.sum = parent.sum - left.sum;
            right.sum2 = parent.sum2 - left.sum2;
          } else {
            right.counts = parent.counts;
            for (size_t cls = 0; cls < left.counts.size(); ++cls) {
              right.counts[cls] -= left.counts[cls];
            }
          }
          double gain = Gain(parent, left, right);
          if (gain > best.gain) {
            best.gain = gain;
            best.split.kind = DecisionTreeModel::Split::Kind::kCategorical;
            best.split.attribute = static_cast<int>(a);
            best.split.state = static_cast<int>(state);
          }
        }
      }
    }

    // Item existence splits over nested groups.
    for (size_t g = 0; g < attrs_.groups.size(); ++g) {
      if (!attrs_.groups[g].is_input) continue;
      std::vector<SideStats> per_item;
      for (int i : members) {
        for (const CaseItem& item : cases_[i].groups[g]) {
          if (item.key < 0) continue;
          if (item.key >= static_cast<int>(per_item.size())) {
            per_item.resize(item.key + 1);
          }
          AddTo(&per_item[item.key], i);
        }
      }
      for (size_t item = 0; item < per_item.size(); ++item) {
        const SideStats& left = per_item[item];
        if (left.total <= 0) continue;
        SideStats right;
        right.total = parent.total - left.total;
        if (regression_) {
          right.sum = parent.sum - left.sum;
          right.sum2 = parent.sum2 - left.sum2;
        } else {
          right.counts = parent.counts;
          for (size_t cls = 0; cls < left.counts.size(); ++cls) {
            right.counts[cls] -= left.counts[cls];
          }
        }
        double gain = Gain(parent, left, right);
        if (gain > best.gain) {
          best.gain = gain;
          best.split.kind = DecisionTreeModel::Split::Kind::kItem;
          best.split.attribute = -1;
          best.split.group = static_cast<int>(g);
          best.split.item = static_cast<int>(item);
        }
      }
    }
    return best;
  }

  // Appends a node for `members` and recursively splits it. Returns its
  // index in nodes_.
  int BuildNode(const std::vector<int>& members, int depth) {
    int index = static_cast<int>(nodes_.size());
    nodes_.emplace_back();
    FillStats(members, &nodes_[index]);

    // One guard checkpoint per node keeps the overhead proportional to tree
    // size, not case count; a trip prunes the rest of the recursion.
    // dmx-hot-begin(dt-build-partition)
    if (guard_status_.ok()) guard_status_ = GuardCheck();
    if (!guard_status_.ok()) return index;

    if (depth >= max_depth_ ||
        nodes_[index].support < 2 * min_support_) {
      return index;
    }
    BestSplit best = FindBestSplit(members);
    if (best.gain <= score_threshold_) return index;

    std::vector<int> then_members;
    std::vector<int> else_members;
    then_members.reserve(members.size());
    else_members.reserve(members.size());
    for (int i : members) {
      if (best.split.Test(cases_[i])) {
        then_members.push_back(i);
      } else {
        else_members.push_back(i);
      }
    }
    // dmx-hot-end(dt-build-partition)
    if (then_members.empty() || else_members.empty()) return index;

    nodes_[index].split = best.split;
    nodes_[index].score = best.gain;
    int then_child = BuildNode(then_members, depth + 1);
    int else_child = BuildNode(else_members, depth + 1);
    nodes_[index].then_child = then_child;
    nodes_[index].else_child = else_child;
    return index;
  }

  const AttributeSet& attrs_;
  const std::vector<DataCase>& cases_;
  int target_;
  bool regression_;
  int max_depth_;
  double min_support_;
  double score_threshold_;
  int max_thresholds_;
  std::vector<DecisionTreeModel::Node> nodes_;
  Status guard_status_ = Status::OK();
};

}  // namespace

bool DecisionTreeModel::Split::Test(const DataCase& c) const {
  switch (kind) {
    case Kind::kCategorical: {
      double v = c.values[attribute];
      return !IsMissing(v) && static_cast<int>(v) == state;
    }
    case Kind::kContinuous: {
      double v = c.values[attribute];
      return !IsMissing(v) && v <= threshold;
    }
    case Kind::kItem:
      return CaseContains(c, group, item);
  }
  return false;
}

std::string DecisionTreeModel::Split::Describe(const AttributeSet& attrs) const {
  switch (kind) {
    case Kind::kCategorical: {
      const Attribute& attr = attrs.attributes[attribute];
      return attr.name + " = '" + attr.StateName(state) + "'";
    }
    case Kind::kContinuous:
      return attrs.attributes[attribute].name + " <= " +
             FormatDouble(threshold);
    case Kind::kItem: {
      const NestedGroup& g = attrs.groups[group];
      std::string key = item >= 0 && item < static_cast<int>(g.keys.size())
                            ? g.keys[item].ToString()
                            : "?";
      return g.name + " contains '" + key + "'";
    }
  }
  return "?";
}

const std::string& DecisionTreeModel::service_name() const {
  return kServiceName;
}

Result<CasePrediction> DecisionTreeModel::Predict(
    const AttributeSet& attrs, const DataCase& input,
    const PredictOptions& options) const {
  CasePrediction out;
  // dmx-hot-begin(dt-predict)
  for (const TargetTree& tree : trees_) {
    DMX_RETURN_IF_ERROR(GuardCheck());
    const Attribute& target = attrs.attributes[tree.target];
    AttributePrediction prediction;
    if (tree.nodes.empty()) {
      out.targets.emplace(target.name, std::move(prediction));
      continue;
    }
    // Walk to a leaf.
    int node = 0;
    while (!tree.nodes[node].is_leaf()) {
      node = tree.nodes[node].split.Test(input)
                 ? tree.nodes[node].then_child
                 : tree.nodes[node].else_child;
    }
    const Node& leaf = tree.nodes[node];
    prediction.support = leaf.support;
    if (tree.regression) {
      prediction.predicted = Value::Double(leaf.mean);
      prediction.probability = 1.0;
      prediction.variance = leaf.variance;
      ScoredValue sv;
      sv.value = prediction.predicted;
      sv.probability = 1.0;
      sv.support = leaf.support;
      sv.variance = leaf.variance;
      prediction.histogram.push_back(std::move(sv));
    } else {
      prediction.histogram.reserve(leaf.class_counts.size());
      for (size_t cls = 0; cls < leaf.class_counts.size(); ++cls) {
        double p = leaf.support > 0 ? leaf.class_counts[cls] / leaf.support : 0;
        if (p <= 0 && !options.include_zero_probability) continue;
        ScoredValue sv;
        sv.value = target.StateValue(static_cast<int>(cls));
        sv.state = static_cast<int>(cls);
        sv.probability = p;
        sv.support = leaf.class_counts[cls];
        prediction.histogram.push_back(std::move(sv));
      }
      std::stable_sort(prediction.histogram.begin(), prediction.histogram.end(),
                       [](const ScoredValue& a, const ScoredValue& b) {
                         return a.probability > b.probability;
                       });
      if (options.max_histogram > 0 &&
          prediction.histogram.size() >
              static_cast<size_t>(options.max_histogram)) {
        prediction.histogram.resize(options.max_histogram);
      }
      if (!prediction.histogram.empty()) {
        prediction.predicted = prediction.histogram[0].value;
        prediction.probability = prediction.histogram[0].probability;
      }
    }
    out.targets.emplace(target.name, std::move(prediction));
  }
  // dmx-hot-end(dt-predict)
  return out;
}

namespace {

// Recursively renders tree nodes as content nodes.
ContentNodePtr RenderNode(const DecisionTreeModel::TargetTree& tree,
                          const AttributeSet& attrs, int index,
                          const std::string& prefix, const std::string& rule,
                          double parent_support) {
  const DecisionTreeModel::Node& node = tree.nodes[index];
  auto out = std::make_shared<ContentNode>();
  out->type = node.is_leaf() ? NodeType::kLeaf : NodeType::kInterior;
  out->unique_name = prefix + "/" + std::to_string(index);
  out->rule = rule;
  out->caption = rule.empty() ? "All" : rule;
  out->support = node.support;
  out->score = node.score;
  out->marginal_probability =
      parent_support > 0 ? node.support / parent_support : 1.0;
  const Attribute& target = attrs.attributes[tree.target];
  if (tree.regression) {
    out->distribution.push_back({target.name, Value::Double(node.mean),
                                 node.support, 1.0, node.variance});
  } else {
    for (size_t cls = 0; cls < node.class_counts.size(); ++cls) {
      if (node.class_counts[cls] <= 0) continue;
      out->distribution.push_back(
          {target.name, target.StateValue(static_cast<int>(cls)),
           node.class_counts[cls],
           node.support > 0 ? node.class_counts[cls] / node.support : 0, 0});
    }
  }
  if (!node.is_leaf()) {
    std::string condition = node.split.Describe(attrs);
    out->children.push_back(RenderNode(tree, attrs, node.then_child,
                                       out->unique_name, condition,
                                       node.support));
    out->children.push_back(RenderNode(tree, attrs, node.else_child,
                                       out->unique_name, "NOT " + condition,
                                       node.support));
  }
  return out;
}

}  // namespace

Result<ContentNodePtr> DecisionTreeModel::BuildContent(
    const AttributeSet& attrs) const {
  auto root = std::make_shared<ContentNode>();
  root->type = NodeType::kModel;
  root->unique_name = "DT";
  root->caption = "Decision tree model";
  root->support = case_count_;
  root->probability = 1.0;
  for (const TargetTree& tree : trees_) {
    const Attribute& target = attrs.attributes[tree.target];
    auto tree_node = std::make_shared<ContentNode>();
    tree_node->type = NodeType::kTree;
    tree_node->unique_name = "DT/" + target.name;
    tree_node->caption = "Tree for " + target.name;
    if (!tree.nodes.empty()) {
      tree_node->support = tree.nodes[0].support;
      tree_node->children.push_back(
          RenderNode(tree, attrs, 0, tree_node->unique_name, "",
                     tree.nodes[0].support));
    }
    root->children.push_back(std::move(tree_node));
  }
  return root;
}

DecisionTreeService::DecisionTreeService() {
  caps_.name = kServiceName;
  caps_.display_name = "Decision Trees";
  caps_.description =
      "Binary classification and regression trees over scalar and "
      "nested-table attributes";
  caps_.supports_prediction = true;
  caps_.supports_continuous_targets = true;
  caps_.supports_discrete_targets = true;
  caps_.parameters = {
      {"MAXIMUM_DEPTH", "Maximum tree depth", Value::Long(8)},
      {"MINIMUM_SUPPORT", "Minimum weighted cases per leaf",
       Value::Double(10.0)},
      {"SCORE_THRESHOLD", "Minimum impurity gain to accept a split",
       Value::Double(1e-6)},
      {"MAXIMUM_THRESHOLDS",
       "Maximum candidate thresholds per continuous attribute",
       Value::Long(32)},
  };
}

// Guarding is delegated to TreeBuilder::BuildNode, which checkpoints once
// per emitted node (overhead proportional to tree size) and prunes the
// remaining recursion when the guard trips.
// dmx-lint: allow(guarded-loops)
Result<std::unique_ptr<TrainedModel>> DecisionTreeService::Train(
    const AttributeSet& attrs, const std::vector<DataCase>& cases,
    const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(int64_t max_depth, params.at("MAXIMUM_DEPTH").AsLong());
  DMX_ASSIGN_OR_RETURN(double min_support,
                       params.at("MINIMUM_SUPPORT").AsDouble());
  DMX_ASSIGN_OR_RETURN(double score_threshold,
                       params.at("SCORE_THRESHOLD").AsDouble());
  DMX_ASSIGN_OR_RETURN(int64_t max_thresholds,
                       params.at("MAXIMUM_THRESHOLDS").AsLong());
  if (max_depth < 1 || min_support < 0 || max_thresholds < 1) {
    return InvalidArgument() << "invalid Decision_Trees parameters";
  }
  std::vector<int> targets = attrs.OutputAttributeIndices();
  if (targets.empty()) {
    return InvalidArgument() << "Decision_Trees model has no PREDICT column";
  }
  double total_weight = 0;
  for (const DataCase& c : cases) total_weight += c.weight;
  std::vector<DecisionTreeModel::TargetTree> trees;
  trees.reserve(targets.size());
  for (int target : targets) {
    bool regression = attrs.attributes[target].is_continuous;
    TreeBuilder builder(attrs, cases, target, regression,
                        static_cast<int>(max_depth), min_support,
                        score_threshold, static_cast<int>(max_thresholds));
    DMX_ASSIGN_OR_RETURN(DecisionTreeModel::TargetTree tree, builder.Build());
    trees.push_back(std::move(tree));
  }
  return std::unique_ptr<TrainedModel>(
      new DecisionTreeModel(std::move(trees), total_weight));
}

}  // namespace dmx
