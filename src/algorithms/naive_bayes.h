// Naive-Bayes mining service: discrete-target classifier with categorical,
// continuous (Gaussian) and nested-table (per-item Bernoulli) inputs.
//
// This is the repository's reference *incremental* service: its sufficient
// statistics are pure counts/moments, so it consumes cases one at a time
// (paper §3.1's case-at-a-time model) and supports repeated INSERT INTO
// refreshes without retraining — the "incremental model maintenance"
// capability of paper §3.
//
// Qualifier integration: SUPPORT OF weights a case, PROBABILITY OF the
// target scales its contribution (soft labels) — the paper's §3.2.1
// "chained prediction output as training input" scenario.

#ifndef DMX_ALGORITHMS_NAIVE_BAYES_H_
#define DMX_ALGORITHMS_NAIVE_BAYES_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "model/mining_service.h"

namespace dmx {

/// Welford-style weighted moment accumulator for Gaussian likelihoods.
struct GaussianMoments {
  double weight = 0;
  double mean = 0;
  double m2 = 0;

  void Add(double value, double w);
  double variance() const;
};

/// \brief Trained Naive-Bayes state: per-target conditional count tables.
class NaiveBayesModel : public TrainedModel {
 public:
  struct TargetStats {
    int target = -1;  ///< Attribute index in the AttributeSet.
    std::vector<double> class_counts;
    /// cat_counts[input attr][class][input state] — sized lazily because
    /// dictionaries grow during incremental training.
    std::map<int, std::vector<std::vector<double>>> cat_counts;
    std::map<int, std::vector<GaussianMoments>> cont_stats;
    /// group_counts[group][class][item]: cases of `class` containing item.
    std::map<int, std::vector<std::vector<double>>> group_counts;
  };

  NaiveBayesModel(std::vector<int> target_attributes, double alpha);

  const std::string& service_name() const override;
  double case_count() const override { return case_count_; }

  Status ConsumeCase(const AttributeSet& attrs, const DataCase& c) override;

  Result<CasePrediction> Predict(const AttributeSet& attrs,
                                 const DataCase& input,
                                 const PredictOptions& options) const override;

  Result<ContentNodePtr> BuildContent(const AttributeSet& attrs) const override;

  // Accessors for PMML serialization.
  const std::vector<TargetStats>& targets() const { return targets_; }
  std::vector<TargetStats>& mutable_targets() { return targets_; }
  double alpha() const { return alpha_; }
  void set_case_count(double n) { case_count_ = n; }

 private:
  std::vector<TargetStats> targets_;
  double alpha_;  ///< Laplace smoothing pseudo-count.
  double case_count_ = 0;
};

/// \brief The plug-in wrapper registering Naive Bayes as a mining service.
class NaiveBayesService : public MiningService {
 public:
  NaiveBayesService();

  const ServiceCapabilities& capabilities() const override { return caps_; }

  Result<std::unique_ptr<TrainedModel>> Train(
      const AttributeSet& attrs, const std::vector<DataCase>& cases,
      const ParamMap& params) const override;

  Result<std::unique_ptr<TrainedModel>> CreateEmpty(
      const AttributeSet& attrs, const ParamMap& params) const override;

 private:
  ServiceCapabilities caps_;
};

}  // namespace dmx

#endif  // DMX_ALGORITHMS_NAIVE_BAYES_H_
