#include "algorithms/association_rules.h"

#include <algorithm>
#include <unordered_map>

#include "common/exec_guard.h"

namespace dmx {

namespace {

const std::string kServiceName = "Association_Rules";

// Hash for interning items during training.
struct ItemHash {
  size_t operator()(const AssociationModel::Item& item) const {
    return (static_cast<size_t>(item.group + 1) * 1315423911u) ^
           (static_cast<size_t>(item.attribute + 1) * 2654435761u) ^
           static_cast<size_t>(item.state);
  }
};

// True when `subset` (sorted) is contained in `transaction` (sorted).
bool IsSubset(const std::vector<int>& subset,
              const std::vector<int>& transaction) {
  size_t t = 0;
  for (int item : subset) {
    while (t < transaction.size() && transaction[t] < item) ++t;
    if (t == transaction.size() || transaction[t] != item) return false;
  }
  return true;
}

}  // namespace

AssociationModel::AssociationModel(std::vector<Item> items,
                                   std::vector<Itemset> itemsets,
                                   std::vector<Rule> rules, double case_count)
    : items_(std::move(items)),
      itemsets_(std::move(itemsets)),
      rules_(std::move(rules)),
      case_count_(case_count) {}

const std::string& AssociationModel::service_name() const {
  return kServiceName;
}

std::string AssociationModel::ItemName(const AttributeSet& attrs,
                                       int item_id) const {
  if (item_id < 0 || static_cast<size_t>(item_id) >= items_.size()) return "?";
  const Item& item = items_[item_id];
  if (item.group >= 0) {
    const NestedGroup& group = attrs.groups[item.group];
    if (item.state >= 0 && static_cast<size_t>(item.state) < group.keys.size()) {
      return group.keys[item.state].ToString();
    }
    return "?";
  }
  const Attribute& attr = attrs.attributes[item.attribute];
  return attr.name + " = '" + attr.StateName(item.state) + "'";
}

Result<CasePrediction> AssociationModel::Predict(
    const AttributeSet& attrs, const DataCase& input,
    const PredictOptions& options) const {
  // dmx-hot-begin(ar-predict)
  DMX_RETURN_IF_ERROR(GuardCheck());
  CasePrediction out;
  // Intern the case's items (only ones the model has seen matter).
  std::unordered_map<Item, int, ItemHash> lookup;
  for (size_t id = 0; id < items_.size(); ++id) lookup.emplace(items_[id], id);

  size_t case_items = attrs.attributes.size();
  for (const auto& group_items : input.groups) case_items += group_items.size();
  std::vector<int> transaction;
  transaction.reserve(case_items);
  for (size_t g = 0; g < attrs.groups.size(); ++g) {
    for (const CaseItem& entry : input.groups[g]) {
      Item item{static_cast<int>(g), -1, entry.key};
      auto it = lookup.find(item);
      if (it != lookup.end()) transaction.push_back(it->second);
    }
  }
  for (size_t a = 0; a < attrs.attributes.size(); ++a) {
    const Attribute& attr = attrs.attributes[a];
    if (!attr.is_input || attr.is_continuous) continue;
    double v = input.values[a];
    if (IsMissing(v)) continue;
    Item item{-1, static_cast<int>(a), static_cast<int>(v)};
    auto it = lookup.find(item);
    if (it != lookup.end()) transaction.push_back(it->second);
  }
  std::sort(transaction.begin(), transaction.end());
  transaction.erase(std::unique(transaction.begin(), transaction.end()),
                    transaction.end());

  // Rank candidate items for every output group. `best_rule` maps item id to
  // the best applicable rule and is reused across groups.
  std::unordered_map<int, const Rule*> best_rule;
  for (size_t g = 0; g < attrs.groups.size(); ++g) {
    const NestedGroup& group = attrs.groups[g];
    if (!group.is_output) continue;
    best_rule.clear();
    for (const Rule& rule : rules_) {
      const Item& target = items_[rule.consequent];
      if (target.group != static_cast<int>(g)) continue;
      if (std::binary_search(transaction.begin(), transaction.end(),
                             rule.consequent)) {
        continue;  // Already owned.
      }
      if (!IsSubset(rule.antecedent, transaction)) continue;
      auto [it, inserted] = best_rule.emplace(rule.consequent, &rule);
      if (!inserted && rule.confidence > it->second->confidence) {
        it->second = &rule;
      }
    }
    AttributePrediction prediction;
    prediction.histogram.reserve(best_rule.size());
    for (const auto& [item_id, rule] : best_rule) {
      ScoredValue sv;
      const Item& item = items_[item_id];
      sv.value = group.keys[item.state];
      sv.state = item.state;
      sv.probability = rule->confidence;
      sv.support = rule->support;
      prediction.histogram.push_back(std::move(sv));
    }
    // Popularity fallback so every case gets recommendations: frequent
    // singleton items of this group, scored by their marginal probability
    // scaled below any rule-based score.
    if (case_count_ > 0) {
      for (const Itemset& itemset : itemsets_) {
        if (itemset.items.size() != 1) continue;
        const Item& item = items_[itemset.items[0]];
        if (item.group != static_cast<int>(g)) continue;
        if (std::binary_search(transaction.begin(), transaction.end(),
                               itemset.items[0])) {
          continue;
        }
        if (best_rule.count(itemset.items[0]) > 0) continue;
        ScoredValue sv;
        sv.value = group.keys[item.state];
        sv.state = item.state;
        sv.probability = 0.01 * itemset.support / case_count_;
        sv.support = itemset.support;
        prediction.histogram.push_back(std::move(sv));
      }
    }
    std::stable_sort(prediction.histogram.begin(), prediction.histogram.end(),
                     [](const ScoredValue& a, const ScoredValue& b) {
                       return a.probability > b.probability;
                     });
    if (options.max_histogram > 0 &&
        prediction.histogram.size() >
            static_cast<size_t>(options.max_histogram)) {
      prediction.histogram.resize(options.max_histogram);
    }
    if (!prediction.histogram.empty()) {
      prediction.predicted = prediction.histogram[0].value;
      prediction.probability = prediction.histogram[0].probability;
      prediction.support = prediction.histogram[0].support;
    }
    out.targets.emplace(group.name, std::move(prediction));
  }
  // dmx-hot-end(ar-predict)
  return out;
}

Result<ContentNodePtr> AssociationModel::BuildContent(
    const AttributeSet& attrs) const {
  auto root = std::make_shared<ContentNode>();
  root->type = NodeType::kModel;
  root->unique_name = "AR";
  root->caption = "Association model (" + std::to_string(itemsets_.size()) +
                  " itemsets, " + std::to_string(rules_.size()) + " rules)";
  root->support = case_count_;
  root->probability = 1.0;

  int counter = 0;
  for (const Itemset& itemset : itemsets_) {
    auto node = std::make_shared<ContentNode>();
    node->type = NodeType::kItemset;
    node->unique_name = "AR/I" + std::to_string(++counter);
    std::string caption;
    for (size_t i = 0; i < itemset.items.size(); ++i) {
      if (i > 0) caption += ", ";
      caption += ItemName(attrs, itemset.items[i]);
    }
    node->caption = caption;
    node->support = itemset.support;
    node->probability = case_count_ > 0 ? itemset.support / case_count_ : 0;
    root->children.push_back(std::move(node));
  }
  counter = 0;
  for (const Rule& rule : rules_) {
    auto node = std::make_shared<ContentNode>();
    node->type = NodeType::kRule;
    node->unique_name = "AR/R" + std::to_string(++counter);
    std::string caption;
    for (size_t i = 0; i < rule.antecedent.size(); ++i) {
      if (i > 0) caption += ", ";
      caption += ItemName(attrs, rule.antecedent[i]);
    }
    caption += " => " + ItemName(attrs, rule.consequent);
    node->caption = caption;
    node->rule = caption;
    node->support = rule.support;
    node->probability = rule.confidence;
    node->score = rule.lift;
    root->children.push_back(std::move(node));
  }
  return root;
}

AssociationService::AssociationService() {
  caps_.name = kServiceName;
  caps_.display_name = "Association Rules";
  caps_.description =
      "Apriori frequent itemsets and rules over nested-table items; predicts "
      "ranked item recommendations for the PREDICT table column";
  caps_.supports_prediction = true;
  caps_.supports_association = true;
  caps_.supports_discrete_targets = false;
  caps_.supports_continuous_targets = false;
  caps_.supports_table_prediction = true;
  caps_.parameters = {
      {"MINIMUM_SUPPORT",
       "Itemset support floor (fraction when < 1, else absolute)",
       Value::Double(0.03)},
      {"MINIMUM_PROBABILITY", "Rule confidence floor", Value::Double(0.4)},
      {"MAXIMUM_ITEMSET_SIZE", "Largest itemset explored", Value::Long(3)},
      {"INCLUDE_SCALAR_ITEMS",
       "Treat discrete case attributes as items (0/1)", Value::Long(1)},
  };
}

Status AssociationService::ValidateBinding(const AttributeSet& attrs) const {
  bool has_group = false;
  for (const NestedGroup& group : attrs.groups) {
    if (group.is_input || group.is_output) has_group = true;
  }
  if (!has_group) {
    return InvalidArgument()
           << "Association_Rules needs at least one nested TABLE column";
  }
  return MiningService::ValidateBinding(attrs);
}

Result<std::unique_ptr<TrainedModel>> AssociationService::Train(
    const AttributeSet& attrs, const std::vector<DataCase>& cases,
    const ParamMap& params) const {
  DMX_ASSIGN_OR_RETURN(double min_support_param,
                       params.at("MINIMUM_SUPPORT").AsDouble());
  DMX_ASSIGN_OR_RETURN(double min_confidence,
                       params.at("MINIMUM_PROBABILITY").AsDouble());
  DMX_ASSIGN_OR_RETURN(int64_t max_size,
                       params.at("MAXIMUM_ITEMSET_SIZE").AsLong());
  DMX_ASSIGN_OR_RETURN(int64_t scalar_items,
                       params.at("INCLUDE_SCALAR_ITEMS").AsLong());
  if (max_size < 1) {
    return InvalidArgument() << "MAXIMUM_ITEMSET_SIZE must be >= 1";
  }

  double total_weight = 0;
  for (const DataCase& c : cases) total_weight += c.weight;
  double min_support = min_support_param < 1
                           ? min_support_param * total_weight
                           : min_support_param;
  min_support = std::max(min_support, 1e-9);

  // Intern items and build sorted transactions.
  std::unordered_map<AssociationModel::Item, int, ItemHash> intern;
  std::vector<AssociationModel::Item> items;
  auto intern_item = [&](const AssociationModel::Item& item) {
    auto [it, inserted] = intern.emplace(item, static_cast<int>(items.size()));
    if (inserted) items.push_back(item);
    return it->second;
  };

  std::vector<std::vector<int>> transactions;
  std::vector<double> weights;
  transactions.reserve(cases.size());
  for (const DataCase& c : cases) {
    std::vector<int> transaction;
    for (size_t g = 0; g < attrs.groups.size(); ++g) {
      const NestedGroup& group = attrs.groups[g];
      if (!group.is_input && !group.is_output) continue;
      for (const CaseItem& entry : c.groups[g]) {
        if (entry.key < 0) continue;
        transaction.push_back(
            intern_item({static_cast<int>(g), -1, entry.key}));
      }
    }
    if (scalar_items != 0) {
      for (size_t a = 0; a < attrs.attributes.size(); ++a) {
        const Attribute& attr = attrs.attributes[a];
        if (!attr.is_input || attr.is_continuous) continue;
        double v = c.values[a];
        if (IsMissing(v)) continue;
        transaction.push_back(
            intern_item({-1, static_cast<int>(a), static_cast<int>(v)}));
      }
    }
    std::sort(transaction.begin(), transaction.end());
    transaction.erase(std::unique(transaction.begin(), transaction.end()),
                      transaction.end());
    transactions.push_back(std::move(transaction));
    weights.push_back(c.weight);
  }

  // --- Apriori level-wise search ---
  std::vector<AssociationModel::Itemset> frequent;
  std::unordered_map<size_t, double> support_index;  // hash of items -> supp
  auto set_hash = [](const std::vector<int>& s) {
    size_t h = 14695981039346656037ULL;
    for (int i : s) {
      h ^= static_cast<size_t>(i);
      h *= 1099511628211ULL;
    }
    return h;
  };

  // Level 1.
  std::vector<double> single_support(items.size(), 0.0);
  for (size_t t = 0; t < transactions.size(); ++t) {
    for (int item : transactions[t]) single_support[item] += weights[t];
  }
  std::vector<std::vector<int>> level;
  for (size_t id = 0; id < items.size(); ++id) {
    if (single_support[id] >= min_support) {
      std::vector<int> set{static_cast<int>(id)};
      support_index[set_hash(set)] = single_support[id];
      frequent.push_back({set, single_support[id]});
      level.push_back(std::move(set));
    }
  }

  for (int64_t size = 2; size <= max_size && level.size() > 1; ++size) {
    // Candidate generation: join sets sharing the first size-2 items.
    std::vector<std::vector<int>> candidates;
    candidates.reserve(level.size());
    // Scratch for the prune step, reused across candidates.
    std::vector<int> subset;
    subset.reserve(static_cast<size_t>(size));
    // dmx-hot-begin(ar-candidate-join)
    for (size_t i = 0; i < level.size(); ++i) {
      // Candidate generation is quadratic in the level width — the classic
      // apriori blow-up — so it checkpoints per outer row.
      DMX_RETURN_IF_ERROR(GuardCheck());
      for (size_t j = i + 1; j < level.size(); ++j) {
        if (!std::equal(level[i].begin(), level[i].end() - 1,
                        level[j].begin())) {
          break;  // `level` is lexicographically sorted; prefixes diverged.
        }
        // Each accepted candidate is moved into the candidate list, so the
        // buffer cannot be reused across joins.
        std::vector<int> candidate;  // dmx-lint: allow(hot-loop-alloc)
        candidate.reserve(level[i].size() + 1);
        candidate.assign(level[i].begin(), level[i].end());
        candidate.push_back(level[j].back());
        // Prune: all (size-1)-subsets must be frequent.
        bool all_frequent = true;
        for (size_t drop = 0; drop + 1 < candidate.size() && all_frequent;
             ++drop) {
          subset.clear();
          for (size_t p = 0; p < candidate.size(); ++p) {
            if (p != drop) subset.push_back(candidate[p]);
          }
          if (support_index.count(set_hash(subset)) == 0) all_frequent = false;
        }
        if (all_frequent) candidates.push_back(std::move(candidate));
      }
    }
    // dmx-hot-end(ar-candidate-join)
    // Count candidates.
    std::vector<double> counts(candidates.size(), 0.0);
    // dmx-hot-begin(ar-support-count)
    for (size_t t = 0; t < transactions.size(); ++t) {
      if ((t & 255) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
      if (transactions[t].size() < static_cast<size_t>(size)) continue;
      for (size_t ci = 0; ci < candidates.size(); ++ci) {
        if (IsSubset(candidates[ci], transactions[t])) {
          counts[ci] += weights[t];
        }
      }
    }
    // dmx-hot-end(ar-support-count)
    std::vector<std::vector<int>> next_level;
    for (size_t ci = 0; ci < candidates.size(); ++ci) {
      if (counts[ci] >= min_support) {
        support_index[set_hash(candidates[ci])] = counts[ci];
        frequent.push_back({candidates[ci], counts[ci]});
        next_level.push_back(std::move(candidates[ci]));
      }
    }
    std::sort(next_level.begin(), next_level.end());
    level = std::move(next_level);
  }

  // --- Rule generation: single-item consequents ---
  std::vector<AssociationModel::Rule> rules;
  for (const AssociationModel::Itemset& itemset : frequent) {
    if (itemset.items.size() < 2) continue;
    for (size_t drop = 0; drop < itemset.items.size(); ++drop) {
      std::vector<int> antecedent;
      for (size_t p = 0; p < itemset.items.size(); ++p) {
        if (p != drop) antecedent.push_back(itemset.items[p]);
      }
      auto it = support_index.find(set_hash(antecedent));
      if (it == support_index.end() || it->second <= 0) continue;
      double confidence = itemset.support / it->second;
      if (confidence < min_confidence) continue;
      AssociationModel::Rule rule;
      rule.antecedent = std::move(antecedent);
      rule.consequent = itemset.items[drop];
      rule.support = itemset.support;
      rule.confidence = confidence;
      double consequent_prob =
          single_support[rule.consequent] / std::max(total_weight, 1e-9);
      rule.lift = consequent_prob > 0 ? confidence / consequent_prob : 0;
      rules.push_back(std::move(rule));
    }
  }
  std::stable_sort(rules.begin(), rules.end(),
                   [](const AssociationModel::Rule& a,
                      const AssociationModel::Rule& b) {
                     return a.confidence > b.confidence;
                   });

  return std::unique_ptr<TrainedModel>(new AssociationModel(
      std::move(items), std::move(frequent), std::move(rules), total_weight));
}

}  // namespace dmx
