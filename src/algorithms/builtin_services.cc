#include "algorithms/builtin_services.h"

#include "algorithms/association_rules.h"
#include "algorithms/clustering.h"
#include "algorithms/decision_tree.h"
#include "algorithms/linear_regression.h"
#include "algorithms/naive_bayes.h"
#include "algorithms/sequence_analysis.h"

namespace dmx {

Status RegisterBuiltinServices(ServiceRegistry* registry) {
  DMX_RETURN_IF_ERROR(registry->Register(std::make_shared<DecisionTreeService>()));
  DMX_RETURN_IF_ERROR(registry->Register(std::make_shared<NaiveBayesService>()));
  DMX_RETURN_IF_ERROR(registry->Register(std::make_shared<ClusteringService>()));
  DMX_RETURN_IF_ERROR(registry->Register(std::make_shared<AssociationService>()));
  DMX_RETURN_IF_ERROR(
      registry->Register(std::make_shared<LinearRegressionService>()));
  DMX_RETURN_IF_ERROR(
      registry->Register(std::make_shared<SequenceAnalysisService>()));
  // The name the paper's CREATE MINING MODEL example uses.
  DMX_RETURN_IF_ERROR(
      registry->RegisterAlias("Decision_Trees_101", "Decision_Trees"));
  return Status::OK();
}

}  // namespace dmx
