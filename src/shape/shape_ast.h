// AST for the data-shaping language of paper §3.1 / §3.3:
//
//   SHAPE {<select>}
//   APPEND ({<select>} RELATE <parent col> TO <child col> [, ...])
//     AS <nested table name>
//   [APPEND ... AS ...]...
//
// The result is a hierarchical rowset: the master SELECT's columns plus one
// TABLE-typed column per APPEND holding the related child rows.

#ifndef DMX_SHAPE_SHAPE_AST_H_
#define DMX_SHAPE_SHAPE_AST_H_

#include <string>
#include <vector>

#include "relational/sql_ast.h"

namespace dmx::shape {

/// One RELATE pair: parent column name TO child column name.
struct RelatePair {
  std::string parent_column;
  std::string child_column;
};

/// One APPEND clause: a child query related to the master by key equality.
struct AppendClause {
  rel::SelectStatement child;
  std::vector<RelatePair> relations;
  std::string name;  ///< The nested TABLE column's name (AS ...).
};

struct ShapeStatement {
  rel::SelectStatement master;
  std::vector<AppendClause> appends;
};

}  // namespace dmx::shape

#endif  // DMX_SHAPE_SHAPE_AST_H_
