// Execution of SHAPE statements: builds hierarchical rowsets (casesets) from
// flat query results, either fully materialized or streamed case-at-a-time.
//
// The streaming reader is the paper's §3.1 consumption model: "data mining
// algorithms are designed so that they consume an entity instance at a time".
// Only one case is resident in the mining layer at any moment; the child rows
// are indexed (not copied) until a case is emitted.

#ifndef DMX_SHAPE_SHAPE_EXECUTOR_H_
#define DMX_SHAPE_SHAPE_EXECUTOR_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rowset.h"
#include "common/status.h"
#include "relational/database.h"
#include "shape/shape_ast.h"

namespace dmx::shape {

/// Executes the SHAPE statement, returning the fully materialized
/// hierarchical rowset (master columns + one TABLE column per APPEND).
Result<Rowset> ExecuteShape(const rel::Database& db, const ShapeStatement& stmt);

/// \brief Case-at-a-time reader over a SHAPE statement.
///
/// Child rowsets are executed once and indexed by relate key; each Next()
/// materializes exactly one hierarchical case.
class ShapedCaseReader : public RowsetReader {
 public:
  /// Runs the embedded queries and builds the key indexes.
  static Result<std::unique_ptr<ShapedCaseReader>> Create(
      const rel::Database& db, const ShapeStatement& stmt);

  const std::shared_ptr<const Schema>& schema() const override {
    return schema_;
  }

  Result<bool> Next(Row* row) override;

 private:
  struct ChildIndex {
    Rowset rowset;
    std::shared_ptr<const Schema> nested_schema;
    std::vector<size_t> child_key_columns;
    std::vector<size_t> parent_key_columns;
    // Key hash -> indices of child rows with that key (verified on probe).
    std::unordered_multimap<size_t, size_t> by_key;
  };

  ShapedCaseReader() = default;

  std::shared_ptr<const Schema> schema_;
  Rowset master_;
  std::vector<ChildIndex> children_;
  size_t pos_ = 0;
};

}  // namespace dmx::shape

#endif  // DMX_SHAPE_SHAPE_EXECUTOR_H_
