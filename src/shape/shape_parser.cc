#include "shape/shape_parser.h"

#include "relational/sql_parser.h"

namespace dmx::shape {

namespace {

// {SELECT ...} — braces are mandatory, as in the MDAC shaping language.
Result<rel::SelectStatement> ParseBracedSelect(TokenStream* tokens) {
  DMX_RETURN_IF_ERROR(tokens->ExpectPunct("{"));
  DMX_ASSIGN_OR_RETURN(rel::SelectStatement select,
                       rel::ParseSelectFrom(tokens));
  DMX_RETURN_IF_ERROR(tokens->ExpectPunct("}"));
  return select;
}

}  // namespace

Result<ShapeStatement> ParseShapeFrom(TokenStream* tokens) {
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("SHAPE"));
  ShapeStatement stmt;
  DMX_ASSIGN_OR_RETURN(stmt.master, ParseBracedSelect(tokens));
  while (tokens->MatchKeyword("APPEND")) {
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct("("));
    AppendClause append;
    DMX_ASSIGN_OR_RETURN(append.child, ParseBracedSelect(tokens));
    DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("RELATE"));
    while (true) {
      RelatePair pair;
      DMX_ASSIGN_OR_RETURN(pair.parent_column,
                           tokens->ExpectIdentifier("parent column"));
      DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("TO"));
      DMX_ASSIGN_OR_RETURN(pair.child_column,
                           tokens->ExpectIdentifier("child column"));
      append.relations.push_back(std::move(pair));
      if (!tokens->MatchPunct(",")) break;
    }
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
    DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("AS"));
    DMX_ASSIGN_OR_RETURN(append.name,
                         tokens->ExpectIdentifier("nested table name"));
    stmt.appends.push_back(std::move(append));
  }
  if (stmt.appends.empty()) {
    return tokens->ErrorHere("SHAPE requires at least one APPEND clause");
  }
  return stmt;
}

Result<ShapeStatement> ParseShape(const std::string& text) {
  DMX_ASSIGN_OR_RETURN(std::vector<Token> token_list, Tokenize(text));
  TokenStream tokens(std::move(token_list));
  DMX_ASSIGN_OR_RETURN(ShapeStatement stmt, ParseShapeFrom(&tokens));
  if (!tokens.AtEnd()) {
    return tokens.ErrorHere("unexpected trailing input after SHAPE");
  }
  return stmt;
}

}  // namespace dmx::shape
