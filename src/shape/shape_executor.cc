#include "shape/shape_executor.h"

#include <iterator>

#include "common/exec_guard.h"
#include "relational/sql_executor.h"

namespace dmx::shape {

namespace {

size_t HashKey(const Row& row, const std::vector<size_t>& columns) {
  size_t h = 0;
  for (size_t c : columns) h = h * 1315423911u + row[c].Hash();
  return h;
}

bool KeysEqual(const Row& parent, const std::vector<size_t>& parent_cols,
               const Row& child, const std::vector<size_t>& child_cols) {
  for (size_t i = 0; i < parent_cols.size(); ++i) {
    if (!parent[parent_cols[i]].Equals(child[child_cols[i]])) return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<ShapedCaseReader>> ShapedCaseReader::Create(
    const rel::Database& db, const ShapeStatement& stmt) {
  auto reader = std::unique_ptr<ShapedCaseReader>(new ShapedCaseReader());
  DMX_ASSIGN_OR_RETURN(reader->master_, rel::ExecuteSelect(db, stmt.master));
  // The master rowset and every child index are resident until the caseset
  // is consumed — that is the SHAPE statement's working set.
  DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(reader->master_.num_rows()));

  std::vector<ColumnDef> out_columns = reader->master_.schema()->columns();
  for (const AppendClause& append : stmt.appends) {
    ChildIndex index;
    DMX_ASSIGN_OR_RETURN(index.rowset, rel::ExecuteSelect(db, append.child));
    index.nested_schema = index.rowset.schema();
    std::vector<std::string> parent_names;
    std::vector<std::string> child_names;
    parent_names.reserve(append.relations.size());
    child_names.reserve(append.relations.size());
    for (const RelatePair& pair : append.relations) {
      parent_names.push_back(pair.parent_column);
      child_names.push_back(pair.child_column);
    }
    DMX_ASSIGN_OR_RETURN(
        index.parent_key_columns,
        reader->master_.schema()->ResolveColumns(parent_names));
    DMX_ASSIGN_OR_RETURN(index.child_key_columns,
                         index.rowset.schema()->ResolveColumns(child_names));
    DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(index.rowset.num_rows()));
    index.by_key.reserve(index.rowset.num_rows());
    // dmx-hot-begin(shape-index-build)
    for (size_t r = 0; r < index.rowset.num_rows(); ++r) {
      if ((r & 1023) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
      index.by_key.emplace(
          HashKey(index.rowset.rows()[r], index.child_key_columns), r);
    }
    // dmx-hot-end(shape-index-build)
    out_columns.emplace_back(append.name, index.nested_schema);
    reader->children_.push_back(std::move(index));
  }
  reader->schema_ = Schema::Make(std::move(out_columns));
  return reader;
}

Result<bool> ShapedCaseReader::Next(Row* row) {
  // dmx-hot-begin(shape-case-assembly)
  DMX_RETURN_IF_ERROR(GuardCheck());
  if (pos_ >= master_.num_rows()) return false;
  const Row& parent = master_.rows()[pos_++];
  // Reuse the caller's row storage: one reserve covers the parent values
  // plus one nested-table cell per APPEND.
  row->clear();
  row->reserve(parent.size() + children_.size());
  row->insert(row->end(), parent.begin(), parent.end());
  for (const ChildIndex& child : children_) {
    size_t h = HashKey(parent, child.parent_key_columns);
    auto [begin, end] = child.by_key.equal_range(h);
    // Ownership of the nested rows transfers to the NestedTable cell, so
    // the buffer cannot be reused across parents.
    std::vector<Row> nested_rows;  // dmx-lint: allow(hot-loop-alloc)
    nested_rows.reserve(
        static_cast<size_t>(std::distance(begin, end)));
    for (auto it = begin; it != end; ++it) {
      const Row& candidate = child.rowset.rows()[it->second];
      if (KeysEqual(parent, child.parent_key_columns, candidate,
                    child.child_key_columns)) {
        nested_rows.push_back(candidate);
      }
    }
    row->push_back(
        Value::Table(NestedTable::Make(child.nested_schema,
                                       std::move(nested_rows))));
  }
  // dmx-hot-end(shape-case-assembly)
  return true;
}

Result<Rowset> ExecuteShape(const rel::Database& db,
                            const ShapeStatement& stmt) {
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<ShapedCaseReader> reader,
                       ShapedCaseReader::Create(db, stmt));
  return reader->ReadAll();
}

}  // namespace dmx::shape
