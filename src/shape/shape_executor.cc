#include "shape/shape_executor.h"

#include "common/exec_guard.h"
#include "relational/sql_executor.h"

namespace dmx::shape {

namespace {

size_t HashKey(const Row& row, const std::vector<size_t>& columns) {
  size_t h = 0;
  for (size_t c : columns) h = h * 1315423911u + row[c].Hash();
  return h;
}

bool KeysEqual(const Row& parent, const std::vector<size_t>& parent_cols,
               const Row& child, const std::vector<size_t>& child_cols) {
  for (size_t i = 0; i < parent_cols.size(); ++i) {
    if (!parent[parent_cols[i]].Equals(child[child_cols[i]])) return false;
  }
  return true;
}

}  // namespace

Result<std::unique_ptr<ShapedCaseReader>> ShapedCaseReader::Create(
    const rel::Database& db, const ShapeStatement& stmt) {
  auto reader = std::unique_ptr<ShapedCaseReader>(new ShapedCaseReader());
  DMX_ASSIGN_OR_RETURN(reader->master_, rel::ExecuteSelect(db, stmt.master));
  // The master rowset and every child index are resident until the caseset
  // is consumed — that is the SHAPE statement's working set.
  DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(reader->master_.num_rows()));

  std::vector<ColumnDef> out_columns = reader->master_.schema()->columns();
  for (const AppendClause& append : stmt.appends) {
    ChildIndex index;
    DMX_ASSIGN_OR_RETURN(index.rowset, rel::ExecuteSelect(db, append.child));
    index.nested_schema = index.rowset.schema();
    for (const RelatePair& pair : append.relations) {
      DMX_ASSIGN_OR_RETURN(
          size_t parent_col,
          reader->master_.schema()->ResolveColumn(pair.parent_column));
      DMX_ASSIGN_OR_RETURN(size_t child_col,
                           index.rowset.schema()->ResolveColumn(
                               pair.child_column));
      index.parent_key_columns.push_back(parent_col);
      index.child_key_columns.push_back(child_col);
    }
    DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(index.rowset.num_rows()));
    index.by_key.reserve(index.rowset.num_rows());
    for (size_t r = 0; r < index.rowset.num_rows(); ++r) {
      if ((r & 1023) == 0) DMX_RETURN_IF_ERROR(GuardCheck());
      index.by_key.emplace(
          HashKey(index.rowset.rows()[r], index.child_key_columns), r);
    }
    out_columns.emplace_back(append.name, index.nested_schema);
    reader->children_.push_back(std::move(index));
  }
  reader->schema_ = Schema::Make(std::move(out_columns));
  return reader;
}

Result<bool> ShapedCaseReader::Next(Row* row) {
  DMX_RETURN_IF_ERROR(GuardCheck());
  if (pos_ >= master_.num_rows()) return false;
  const Row& parent = master_.rows()[pos_++];
  *row = parent;
  row->reserve(parent.size() + children_.size());
  for (const ChildIndex& child : children_) {
    std::vector<Row> nested_rows;
    size_t h = HashKey(parent, child.parent_key_columns);
    auto [begin, end] = child.by_key.equal_range(h);
    for (auto it = begin; it != end; ++it) {
      const Row& candidate = child.rowset.rows()[it->second];
      if (KeysEqual(parent, child.parent_key_columns, candidate,
                    child.child_key_columns)) {
        nested_rows.push_back(candidate);
      }
    }
    row->push_back(
        Value::Table(NestedTable::Make(child.nested_schema,
                                       std::move(nested_rows))));
  }
  return true;
}

Result<Rowset> ExecuteShape(const rel::Database& db,
                            const ShapeStatement& stmt) {
  DMX_ASSIGN_OR_RETURN(std::unique_ptr<ShapedCaseReader> reader,
                       ShapedCaseReader::Create(db, stmt));
  return reader->ReadAll();
}

}  // namespace dmx::shape
