// Parser for SHAPE statements (see shape_ast.h for the grammar). Embedded
// SELECT blocks are delegated to the SQL parser; the whole SHAPE grammar is
// itself embeddable (DMX INSERT INTO and PREDICTION JOIN source queries), so
// the TokenStream entry point is exposed.

#ifndef DMX_SHAPE_SHAPE_PARSER_H_
#define DMX_SHAPE_SHAPE_PARSER_H_

#include <string>

#include "common/status.h"
#include "common/tokenizer.h"
#include "shape/shape_ast.h"

namespace dmx::shape {

/// Parses a complete SHAPE statement from text.
Result<ShapeStatement> ParseShape(const std::string& text);

/// Parses a SHAPE statement at the current stream position (leading SHAPE
/// keyword still in the stream).
Result<ShapeStatement> ParseShapeFrom(TokenStream* tokens);

}  // namespace dmx::shape

#endif  // DMX_SHAPE_SHAPE_PARSER_H_
