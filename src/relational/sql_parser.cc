#include "relational/sql_parser.h"

namespace dmx::rel {

namespace {

// Keywords that terminate an expression or clause inside embedding grammars.
bool IsClauseBoundary(const Token& t) {
  static const char* kBoundaries[] = {
      "FROM",  "WHERE", "ORDER",  "GROUP",  "AS",     "ASC",    "DESC",
      "INNER", "JOIN",  "ON",     "APPEND", "RELATE", "VALUES", "AND",
      "OR",    "NOT",   "IS",     "NULL",   "TOP",    "SELECT", "BY"};
  if (t.kind != TokenKind::kIdentifier || t.quoted) return false;
  for (const char* kw : kBoundaries) {
    if (EqualsCi(t.text, kw)) return true;
  }
  return false;
}

Result<ExprPtr> ParseOr(TokenStream* tokens);

// primary := literal | columnref | '(' expr ')' | NOT primary | '-' primary
//          | NULL
Result<ExprPtr> ParsePrimary(TokenStream* tokens) {
  // The expression grammar recurses back into itself through parentheses,
  // unary operators and call arguments; bound the depth so "((((..." is a
  // clean error, not a stack overflow.
  TokenStream::RecursionScope depth(tokens);
  DMX_RETURN_IF_ERROR(depth.Check());
  const Token& t = tokens->Peek();
  if (tokens->MatchPunct("(")) {
    DMX_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr(tokens));
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
    return inner;
  }
  if (tokens->MatchKeyword("NOT")) {
    DMX_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary(tokens));
    return Expr::MakeUnary(UnaryOp::kNot, std::move(inner));
  }
  if (tokens->MatchPunct("-")) {
    DMX_ASSIGN_OR_RETURN(ExprPtr inner, ParsePrimary(tokens));
    return Expr::MakeUnary(UnaryOp::kNeg, std::move(inner));
  }
  if (tokens->MatchKeyword("NULL")) return Expr::MakeLiteral(Value::Null());
  if (tokens->MatchKeyword("TRUE")) return Expr::MakeLiteral(Value::Bool(true));
  if (tokens->MatchKeyword("FALSE")) {
    return Expr::MakeLiteral(Value::Bool(false));
  }
  switch (t.kind) {
    case TokenKind::kString:
      tokens->Next();
      return Expr::MakeLiteral(Value::Text(t.text));
    case TokenKind::kLong:
      tokens->Next();
      return Expr::MakeLiteral(Value::Long(t.long_value));
    case TokenKind::kDouble:
      tokens->Next();
      return Expr::MakeLiteral(Value::Double(t.double_value));
    case TokenKind::kIdentifier: {
      tokens->Next();
      std::string first = t.text;
      // Function call: bare identifier followed by '('.
      if (!t.quoted && tokens->Peek().IsPunct("(")) {
        tokens->Next();
        std::vector<ExprPtr> args;
        bool star = false;
        if (tokens->MatchPunct("*")) {
          star = true;
          DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
        } else if (!tokens->MatchPunct(")")) {
          while (true) {
            DMX_ASSIGN_OR_RETURN(ExprPtr arg, ParseOr(tokens));
            args.push_back(std::move(arg));
            if (tokens->MatchPunct(",")) continue;
            DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
            break;
          }
        }
        return Expr::MakeCall(std::move(first), std::move(args), star);
      }
      if (tokens->MatchPunct(".")) {
        DMX_ASSIGN_OR_RETURN(std::string second,
                             tokens->ExpectIdentifier("column name"));
        return Expr::MakeColumnRef(std::move(first), std::move(second));
      }
      return Expr::MakeColumnRef("", std::move(first));
    }
    default:
      return tokens->ErrorHere("expected expression");
  }
}

Result<ExprPtr> ParseMul(TokenStream* tokens) {
  DMX_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePrimary(tokens));
  while (true) {
    BinaryOp op;
    if (tokens->Peek().IsPunct("*")) {
      op = BinaryOp::kMul;
    } else if (tokens->Peek().IsPunct("/")) {
      op = BinaryOp::kDiv;
    } else {
      return lhs;
    }
    tokens->Next();
    DMX_ASSIGN_OR_RETURN(ExprPtr rhs, ParsePrimary(tokens));
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> ParseAdd(TokenStream* tokens) {
  DMX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMul(tokens));
  while (true) {
    BinaryOp op;
    if (tokens->Peek().IsPunct("+")) {
      op = BinaryOp::kAdd;
    } else if (tokens->Peek().IsPunct("-")) {
      op = BinaryOp::kSub;
    } else {
      return lhs;
    }
    tokens->Next();
    DMX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMul(tokens));
    lhs = Expr::MakeBinary(op, std::move(lhs), std::move(rhs));
  }
}

Result<ExprPtr> ParseComparison(TokenStream* tokens) {
  DMX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdd(tokens));
  // IS [NOT] NULL
  if (tokens->MatchKeyword("IS")) {
    bool negated = tokens->MatchKeyword("NOT");
    DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("NULL"));
    return Expr::MakeIsNull(std::move(lhs), negated);
  }
  struct OpMap {
    const char* text;
    BinaryOp op;
  };
  static const OpMap kOps[] = {{"=", BinaryOp::kEq},  {"<>", BinaryOp::kNe},
                               {"!=", BinaryOp::kNe}, {"<=", BinaryOp::kLe},
                               {">=", BinaryOp::kGe}, {"<", BinaryOp::kLt},
                               {">", BinaryOp::kGt}};
  for (const OpMap& m : kOps) {
    if (tokens->Peek().IsPunct(m.text)) {
      tokens->Next();
      DMX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdd(tokens));
      return Expr::MakeBinary(m.op, std::move(lhs), std::move(rhs));
    }
  }
  return lhs;
}

Result<ExprPtr> ParseAnd(TokenStream* tokens) {
  DMX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison(tokens));
  while (tokens->MatchKeyword("AND")) {
    DMX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison(tokens));
    lhs = Expr::MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<ExprPtr> ParseOr(TokenStream* tokens) {
  DMX_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd(tokens));
  while (tokens->MatchKeyword("OR")) {
    DMX_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd(tokens));
    lhs = Expr::MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
  }
  return lhs;
}

Result<TableRef> ParseTableRef(TokenStream* tokens) {
  TableRef ref;
  DMX_ASSIGN_OR_RETURN(ref.table, tokens->ExpectIdentifier("table name"));
  if (tokens->MatchKeyword("AS")) {
    DMX_ASSIGN_OR_RETURN(ref.alias, tokens->ExpectIdentifier("table alias"));
  } else if (tokens->Peek().kind == TokenKind::kIdentifier &&
             !IsClauseBoundary(tokens->Peek())) {
    ref.alias = tokens->Next().text;
  }
  return ref;
}

Result<CreateTableStatement> ParseCreateTable(TokenStream* tokens) {
  CreateTableStatement stmt;
  DMX_ASSIGN_OR_RETURN(stmt.name, tokens->ExpectIdentifier("table name"));
  DMX_RETURN_IF_ERROR(tokens->ExpectPunct("("));
  while (true) {
    ColumnDef col;
    DMX_ASSIGN_OR_RETURN(col.name, tokens->ExpectIdentifier("column name"));
    DMX_ASSIGN_OR_RETURN(std::string type_name,
                         tokens->ExpectIdentifier("column type"));
    DMX_ASSIGN_OR_RETURN(col.type, DataTypeFromString(type_name));
    stmt.columns.push_back(std::move(col));
    if (tokens->MatchPunct(",")) continue;
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
    break;
  }
  return stmt;
}

Result<InsertStatement> ParseInsert(TokenStream* tokens) {
  InsertStatement stmt;
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("INTO"));
  DMX_ASSIGN_OR_RETURN(stmt.table, tokens->ExpectIdentifier("table name"));
  if (tokens->MatchPunct("(")) {
    while (true) {
      DMX_ASSIGN_OR_RETURN(std::string col,
                           tokens->ExpectIdentifier("column name"));
      stmt.columns.push_back(std::move(col));
      if (tokens->MatchPunct(",")) continue;
      DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
      break;
    }
  }
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("VALUES"));
  while (true) {
    DMX_RETURN_IF_ERROR(tokens->ExpectPunct("("));
    std::vector<ExprPtr> row;
    while (true) {
      DMX_ASSIGN_OR_RETURN(ExprPtr value, ParseOr(tokens));
      row.push_back(std::move(value));
      if (tokens->MatchPunct(",")) continue;
      DMX_RETURN_IF_ERROR(tokens->ExpectPunct(")"));
      break;
    }
    stmt.rows.push_back(std::move(row));
    if (!tokens->MatchPunct(",")) break;
  }
  return stmt;
}

}  // namespace

Result<ExprPtr> ParseExpression(TokenStream* tokens) { return ParseOr(tokens); }

Result<SelectStatement> ParseSelectFrom(TokenStream* tokens) {
  DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("SELECT"));
  SelectStatement stmt;
  if (tokens->MatchKeyword("TOP")) {
    const Token& t = tokens->Peek();
    if (t.kind != TokenKind::kLong) {
      return tokens->ErrorHere("expected row count after TOP");
    }
    stmt.top = t.long_value;
    tokens->Next();
  }
  // Projection list.
  while (true) {
    SelectItem item;
    if (tokens->MatchPunct("*")) {
      item.star = true;
    } else {
      DMX_ASSIGN_OR_RETURN(item.expr, ParseOr(tokens));
      if (tokens->MatchKeyword("AS")) {
        DMX_ASSIGN_OR_RETURN(item.alias,
                             tokens->ExpectIdentifier("column alias"));
      }
    }
    stmt.items.push_back(std::move(item));
    // Tolerate the trailing comma of the paper's own example
    // ("SELECT [Customer ID], [Gender], FROM Customers").
    if (tokens->MatchPunct(",")) {
      if (tokens->Peek().IsKeyword("FROM")) break;
      continue;
    }
    break;
  }
  // FROM is optional: SELECT 1 AS x, 'Male' AS Gender is a singleton query.
  if (!tokens->MatchKeyword("FROM")) {
    return stmt;
  }
  DMX_ASSIGN_OR_RETURN(stmt.from, ParseTableRef(tokens));
  // INNER JOINs.
  while (true) {
    size_t save = tokens->position();
    bool inner = tokens->MatchKeyword("INNER");
    if (!tokens->MatchKeyword("JOIN")) {
      tokens->Rewind(save);
      break;
    }
    (void)inner;
    JoinClause join;
    DMX_ASSIGN_OR_RETURN(join.table, ParseTableRef(tokens));
    DMX_RETURN_IF_ERROR(tokens->ExpectKeyword("ON"));
    DMX_ASSIGN_OR_RETURN(join.on, ParseOr(tokens));
    stmt.joins.push_back(std::move(join));
  }
  if (tokens->MatchKeyword("WHERE")) {
    DMX_ASSIGN_OR_RETURN(stmt.where, ParseOr(tokens));
  }
  if (tokens->MatchKeywords({"GROUP", "BY"})) {
    while (true) {
      DMX_ASSIGN_OR_RETURN(ExprPtr key, ParseOr(tokens));
      stmt.group_by.push_back(std::move(key));
      if (!tokens->MatchPunct(",")) break;
    }
  }
  if (tokens->MatchKeywords({"ORDER", "BY"})) {
    while (true) {
      OrderItem item;
      DMX_ASSIGN_OR_RETURN(item.expr, ParseOr(tokens));
      if (tokens->MatchKeyword("DESC")) {
        item.ascending = false;
      } else {
        tokens->MatchKeyword("ASC");
      }
      stmt.order_by.push_back(std::move(item));
      if (!tokens->MatchPunct(",")) break;
    }
  }
  return stmt;
}

Result<SqlStatement> ParseSql(const std::string& text) {
  DMX_ASSIGN_OR_RETURN(std::vector<Token> token_list, Tokenize(text));
  TokenStream tokens(std::move(token_list));
  SqlStatement out;
  if (tokens.Peek().IsKeyword("SELECT")) {
    DMX_ASSIGN_OR_RETURN(SelectStatement stmt, ParseSelectFrom(&tokens));
    out = std::move(stmt);
  } else if (tokens.MatchKeywords({"CREATE", "TABLE"})) {
    DMX_ASSIGN_OR_RETURN(CreateTableStatement stmt, ParseCreateTable(&tokens));
    out = std::move(stmt);
  } else if (tokens.MatchKeyword("INSERT")) {
    DMX_ASSIGN_OR_RETURN(InsertStatement stmt, ParseInsert(&tokens));
    out = std::move(stmt);
  } else if (tokens.MatchKeywords({"DROP", "TABLE"})) {
    DropTableStatement stmt;
    DMX_ASSIGN_OR_RETURN(stmt.name, tokens.ExpectIdentifier("table name"));
    out = std::move(stmt);
  } else if (tokens.MatchKeywords({"DELETE", "FROM"})) {
    DeleteStatement stmt;
    DMX_ASSIGN_OR_RETURN(stmt.table, tokens.ExpectIdentifier("table name"));
    if (tokens.MatchKeyword("WHERE")) {
      DMX_ASSIGN_OR_RETURN(stmt.where, ParseOr(&tokens));
    }
    out = std::move(stmt);
  } else {
    return tokens.ErrorHere("expected a SQL statement");
  }
  tokens.MatchPunct(";");
  if (!tokens.AtEnd()) {
    return tokens.ErrorHere("unexpected trailing input");
  }
  return out;
}

}  // namespace dmx::rel
