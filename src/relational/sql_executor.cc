#include "relational/sql_executor.h"

#include <algorithm>
#include <unordered_map>

#include "common/exec_guard.h"
#include "relational/sql_parser.h"

namespace dmx::rel {

namespace {

struct RowKeyHash {
  size_t operator()(const Row& key) const {
    size_t h = 0;
    for (const Value& v : key) h = h * 1315423911u + v.Hash();
    return h;
  }
};

struct RowKeyEq {
  bool operator()(const Row& a, const Row& b) const {
    if (a.size() != b.size()) return false;
    for (size_t i = 0; i < a.size(); ++i) {
      if (!a[i].Equals(b[i])) return false;
    }
    return true;
  }
};

// A conjunct of a join condition split into the equi-pairs usable for hashing
// and the residual predicate evaluated per joined row.
struct JoinAnalysis {
  std::vector<std::pair<int, int>> equi;  // (left position, right position)
  std::vector<ExprPtr> residual;
};

void CollectConjuncts(const ExprPtr& expr, std::vector<ExprPtr>* out) {
  if (expr->kind == ExprKind::kBinary && expr->binary_op == BinaryOp::kAnd) {
    CollectConjuncts(expr->children[0], out);
    CollectConjuncts(expr->children[1], out);
    return;
  }
  out->push_back(expr);
}

// Tries to bind a column ref exclusively in one scope.
bool BindsIn(const Expr& column_ref, const Scope& scope, int* position) {
  auto result = scope.Resolve(column_ref.qualifier, column_ref.column);
  if (!result.ok()) return false;
  *position = static_cast<int>(*result);
  return true;
}

// Splits `on` into hashable equi-join pairs and a residual. `left_scope`
// covers the rows accumulated so far, `right_scope` only the newly joined
// table (positions relative to its own row).
JoinAnalysis AnalyzeJoin(const ExprPtr& on, const Scope& left_scope,
                         const Scope& right_scope) {
  JoinAnalysis analysis;
  std::vector<ExprPtr> conjuncts;
  CollectConjuncts(on, &conjuncts);
  for (const ExprPtr& c : conjuncts) {
    if (c->kind == ExprKind::kBinary && c->binary_op == BinaryOp::kEq &&
        c->children[0]->kind == ExprKind::kColumnRef &&
        c->children[1]->kind == ExprKind::kColumnRef) {
      int l = -1;
      int r = -1;
      if (BindsIn(*c->children[0], left_scope, &l) &&
          BindsIn(*c->children[1], right_scope, &r)) {
        analysis.equi.emplace_back(l, r);
        continue;
      }
      if (BindsIn(*c->children[1], left_scope, &l) &&
          BindsIn(*c->children[0], right_scope, &r)) {
        analysis.equi.emplace_back(l, r);
        continue;
      }
    }
    analysis.residual.push_back(c);
  }
  return analysis;
}

// Unique output column naming: bare name unless it collides, then
// "alias.name".
std::vector<ColumnDef> UniquifyColumns(std::vector<ColumnDef> columns,
                                       const std::vector<std::string>& quals) {
  std::map<std::string, int, LessCi> counts;
  for (const ColumnDef& col : columns) counts[col.name]++;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (counts[columns[i].name] > 1 && !quals[i].empty()) {
      columns[i].name = quals[i] + "." + columns[i].name;
    }
  }
  return columns;
}

Result<DataType> InferExprType(const Expr& expr,
                               const std::vector<const Schema*>& schemas,
                               const std::vector<size_t>& offsets) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      switch (expr.literal.kind()) {
        case Value::Kind::kBool:
          return DataType::kBool;
        case Value::Kind::kLong:
          return DataType::kLong;
        case Value::Kind::kDouble:
          return DataType::kDouble;
        case Value::Kind::kTable:
          return DataType::kTable;
        default:
          return DataType::kText;
      }
    case ExprKind::kColumnRef: {
      size_t pos = static_cast<size_t>(expr.bound_index);
      for (size_t s = 0; s < schemas.size(); ++s) {
        size_t begin = offsets[s];
        size_t end = begin + schemas[s]->num_columns();
        if (pos >= begin && pos < end) {
          return schemas[s]->column(pos - begin).type;
        }
      }
      return Internal() << "bound index outside all ranges";
    }
    case ExprKind::kUnary:
      return expr.unary_op == UnaryOp::kNot ? DataType::kBool : DataType::kDouble;
    case ExprKind::kBinary:
      switch (expr.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul: {
          DMX_ASSIGN_OR_RETURN(DataType lhs,
                               InferExprType(*expr.children[0], schemas, offsets));
          DMX_ASSIGN_OR_RETURN(DataType rhs,
                               InferExprType(*expr.children[1], schemas, offsets));
          if (lhs == DataType::kText && rhs == DataType::kText) {
            return DataType::kText;
          }
          return (lhs == DataType::kLong && rhs == DataType::kLong)
                     ? DataType::kLong
                     : DataType::kDouble;
        }
        case BinaryOp::kDiv:
          return DataType::kDouble;
        default:
          return DataType::kBool;
      }
    case ExprKind::kIsNull:
      return DataType::kBool;
    case ExprKind::kCall:
      if (expr.function == "COUNT") return DataType::kLong;
      if (expr.function == "AVG" || expr.function == "SUM") {
        return DataType::kDouble;
      }
      if (!expr.children.empty()) {
        return InferExprType(*expr.children[0], schemas, offsets);
      }
      return DataType::kDouble;
  }
  return DataType::kText;
}

bool HasColumnRef(const Expr& expr) {
  if (expr.kind == ExprKind::kColumnRef) return true;
  for (const ExprPtr& child : expr.children) {
    if (HasColumnRef(*child)) return true;
  }
  return false;
}

// Computes one aggregate call over a group of rows.
Result<Value> ComputeAggregate(const Expr& call,
                               const std::vector<const Row*>& group) {
  const std::string& f = call.function;
  if (f == "COUNT") {
    if (call.call_star) return Value::Long(static_cast<int64_t>(group.size()));
    if (call.children.size() != 1) {
      return InvalidArgument() << "COUNT takes one argument or *";
    }
    int64_t count = 0;
    for (const Row* row : group) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(*call.children[0], *row));
      if (!v.is_null()) ++count;
    }
    return Value::Long(count);
  }
  if (call.children.size() != 1) {
    return InvalidArgument() << f << " takes exactly one argument";
  }
  if (f == "SUM" || f == "AVG") {
    double total = 0;
    int64_t count = 0;
    bool all_long = true;
    for (const Row* row : group) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(*call.children[0], *row));
      if (v.is_null()) continue;
      if (!v.is_long()) all_long = false;
      DMX_ASSIGN_OR_RETURN(double d, v.AsDouble());
      total += d;
      ++count;
    }
    if (count == 0) return Value::Null();
    if (f == "AVG") return Value::Double(total / count);
    return all_long ? Value::Long(static_cast<int64_t>(total))
                    : Value::Double(total);
  }
  if (f == "MIN" || f == "MAX") {
    Value best;
    for (const Row* row : group) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(*call.children[0], *row));
      if (v.is_null()) continue;
      if (best.is_null() ||
          (f == "MIN" ? v.Compare(best) < 0 : v.Compare(best) > 0)) {
        best = std::move(v);
      }
    }
    return best;
  }
  return NotSupported() << "unknown function '" << f << "'";
}

// Evaluates a (possibly aggregate-bearing) expression over a row group:
// aggregate calls reduce the group, everything else evaluates against the
// group's first row (legal because non-aggregate projections are restricted
// to GROUP BY expressions).
Result<Value> EvalOverGroup(const Expr& expr,
                            const std::vector<const Row*>& group) {
  if (expr.kind == ExprKind::kCall) return ComputeAggregate(expr, group);
  if (!expr.ContainsAggregate()) {
    static const Row kEmpty;
    return EvalExpr(expr, group.empty() ? kEmpty : *group.front());
  }
  // Mixed node (e.g. SUM(x) / COUNT(*)): evaluate children, then reuse the
  // scalar evaluator on a literal-folded copy of this node.
  Expr folded = expr;
  folded.children.clear();
  for (const ExprPtr& child : expr.children) {
    DMX_ASSIGN_OR_RETURN(Value v, EvalOverGroup(*child, group));
    folded.children.push_back(Expr::MakeLiteral(std::move(v)));
  }
  static const Row kEmpty;
  return EvalExpr(folded, kEmpty);
}

// GROUP BY / aggregate execution over the filtered pre-projection rows.
// Borrows `rows` (which may be the table's own storage on an unfiltered
// scan): groups hold pointers into it, never copies.
Result<Rowset> ExecuteAggregation(const SelectStatement& stmt,
                                  const Scope& scope,
                                  const std::vector<const Schema*>& schemas,
                                  const std::vector<size_t>& offsets,
                                  const std::vector<Row>& rows) {
  // Bind everything.
  std::vector<ExprPtr> keys = stmt.group_by;
  for (const ExprPtr& key : keys) {
    DMX_RETURN_IF_ERROR(BindExpr(key.get(), scope));
  }
  std::vector<ColumnDef> out_columns;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      return InvalidArgument() << "SELECT * cannot be combined with "
                                  "aggregates / GROUP BY";
    }
    DMX_RETURN_IF_ERROR(BindExpr(item.expr.get(), scope));
    // Non-aggregate projections must be grouping expressions (or constants).
    if (!item.expr->ContainsAggregate() && HasColumnRef(*item.expr)) {
      bool is_key = false;
      for (const ExprPtr& key : keys) {
        if (key->ToString() == item.expr->ToString()) is_key = true;
      }
      if (!is_key) {
        return InvalidArgument()
               << "projection " << item.expr->ToString()
               << " must appear in GROUP BY or inside an aggregate";
      }
    }
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == ExprKind::kColumnRef ? item.expr->column
                                                     : item.expr->ToString();
    }
    DMX_ASSIGN_OR_RETURN(DataType type,
                         InferExprType(*item.expr, schemas, offsets));
    out_columns.emplace_back(std::move(name), type);
  }

  // Partition rows into groups (one global group when GROUP BY is absent).
  std::vector<std::vector<const Row*>> groups;
  if (keys.empty()) {
    groups.emplace_back();
    for (const Row& row : rows) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      groups.back().push_back(&row);
    }
  } else {
    std::unordered_map<Row, size_t, RowKeyHash, RowKeyEq> index;
    for (const Row& row : rows) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      Row key_values;
      key_values.reserve(keys.size());
      for (const ExprPtr& key : keys) {
        DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(*key, row));
        key_values.push_back(std::move(v));
      }
      auto [it, inserted] = index.emplace(std::move(key_values), groups.size());
      if (inserted) groups.emplace_back();
      groups[it->second].push_back(&row);
    }
  }

  Rowset out(Schema::Make(std::move(out_columns)));
  for (const auto& group : groups) {
    DMX_RETURN_IF_ERROR(GuardChargeOutputRows(1));
    Row out_row;
    out_row.reserve(stmt.items.size());
    for (const SelectItem& item : stmt.items) {
      DMX_ASSIGN_OR_RETURN(Value v, EvalOverGroup(*item.expr, group));
      out_row.push_back(std::move(v));
    }
    DMX_RETURN_IF_ERROR(out.Append(std::move(out_row)));
  }

  // ORDER BY over the aggregated output (names resolve against the output
  // schema: aliases or printed expressions).
  if (!stmt.order_by.empty()) {
    std::vector<std::pair<size_t, bool>> sort_keys;
    for (const OrderItem& item : stmt.order_by) {
      if (item.expr->kind != ExprKind::kColumnRef) {
        return InvalidArgument()
               << "ORDER BY over aggregates must reference output columns";
      }
      DMX_ASSIGN_OR_RETURN(size_t idx,
                           out.schema()->ResolveColumn(item.expr->column));
      sort_keys.emplace_back(idx, item.ascending);
    }
    std::stable_sort(out.mutable_rows().begin(), out.mutable_rows().end(),
                     [&](const Row& a, const Row& b) {
                       for (auto [idx, ascending] : sort_keys) {
                         int cmp = a[idx].Compare(b[idx]);
                         if (cmp != 0) return ascending ? cmp < 0 : cmp > 0;
                       }
                       return false;
                     });
  }
  if (stmt.top.has_value() &&
      out.num_rows() > static_cast<size_t>(*stmt.top)) {
    out.mutable_rows().resize(static_cast<size_t>(*stmt.top));
  }
  return out;
}

}  // namespace

Result<Rowset> ExecuteSelect(const Database& db, const SelectStatement& stmt) {
  // Resolve FROM and JOIN tables; accumulate a combined scope of all ranges.
  std::vector<const Schema*> schemas;
  std::vector<size_t> offsets;
  std::vector<std::string> aliases;
  Scope scope;
  // Working set of combined rows. The base scan is *borrowed* from the
  // table — `working` points at the table's own rows and `rows` stays empty
  // until a join or filter produces owned rows. A plain scan therefore never
  // copies the table (the old `rows = base->rows()` cost one allocation per
  // row plus one per non-inline text cell before a single predicate ran).
  std::vector<Row> rows;
  const std::vector<Row>* working = &rows;
  bool owns_working = true;
  // Selection vector over *working (set by a WHERE on a borrowed scan):
  // passing rows are recorded by index, never copied — the projection reads
  // straight from the table through it. Stages that must own contiguous
  // rows (ORDER BY's sort, aggregation) materialize it first.
  std::vector<size_t> selection;
  bool use_selection = false;
  auto materialize = [&]() -> Status {
    if (use_selection) {
      std::vector<Row> owned;
      owned.reserve(selection.size());
      for (size_t i : selection) {
        DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(1));
        owned.push_back((*working)[i]);
      }
      rows = std::move(owned);
      selection.clear();
      use_selection = false;
    } else if (!owns_working) {
      DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(working->size()));
      rows = *working;
    } else {
      return Status::OK();
    }
    working = &rows;
    owns_working = true;
    return Status::OK();
  };
  if (stmt.has_from()) {
    DMX_ASSIGN_OR_RETURN(const Table* base, db.GetTable(stmt.from.table));
    schemas.push_back(base->schema().get());
    offsets.push_back(0);
    aliases.push_back(stmt.from.effective_alias());
    scope.AddRange(aliases[0], *base->schema(), 0);
    working = &base->rows();
    owns_working = false;
  } else {
    // Singleton SELECT: constant projections over one empty row.
    if (!stmt.joins.empty()) {
      return InvalidArgument() << "a FROM-less SELECT cannot have JOINs";
    }
    rows.push_back(Row());
  }

  for (const JoinClause& join : stmt.joins) {
    DMX_ASSIGN_OR_RETURN(const Table* right, db.GetTable(join.table.table));
    size_t left_width = scope.width();

    Scope right_scope;
    right_scope.AddRange(join.table.effective_alias(), *right->schema(), 0);

    JoinAnalysis analysis = AnalyzeJoin(join.on, scope, right_scope);

    Scope combined = scope;
    combined.AddRange(join.table.effective_alias(), *right->schema(),
                      left_width);
    std::vector<ExprPtr> residual = analysis.residual;
    for (const ExprPtr& r : residual) {
      DMX_RETURN_IF_ERROR(BindExpr(r.get(), combined));
    }

    std::vector<Row> joined;
    auto emit_if_match = [&](const Row& left_row,
                             const Row& right_row) -> Status {
      Row out;
      out.reserve(left_width + right_row.size());
      out = left_row;
      out.insert(out.end(), right_row.begin(), right_row.end());
      for (const ExprPtr& r : residual) {
        DMX_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*r, out));
        if (!pass) return Status::OK();
      }
      // Joined rows are the statement's working set — a runaway cross join
      // trips the budget here instead of exhausting memory.
      DMX_RETURN_IF_ERROR(GuardChargeWorkingSet(1));
      joined.push_back(std::move(out));
      return Status::OK();
    };

    if (!analysis.equi.empty()) {
      // Hash join on the equi columns.
      std::unordered_multimap<Row, const Row*, RowKeyHash, RowKeyEq> hash;
      hash.reserve(right->num_rows());
      for (const Row& right_row : right->rows()) {
        DMX_RETURN_IF_ERROR(GuardCheck());
        Row key;
        key.reserve(analysis.equi.size());
        bool has_null = false;
        for (auto [l, r] : analysis.equi) {
          (void)l;
          if (right_row[r].is_null()) has_null = true;
          key.push_back(right_row[r]);
        }
        if (has_null) continue;  // NULL never equi-joins.
        hash.emplace(std::move(key), &right_row);
      }
      // The probe key is hoisted out of the loop: clear() keeps its
      // capacity, so steady state probes allocate nothing.
      Row key;
      key.reserve(analysis.equi.size());
      // dmx-hot-begin(sql-join-probe)
      for (const Row& left_row : *working) {
        DMX_RETURN_IF_ERROR(GuardCheck());
        key.clear();
        bool has_null = false;
        for (auto [l, r] : analysis.equi) {
          (void)r;
          if (left_row[l].is_null()) has_null = true;
          key.push_back(left_row[l]);
        }
        if (has_null) continue;
        auto [begin, end] = hash.equal_range(key);
        for (auto it = begin; it != end; ++it) {
          DMX_RETURN_IF_ERROR(emit_if_match(left_row, *it->second));
        }
      }
      // dmx-hot-end(sql-join-probe)
    } else {
      // Nested-loop fallback for non-equi conditions.
      for (const Row& left_row : *working) {
        DMX_RETURN_IF_ERROR(GuardCheck());
        for (const Row& right_row : right->rows()) {
          DMX_RETURN_IF_ERROR(emit_if_match(left_row, right_row));
        }
      }
    }

    rows = std::move(joined);
    working = &rows;
    owns_working = true;
    scope = std::move(combined);
    schemas.push_back(right->schema().get());
    offsets.push_back(left_width);
    aliases.push_back(join.table.effective_alias());
  }

  // WHERE. Owned rows are moved into the filtered set; a borrowed base scan
  // only records the indices of passing rows — nothing is copied unless a
  // later stage needs ownership.
  // dmx-hot-begin(sql-where-scan)
  if (stmt.where != nullptr) {
    DMX_RETURN_IF_ERROR(BindExpr(stmt.where.get(), scope));
    if (owns_working) {
      std::vector<Row> filtered;
      filtered.reserve(rows.size());
      for (Row& row : rows) {
        DMX_RETURN_IF_ERROR(GuardCheck());
        DMX_ASSIGN_OR_RETURN(bool pass, EvalPredicate(*stmt.where, row));
        if (pass) filtered.push_back(std::move(row));
      }
      rows = std::move(filtered);
      working = &rows;
    } else {
      selection.reserve(working->size());
      for (size_t i = 0; i < working->size(); ++i) {
        DMX_RETURN_IF_ERROR(GuardCheck());
        DMX_ASSIGN_OR_RETURN(bool pass,
                             EvalPredicate(*stmt.where, (*working)[i]));
        if (pass) selection.push_back(i);
      }
      use_selection = true;
    }
  }
  // dmx-hot-end(sql-where-scan)

  // Aggregation path: GROUP BY present or any aggregate in the projection.
  bool aggregating = !stmt.group_by.empty();
  for (const SelectItem& item : stmt.items) {
    if (!item.star && item.expr->ContainsAggregate()) aggregating = true;
  }
  if (aggregating) {
    DMX_RETURN_IF_ERROR(materialize());
    return ExecuteAggregation(stmt, scope, schemas, offsets, *working);
  }

  // ORDER BY (applied on the pre-projection rows so any column can sort).
  // A bare name that matches a projection alias sorts by that projection.
  std::vector<OrderItem> order_by = stmt.order_by;
  for (OrderItem& item : order_by) {
    if (item.expr->kind != ExprKind::kColumnRef ||
        !item.expr->qualifier.empty()) {
      continue;
    }
    for (const SelectItem& sel : stmt.items) {
      if (!sel.star && !sel.alias.empty() &&
          EqualsCi(sel.alias, item.expr->column)) {
        item.expr = sel.expr;
        break;
      }
    }
  }
  if (!order_by.empty()) {
    for (const OrderItem& item : order_by) {
      DMX_RETURN_IF_ERROR(BindExpr(item.expr.get(), scope));
    }
    // Sorting mutates: materialize the borrowed scan / selection now.
    DMX_RETURN_IF_ERROR(materialize());
    Status sort_status;
    std::stable_sort(rows.begin(), rows.end(),
                     [&](const Row& a, const Row& b) {
                       for (const OrderItem& item : order_by) {
                         auto va = EvalExpr(*item.expr, a);
                         auto vb = EvalExpr(*item.expr, b);
                         if (!va.ok() || !vb.ok()) {
                           if (sort_status.ok()) {
                             sort_status = va.ok() ? vb.status() : va.status();
                           }
                           return false;
                         }
                         int cmp = va->Compare(*vb);
                         if (cmp != 0) return item.ascending ? cmp < 0 : cmp > 0;
                       }
                       return false;
                     });
    DMX_RETURN_IF_ERROR(sort_status);
  }

  size_t out_limit = use_selection ? selection.size() : working->size();
  if (stmt.top.has_value() && out_limit > static_cast<size_t>(*stmt.top)) {
    out_limit = static_cast<size_t>(*stmt.top);
  }

  // Projection. Expand stars, bind expressions, name and type columns.
  std::vector<ExprPtr> projections;
  std::vector<ColumnDef> out_columns;
  std::vector<std::string> out_quals;
  for (const SelectItem& item : stmt.items) {
    if (item.star) {
      for (size_t s = 0; s < schemas.size(); ++s) {
        for (size_t c = 0; c < schemas[s]->num_columns(); ++c) {
          auto ref = Expr::MakeColumnRef(aliases[s], schemas[s]->column(c).name);
          projections.push_back(std::move(ref));
          out_columns.push_back(schemas[s]->column(c));
          out_quals.push_back(aliases[s]);
        }
      }
      continue;
    }
    projections.push_back(item.expr);
    std::string name = item.alias;
    if (name.empty()) {
      name = item.expr->kind == ExprKind::kColumnRef
                 ? item.expr->column
                 : "Expr" + std::to_string(projections.size());
    }
    out_columns.emplace_back(name, DataType::kText);  // Type fixed below.
    out_quals.push_back(item.expr->kind == ExprKind::kColumnRef
                            ? item.expr->qualifier
                            : "");
  }
  for (size_t i = 0; i < projections.size(); ++i) {
    DMX_RETURN_IF_ERROR(BindExpr(projections[i].get(), scope));
    DMX_ASSIGN_OR_RETURN(out_columns[i].type,
                         InferExprType(*projections[i], schemas, offsets));
  }
  out_columns = UniquifyColumns(std::move(out_columns), out_quals);

  Rowset result(Schema::Make(std::move(out_columns)));
  result.mutable_rows().reserve(out_limit);
  // dmx-hot-begin(sql-projection)
  for (size_t row_idx = 0; row_idx < out_limit; ++row_idx) {
    const Row& row = (*working)[use_selection ? selection[row_idx] : row_idx];
    DMX_RETURN_IF_ERROR(GuardChargeOutputRows(1));
    // Each output row is moved into the result, so its buffer cannot be
    // reused across iterations.
    Row out;  // dmx-lint: allow(hot-loop-alloc)
    out.reserve(projections.size());
    for (const ExprPtr& p : projections) {
      DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(*p, row));
      out.push_back(std::move(v));
    }
    DMX_RETURN_IF_ERROR(result.Append(std::move(out)));
  }
  // dmx-hot-end(sql-projection)
  return result;
}

Result<Rowset> Execute(Database* db, const SqlStatement& statement) {
  if (const auto* stmt = std::get_if<SelectStatement>(&statement)) {
    return ExecuteSelect(*db, *stmt);
  }
  if (const auto* stmt = std::get_if<CreateTableStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(
        db->CreateTable(stmt->name, Schema::Make(stmt->columns)).status());
    return Rowset();
  }
  if (const auto* stmt = std::get_if<InsertStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(Table * table, db->GetTable(stmt->table));
    const Schema& schema = *table->schema();
    // Map the statement's column list (or schema order) to positions.
    std::vector<size_t> positions;
    if (stmt->columns.empty()) {
      for (size_t i = 0; i < schema.num_columns(); ++i) positions.push_back(i);
    } else {
      DMX_ASSIGN_OR_RETURN(positions, schema.ResolveColumns(stmt->columns));
    }
    // Evaluate every row before inserting any, so a guard trip (or a bad
    // expression) midway leaves the table untouched. VALUES rows have no row
    // scope, so binding against an empty Scope turns any column reference
    // into a clean BindError before evaluation.
    Scope no_scope;
    Row empty;
    std::vector<Row> staged;
    staged.reserve(stmt->rows.size());
    for (const auto& exprs : stmt->rows) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      if (exprs.size() != positions.size()) {
        return InvalidArgument()
               << "INSERT row has " << exprs.size() << " values, expected "
               << positions.size();
      }
      Row row(schema.num_columns(), Value::Null());
      for (size_t i = 0; i < exprs.size(); ++i) {
        DMX_RETURN_IF_ERROR(BindExpr(exprs[i].get(), no_scope));
        DMX_ASSIGN_OR_RETURN(row[positions[i]], EvalExpr(*exprs[i], empty));
      }
      staged.push_back(std::move(row));
    }
    // InsertAll is atomic: coercion failures surface before any row lands,
    // so a failed INSERT has no side effects (the durability contract).
    DMX_RETURN_IF_ERROR(table->InsertAll(std::move(staged)));
    return Rowset();
  }
  if (const auto* stmt = std::get_if<DropTableStatement>(&statement)) {
    DMX_RETURN_IF_ERROR(db->DropTable(stmt->name));
    return Rowset();
  }
  if (const auto* stmt = std::get_if<DeleteStatement>(&statement)) {
    DMX_ASSIGN_OR_RETURN(Table * table, db->GetTable(stmt->table));
    if (stmt->where == nullptr) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      table->Clear();
      return Rowset();
    }
    Scope scope;
    scope.AddRange(stmt->table, *table->schema(), 0);
    DMX_RETURN_IF_ERROR(BindExpr(stmt->where.get(), scope));
    std::vector<Row> kept;
    for (const Row& row : table->rows()) {
      DMX_RETURN_IF_ERROR(GuardCheck());
      DMX_ASSIGN_OR_RETURN(bool matches, EvalPredicate(*stmt->where, row));
      if (!matches) kept.push_back(row);
    }
    table->Clear();
    DMX_RETURN_IF_ERROR(table->InsertAll(std::move(kept)));
    return Rowset();
  }
  return Internal() << "unhandled SQL statement kind";
}

Result<Rowset> ExecuteSql(Database* db, const std::string& sql) {
  DMX_ASSIGN_OR_RETURN(SqlStatement statement, ParseSql(sql));
  return Execute(db, statement);
}

}  // namespace dmx::rel
