#include "relational/expression.h"

#include "common/string_util.h"

namespace dmx::rel {

void Scope::AddRange(const std::string& alias, const Schema& schema,
                     size_t offset) {
  for (size_t i = 0; i < schema.num_columns(); ++i) {
    entries_.push_back(Entry{alias, schema.column(i).name, offset + i});
  }
  width_ = std::max(width_, offset + schema.num_columns());
}

Result<size_t> Scope::Resolve(const std::string& qualifier,
                              const std::string& name) const {
  int found = -1;
  for (const Entry& e : entries_) {
    if (!qualifier.empty() && !EqualsCi(e.alias, qualifier)) continue;
    if (!EqualsCi(e.column, name)) continue;
    if (found >= 0) {
      return BindError() << "ambiguous column reference '" << name << "'";
    }
    found = static_cast<int>(e.position);
  }
  if (found < 0) {
    std::string full = qualifier.empty() ? name : qualifier + "." + name;
    return BindError() << "unknown column '" << full << "'";
  }
  return static_cast<size_t>(found);
}

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq: return "=";
    case BinaryOp::kNe: return "<>";
    case BinaryOp::kLt: return "<";
    case BinaryOp::kLe: return "<=";
    case BinaryOp::kGt: return ">";
    case BinaryOp::kGe: return ">=";
    case BinaryOp::kAdd: return "+";
    case BinaryOp::kSub: return "-";
    case BinaryOp::kMul: return "*";
    case BinaryOp::kDiv: return "/";
    case BinaryOp::kAnd: return "AND";
    case BinaryOp::kOr: return "OR";
  }
  return "?";
}

ExprPtr Expr::MakeLiteral(Value v) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr Expr::MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->qualifier = std::move(qualifier);
  e->column = std::move(column);
  return e;
}

ExprPtr Expr::MakeUnary(UnaryOp op, ExprPtr child) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::MakeIsNull(ExprPtr child, bool negated) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kIsNull;
  e->is_null_negated = negated;
  e->children = {std::move(child)};
  return e;
}

ExprPtr Expr::MakeCall(std::string function, std::vector<ExprPtr> args,
                       bool star) {
  auto e = std::make_shared<Expr>();
  e->kind = ExprKind::kCall;
  e->function = ToUpper(function);
  e->children = std::move(args);
  e->call_star = star;
  return e;
}

namespace {
bool IsAggregateName(const std::string& upper) {
  return upper == "COUNT" || upper == "SUM" || upper == "AVG" ||
         upper == "MIN" || upper == "MAX";
}
}  // namespace

bool Expr::ContainsAggregate() const {
  if (kind == ExprKind::kCall && IsAggregateName(function)) return true;
  for (const ExprPtr& child : children) {
    if (child->ContainsAggregate()) return true;
  }
  return false;
}

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_text()) {
        std::string escaped;
        for (char c : literal.text_value()) {
          escaped += c;
          if (c == '\'') escaped += '\'';
        }
        return "'" + escaped + "'";
      }
      return literal.ToString();
    case ExprKind::kColumnRef: {
      std::string out;
      if (!qualifier.empty()) out = QuoteIdentifier(qualifier) + ".";
      return out + QuoteIdentifier(column);
    }
    case ExprKind::kUnary:
      return (unary_op == UnaryOp::kNot ? "NOT (" : "-(") +
             children[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " + BinaryOpToString(binary_op) +
             " " + children[1]->ToString() + ")";
    case ExprKind::kIsNull:
      return children[0]->ToString() + (is_null_negated ? " IS NOT NULL"
                                                        : " IS NULL");
    case ExprKind::kCall: {
      std::string out = function + "(";
      if (call_star) out += "*";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      return out + ")";
    }
  }
  return "?";
}

Status BindExpr(Expr* expr, const Scope& scope) {
  if (expr->kind == ExprKind::kColumnRef) {
    DMX_ASSIGN_OR_RETURN(size_t idx, scope.Resolve(expr->qualifier, expr->column));
    expr->bound_index = static_cast<int>(idx);
    return Status::OK();
  }
  for (const ExprPtr& child : expr->children) {
    DMX_RETURN_IF_ERROR(BindExpr(child.get(), scope));
  }
  return Status::OK();
}

namespace {

Result<Value> EvalBinary(const Expr& expr, const Row& row) {
  // AND/OR get short-circuit evaluation with NULL-as-false semantics.
  if (expr.binary_op == BinaryOp::kAnd || expr.binary_op == BinaryOp::kOr) {
    DMX_ASSIGN_OR_RETURN(bool lhs, EvalPredicate(*expr.children[0], row));
    if (expr.binary_op == BinaryOp::kAnd && !lhs) return Value::Bool(false);
    if (expr.binary_op == BinaryOp::kOr && lhs) return Value::Bool(true);
    DMX_ASSIGN_OR_RETURN(bool rhs, EvalPredicate(*expr.children[1], row));
    return Value::Bool(rhs);
  }
  DMX_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.children[0], row));
  DMX_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.children[1], row));
  if (lhs.is_null() || rhs.is_null()) return Value::Null();
  switch (expr.binary_op) {
    case BinaryOp::kEq:
      return Value::Bool(lhs.Equals(rhs));
    case BinaryOp::kNe:
      return Value::Bool(!lhs.Equals(rhs));
    case BinaryOp::kLt:
      return Value::Bool(lhs.Compare(rhs) < 0);
    case BinaryOp::kLe:
      return Value::Bool(lhs.Compare(rhs) <= 0);
    case BinaryOp::kGt:
      return Value::Bool(lhs.Compare(rhs) > 0);
    case BinaryOp::kGe:
      return Value::Bool(lhs.Compare(rhs) >= 0);
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (expr.binary_op == BinaryOp::kAdd && lhs.is_text() && rhs.is_text()) {
        return Value::Text(lhs.text_value() + rhs.text_value());
      }
      DMX_ASSIGN_OR_RETURN(double a, lhs.AsDouble());
      DMX_ASSIGN_OR_RETURN(double b, rhs.AsDouble());
      double result = 0;
      switch (expr.binary_op) {
        case BinaryOp::kAdd: result = a + b; break;
        case BinaryOp::kSub: result = a - b; break;
        case BinaryOp::kMul: result = a * b; break;
        case BinaryOp::kDiv:
          if (b == 0) return Value::Null();  // SQL-style: x/0 -> NULL
          result = a / b;
          break;
        default: break;
      }
      // Preserve integer typing for exact integer arithmetic except division.
      if (expr.binary_op != BinaryOp::kDiv && lhs.is_long() && rhs.is_long()) {
        return Value::Long(static_cast<int64_t>(result));
      }
      return Value::Double(result);
    }
    default:
      break;
  }
  return Internal() << "unreachable binary op";
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const Row& row) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kColumnRef:
      if (expr.bound_index < 0) {
        return Internal() << "unbound column reference '" << expr.column << "'";
      }
      if (static_cast<size_t>(expr.bound_index) >= row.size()) {
        return Internal() << "column index " << expr.bound_index
                          << " out of row range " << row.size();
      }
      return row[expr.bound_index];
    case ExprKind::kUnary: {
      if (expr.unary_op == UnaryOp::kNot) {
        DMX_ASSIGN_OR_RETURN(bool b, EvalPredicate(*expr.children[0], row));
        return Value::Bool(!b);
      }
      DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      if (v.is_null()) return Value::Null();
      if (v.is_long()) return Value::Long(-v.long_value());
      DMX_ASSIGN_OR_RETURN(double d, v.AsDouble());
      return Value::Double(-d);
    }
    case ExprKind::kBinary:
      return EvalBinary(expr, row);
    case ExprKind::kIsNull: {
      DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.children[0], row));
      return Value::Bool(v.is_null() != expr.is_null_negated);
    }
    case ExprKind::kCall:
      return InvalidArgument()
             << "aggregate " << expr.function
             << "() is only valid in a SELECT projection (with optional "
                "GROUP BY)";
  }
  return Internal() << "unreachable expression kind";
}

Result<bool> EvalPredicate(const Expr& expr, const Row& row) {
  DMX_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, row));
  if (v.is_null()) return false;
  if (v.is_bool()) return v.bool_value();
  DMX_ASSIGN_OR_RETURN(double d, v.AsDouble());
  return d != 0;
}

}  // namespace dmx::rel
