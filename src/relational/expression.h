// Scalar expression trees shared by the SQL subset (WHERE / ON / projections)
// and reused by the shaping and prediction layers for simple predicates.
//
// Binding and evaluation are split: Bind() resolves column references against
// a Scope (names -> row positions) once, Eval() then runs per row with no
// lookups.

#ifndef DMX_RELATIONAL_EXPRESSION_H_
#define DMX_RELATIONAL_EXPRESSION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/schema.h"
#include "common/status.h"
#include "common/value.h"

namespace dmx::rel {

/// Name resolution environment: maps (qualifier, column) to a position in the
/// evaluation row. Unqualified names resolve across all ranges and must be
/// unambiguous.
class Scope {
 public:
  /// Adds a named range (table alias) whose columns occupy positions
  /// [offset, offset + schema.num_columns()).
  void AddRange(const std::string& alias, const Schema& schema, size_t offset);

  /// Resolves `qualifier.name` (qualifier may be empty). BindError on unknown
  /// or ambiguous references.
  Result<size_t> Resolve(const std::string& qualifier,
                         const std::string& name) const;

  size_t width() const { return width_; }

 private:
  struct Entry {
    std::string alias;
    std::string column;
    size_t position;
  };
  std::vector<Entry> entries_;
  size_t width_ = 0;
};

/// Expression node kinds.
enum class ExprKind {
  kLiteral,
  kColumnRef,
  kUnary,   // NOT, unary minus
  kBinary,  // comparisons, arithmetic, AND/OR
  kIsNull,  // IS [NOT] NULL
  kCall,    // function call: aggregates (COUNT/SUM/AVG/MIN/MAX), COUNT(*)
};

enum class BinaryOp { kEq, kNe, kLt, kLe, kGt, kGe, kAdd, kSub, kMul, kDiv,
                      kAnd, kOr };
enum class UnaryOp { kNot, kNeg };

/// Returns the SQL spelling of a binary operator ("=", "<>", "AND", ...).
const char* BinaryOpToString(BinaryOp op);

/// \brief One node of an expression tree.
///
/// A plain struct (per the project style for data containers): parsers build
/// it, Bind() fills `bound_index` on column refs, Eval() reads it.
struct Expr {
  ExprKind kind;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string qualifier;  ///< Table alias, possibly empty.
  std::string column;
  int bound_index = -1;   ///< Filled by Bind().

  // kUnary / kBinary / kIsNull
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kEq;
  bool is_null_negated = false;  ///< IS NOT NULL
  std::vector<std::shared_ptr<Expr>> children;

  // kCall
  std::string function;    ///< Upper-cased function name.
  bool call_star = false;  ///< COUNT(*).

  static std::shared_ptr<Expr> MakeLiteral(Value v);
  static std::shared_ptr<Expr> MakeColumnRef(std::string qualifier,
                                             std::string column);
  static std::shared_ptr<Expr> MakeUnary(UnaryOp op, std::shared_ptr<Expr> child);
  static std::shared_ptr<Expr> MakeBinary(BinaryOp op, std::shared_ptr<Expr> lhs,
                                          std::shared_ptr<Expr> rhs);
  static std::shared_ptr<Expr> MakeIsNull(std::shared_ptr<Expr> child,
                                          bool negated);
  static std::shared_ptr<Expr> MakeCall(std::string function,
                                        std::vector<std::shared_ptr<Expr>> args,
                                        bool star);

  /// True when this subtree contains an aggregate call.
  bool ContainsAggregate() const;

  /// Round-trippable SQL text of this expression.
  std::string ToString() const;
};

using ExprPtr = std::shared_ptr<Expr>;

/// Resolves every column reference in `expr` against `scope`.
Status BindExpr(Expr* expr, const Scope& scope);

/// Evaluates a bound expression against a row laid out per the binding scope.
///
/// NULL semantics (documented simplification of SQL's three-valued logic):
/// any comparison or arithmetic involving NULL yields NULL; NULL in a boolean
/// position counts as false; IS NULL / IS NOT NULL test the state directly.
Result<Value> EvalExpr(const Expr& expr, const Row& row);

/// Convenience: evaluates a predicate, mapping NULL to false.
Result<bool> EvalPredicate(const Expr& expr, const Row& row);

}  // namespace dmx::rel

#endif  // DMX_RELATIONAL_EXPRESSION_H_
