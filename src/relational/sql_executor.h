// Executor for the SQL subset: SELECT with (hash-)joins, filters, ordering
// and projection; CREATE TABLE / INSERT / DELETE / DROP against the catalog.

#ifndef DMX_RELATIONAL_SQL_EXECUTOR_H_
#define DMX_RELATIONAL_SQL_EXECUTOR_H_

#include <string>

#include "common/rowset.h"
#include "common/status.h"
#include "relational/database.h"
#include "relational/sql_ast.h"

namespace dmx::rel {

/// Executes one parsed statement. DDL/DML return an empty rowset; SELECT
/// returns its result.
Result<Rowset> Execute(Database* db, const SqlStatement& statement);

/// Parses and executes `sql` in one step.
Result<Rowset> ExecuteSql(Database* db, const std::string& sql);

/// Executes a SELECT; exposed separately because the SHAPE service and the
/// DMX executor run embedded SELECT blocks directly.
Result<Rowset> ExecuteSelect(const Database& db, const SelectStatement& stmt);

}  // namespace dmx::rel

#endif  // DMX_RELATIONAL_SQL_EXECUTOR_H_
