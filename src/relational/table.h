// Table: a mutable, named relation in the database catalog. Values inserted
// into a table are coerced to the declared column types, mirroring how a SQL
// engine enforces its schema at the storage boundary.

#ifndef DMX_RELATIONAL_TABLE_H_
#define DMX_RELATIONAL_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rowset.h"
#include "common/schema.h"
#include "common/status.h"

namespace dmx::rel {

/// \brief Row-store table. Scalar columns only; hierarchical data lives in
/// views produced by the shaping service, never in base tables (paper §3.1:
/// "it is not necessary for the storage subsystem to support nested records").
class Table {
 public:
  Table(std::string name, std::shared_ptr<const Schema> schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const std::shared_ptr<const Schema>& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  /// Validates that no column is TABLE-typed (base tables are flat).
  static Status ValidateSchema(const Schema& schema);

  /// Appends one row, coercing each cell to the declared column type.
  Status Insert(Row row);

  /// Appends many rows atomically: every row is size-checked and coerced
  /// before any is appended, so a bad row midway leaves the table untouched.
  /// Statement-level atomicity is load-bearing for durability — the WAL
  /// journals only successful statements, so a failed statement with partial
  /// effects would make crash recovery diverge from the in-memory state.
  Status InsertAll(std::vector<Row> rows);

  void Clear() { rows_.clear(); }

  /// Copies contents into an immutable rowset (cheap schema share).
  Rowset ToRowset() const { return Rowset(schema_, rows_); }

 private:
  /// Size-checks `row` and coerces each cell in place; mutates nothing else.
  Status CoerceForInsert(Row* row) const;

  std::string name_;
  std::shared_ptr<const Schema> schema_;
  std::vector<Row> rows_;
};

}  // namespace dmx::rel

#endif  // DMX_RELATIONAL_TABLE_H_
