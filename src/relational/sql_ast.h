// AST for the SQL subset the provider's relational engine executes:
//
//   SELECT [TOP n] item, ...      item := expr [AS alias] | *
//   FROM table [alias] [INNER JOIN table [alias] ON expr]...
//   [WHERE expr] [ORDER BY expr [ASC|DESC], ...]
//
//   CREATE TABLE name (col TYPE, ...)
//   INSERT INTO name [(cols)] VALUES (...), (...)
//   DROP TABLE name
//   DELETE FROM name [WHERE expr]
//
// This covers every query the paper issues against the relational engine
// (caseset feeding queries, the Table-1 flattening join) plus the DDL/DML the
// examples and benches need to build their warehouses.

#ifndef DMX_RELATIONAL_SQL_AST_H_
#define DMX_RELATIONAL_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/schema.h"
#include "relational/expression.h"

namespace dmx::rel {

/// One projection item; `star` renders all columns of the FROM scope.
struct SelectItem {
  bool star = false;
  ExprPtr expr;
  std::string alias;
};

/// A base-table reference with optional alias.
struct TableRef {
  std::string table;
  std::string alias;  ///< Defaults to the table name when empty.

  const std::string& effective_alias() const {
    return alias.empty() ? table : alias;
  }
};

struct JoinClause {
  TableRef table;
  ExprPtr on;
};

struct OrderItem {
  ExprPtr expr;
  bool ascending = true;
};

struct SelectStatement {
  std::optional<int64_t> top;
  std::vector<SelectItem> items;
  /// FROM is optional: a singleton SELECT (constant projections, one output
  /// row) has an empty table name — the form DMX singleton prediction
  /// queries feed into PREDICTION JOIN.
  TableRef from;
  std::vector<JoinClause> joins;
  ExprPtr where;  ///< May be null.
  std::vector<ExprPtr> group_by;
  std::vector<OrderItem> order_by;

  bool has_from() const { return !from.table.empty(); }
};

struct CreateTableStatement {
  std::string name;
  std::vector<ColumnDef> columns;
};

struct InsertStatement {
  std::string table;
  std::vector<std::string> columns;  ///< Empty means "all, in schema order".
  std::vector<std::vector<ExprPtr>> rows;
};

struct DropTableStatement {
  std::string name;
};

struct DeleteStatement {
  std::string table;
  ExprPtr where;  ///< May be null (delete all).
};

using SqlStatement = std::variant<SelectStatement, CreateTableStatement,
                                  InsertStatement, DropTableStatement,
                                  DeleteStatement>;

}  // namespace dmx::rel

#endif  // DMX_RELATIONAL_SQL_AST_H_
