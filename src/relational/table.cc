#include "relational/table.h"

namespace dmx::rel {

Status Table::ValidateSchema(const Schema& schema) {
  if (schema.num_columns() == 0) {
    return InvalidArgument() << "a table needs at least one column";
  }
  for (const ColumnDef& col : schema.columns()) {
    if (col.type == DataType::kTable) {
      return InvalidArgument()
             << "base table column '" << col.name
             << "' cannot be TABLE-typed; use SHAPE to build nested rowsets";
    }
  }
  return Status::OK();
}

Status Table::CoerceForInsert(Row* row) const {
  if (row->size() != schema_->num_columns()) {
    return InvalidArgument() << "INSERT into '" << name_ << "': got "
                             << row->size() << " values, expected "
                             << schema_->num_columns();
  }
  for (size_t i = 0; i < row->size(); ++i) {
    DMX_ASSIGN_OR_RETURN((*row)[i],
                         (*row)[i].CoerceTo(schema_->column(i).type));
  }
  return Status::OK();
}

Status Table::Insert(Row row) {
  DMX_RETURN_IF_ERROR(CoerceForInsert(&row));
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status Table::InsertAll(std::vector<Row> rows) {
  // Coerce every row before appending any (see the header contract: failed
  // statements must leave the table untouched).
  for (Row& row : rows) {
    DMX_RETURN_IF_ERROR(CoerceForInsert(&row));
  }
  rows_.reserve(rows_.size() + rows.size());
  for (Row& row : rows) {
    rows_.push_back(std::move(row));
  }
  return Status::OK();
}

}  // namespace dmx::rel
