// Database: the catalog of base tables the provider's relational engine
// serves, plus CSV import/export (the "dump to files and mine outside"
// pipeline the paper argues against is built from these primitives so the
// benches can measure it).

#ifndef DMX_RELATIONAL_DATABASE_H_
#define DMX_RELATIONAL_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/schema.h"
#include "common/status.h"
#include "common/string_util.h"
#include "relational/table.h"

namespace dmx::rel {

/// \brief Named-table catalog with case-insensitive names.
class Database {
 public:
  /// Creates an empty table. AlreadyExists when the name is taken.
  Result<Table*> CreateTable(const std::string& name,
                             std::shared_ptr<const Schema> schema);

  /// NotFound when the table does not exist.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  Status DropTable(const std::string& name);

  bool HasTable(const std::string& name) const {
    return tables_.count(name) > 0;
  }

  /// Table names in case-insensitive sorted order.
  std::vector<std::string> ListTables() const;

 private:
  std::map<std::string, std::unique_ptr<Table>, LessCi> tables_;
};

/// Renders rows as CSV text (header row, RFC-4180-style quoting) — the form
/// SaveCsv writes to disk and the durable store embeds in snapshots.
std::string ToCsvString(const Schema& schema, const std::vector<Row>& rows);

/// Writes a table to CSV through `env` (Env::Default() when null); every
/// write and the close are checked, failures return kIOError naming `path`.
Status SaveCsv(const Table& table, const std::string& path,
               Env* env = nullptr);

/// Writes an arbitrary flat rowset to CSV.
Status SaveCsv(const Rowset& rowset, const std::string& path,
               Env* env = nullptr);

/// Parses CSV text into a rowset. Quoted fields may span newlines. When
/// `schema` is null, column types are inferred per column: LONG if every
/// non-NULL cell parses as an integer, else DOUBLE if numeric, else TEXT.
/// Unquoted empty cells load as NULL; quoted empty cells ("") are empty
/// strings.
Result<Rowset> ParseCsvString(const std::string& data,
                              std::shared_ptr<const Schema> schema = nullptr);

/// Reads a CSV file into a rowset (see ParseCsvString for typing rules).
Result<Rowset> LoadCsv(const std::string& path,
                       std::shared_ptr<const Schema> schema = nullptr,
                       Env* env = nullptr);

}  // namespace dmx::rel

#endif  // DMX_RELATIONAL_DATABASE_H_
