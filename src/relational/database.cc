#include "relational/database.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <string_view>

namespace dmx::rel {

Result<Table*> Database::CreateTable(const std::string& name,
                                     std::shared_ptr<const Schema> schema) {
  if (tables_.count(name) > 0) {
    return AlreadyExists() << "table '" << name << "' already exists";
  }
  DMX_RETURN_IF_ERROR(Table::ValidateSchema(*schema));
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound() << "table '" << name << "' does not exist";
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound() << "table '" << name << "' does not exist";
  }
  return static_cast<const Table*>(it->second.get());
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return NotFound() << "table '" << name << "' does not exist";
  }
  return Status::OK();
}

std::vector<std::string> Database::ListTables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

namespace {

void WriteCsvField(const std::string& field, std::string* out) {
  // Empty strings are written quoted ("") so the reader can tell them apart
  // from NULL, which is an unquoted empty cell.
  bool needs_quotes =
      field.empty() || field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

/// One parsed cell. `quoted` distinguishes "" (empty string) from an
/// unquoted empty cell (NULL).
struct CsvField {
  std::string text;
  bool quoted = false;
};

// Streaming CSV record reader: quote state is tracked across the whole
// input, so quoted fields may contain embedded newlines (and commas and
// escaped quotes). Records end at an unquoted '\n' or EOF; unquoted '\r' is
// dropped (CRLF endings); blank lines are skipped.
std::vector<std::vector<CsvField>> ParseCsvRecords(std::string_view data) {
  std::vector<std::vector<CsvField>> records;
  std::vector<CsvField> record;
  CsvField field;
  bool in_quotes = false;
  auto end_field = [&] {
    record.push_back(std::move(field));
    field = CsvField{};
  };
  auto end_record = [&] {
    end_field();
    // A blank line parses as a single unquoted empty field: not a record.
    if (record.size() == 1 && !record[0].quoted && record[0].text.empty()) {
      record.clear();
      return;
    }
    records.push_back(std::move(record));
    record.clear();
  };
  for (size_t i = 0; i < data.size(); ++i) {
    char c = data[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < data.size() && data[i + 1] == '"') {
          field.text += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.text += c;
      }
    } else if (c == '"') {
      in_quotes = true;
      field.quoted = true;
    } else if (c == ',') {
      end_field();
    } else if (c == '\n') {
      end_record();
    } else if (c == '\r') {
      // CR of a CRLF ending; a literal CR inside a field arrives quoted.
    } else {
      field.text += c;
    }
  }
  // Input not ending in '\n': flush the final record.
  if (!field.text.empty() || field.quoted || !record.empty()) end_record();
  return records;
}

bool ParseLong(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string ToCsvString(const Schema& schema, const std::vector<Row>& rows) {
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    WriteCsvField(schema.column(c).name, &out);
  }
  out += '\n';
  for (const Row& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      if (!row[c].is_null()) WriteCsvField(row[c].ToString(), &out);
    }
    out += '\n';
  }
  return out;
}

Status SaveCsv(const Table& table, const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->WriteStringToFile(path, ToCsvString(*table.schema(),
                                                  table.rows()))
      .WithContext("saving table '" + table.name() + "' to CSV");
}

Status SaveCsv(const Rowset& rowset, const std::string& path, Env* env) {
  for (const ColumnDef& col : rowset.schema()->columns()) {
    if (col.type == DataType::kTable) {
      return NotSupported() << "cannot export nested-table column '" << col.name
                            << "' to CSV";
    }
  }
  if (env == nullptr) env = Env::Default();
  return env->WriteStringToFile(path, ToCsvString(*rowset.schema(),
                                                  rowset.rows()))
      .WithContext("saving rowset to CSV");
}

Result<Rowset> ParseCsvString(const std::string& data,
                              std::shared_ptr<const Schema> schema) {
  std::vector<std::vector<CsvField>> records = ParseCsvRecords(data);
  if (records.empty()) {
    return IOError() << "CSV data is empty (no header row)";
  }
  const std::vector<CsvField>& header = records[0];
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != header.size()) {
      return IOError() << "CSV record " << r + 1 << " has "
                       << records[r].size() << " fields, header has "
                       << header.size();
    }
  }
  // An unquoted empty cell is NULL; a quoted one ("") is an empty string.
  auto is_null = [](const CsvField& cell) {
    return !cell.quoted && cell.text.empty();
  };

  if (schema == nullptr) {
    // Infer per-column types from the data.
    std::vector<ColumnDef> columns;
    columns.reserve(header.size());
    for (size_t c = 0; c < header.size(); ++c) {
      bool all_long = true;
      bool all_double = true;
      bool any_value = false;
      for (size_t r = 1; r < records.size(); ++r) {
        const CsvField& cell = records[r][c];
        if (is_null(cell)) continue;
        any_value = true;
        int64_t l;
        double d;
        if (!ParseLong(cell.text, &l)) all_long = false;
        if (!ParseDouble(cell.text, &d)) all_double = false;
        if (!all_long && !all_double) break;
      }
      DataType type = DataType::kText;
      if (any_value && all_long) {
        type = DataType::kLong;
      } else if (any_value && all_double) {
        type = DataType::kDouble;
      }
      columns.emplace_back(header[c].text, type);
    }
    schema = Schema::Make(std::move(columns));
  } else {
    if (schema->num_columns() != header.size()) {
      return IOError() << "CSV has " << header.size()
                       << " columns, expected schema has "
                       << schema->num_columns();
    }
  }

  Rowset out(schema);
  for (size_t r = 1; r < records.size(); ++r) {
    const std::vector<CsvField>& raw = records[r];
    Row row;
    row.reserve(raw.size());
    for (size_t c = 0; c < raw.size(); ++c) {
      const std::string& cell = raw[c].text;
      if (is_null(raw[c])) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema->column(c).type) {
        case DataType::kLong: {
          int64_t l;
          if (!ParseLong(cell, &l)) {
            return IOError() << "cell '" << cell << "' is not a LONG in column '"
                             << schema->column(c).name << "'";
          }
          row.push_back(Value::Long(l));
          break;
        }
        case DataType::kDouble: {
          double d;
          if (!ParseDouble(cell, &d)) {
            return IOError() << "cell '" << cell
                             << "' is not a DOUBLE in column '"
                             << schema->column(c).name << "'";
          }
          row.push_back(Value::Double(d));
          break;
        }
        case DataType::kBool:
          row.push_back(Value::Bool(EqualsCi(cell, "TRUE") || cell == "1"));
          break;
        case DataType::kText:
          row.push_back(Value::Text(cell));
          break;
        case DataType::kTable:
          return NotSupported() << "CSV cannot carry nested tables";
      }
    }
    DMX_RETURN_IF_ERROR(out.Append(std::move(row)));
  }
  return out;
}

Result<Rowset> LoadCsv(const std::string& path,
                       std::shared_ptr<const Schema> schema, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::string> data = env->ReadFileToString(path);
  if (!data.ok()) {
    return data.status().WithContext("loading CSV '" + path + "'");
  }
  Result<Rowset> rowset = ParseCsvString(*data, std::move(schema));
  if (!rowset.ok()) {
    return rowset.status().WithContext("loading CSV '" + path + "'");
  }
  return rowset;
}

}  // namespace dmx::rel
