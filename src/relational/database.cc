#include "relational/database.h"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace dmx::rel {

Result<Table*> Database::CreateTable(const std::string& name,
                                     std::shared_ptr<const Schema> schema) {
  if (tables_.count(name) > 0) {
    return AlreadyExists() << "table '" << name << "' already exists";
  }
  DMX_RETURN_IF_ERROR(Table::ValidateSchema(*schema));
  auto table = std::make_unique<Table>(name, std::move(schema));
  Table* raw = table.get();
  tables_.emplace(name, std::move(table));
  return raw;
}

Result<Table*> Database::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound() << "table '" << name << "' does not exist";
  }
  return it->second.get();
}

Result<const Table*> Database::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return NotFound() << "table '" << name << "' does not exist";
  }
  return static_cast<const Table*>(it->second.get());
}

Status Database::DropTable(const std::string& name) {
  if (tables_.erase(name) == 0) {
    return NotFound() << "table '" << name << "' does not exist";
  }
  return Status::OK();
}

std::vector<std::string> Database::ListTables() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, table] : tables_) out.push_back(name);
  return out;
}

namespace {

void WriteCsvField(const std::string& field, std::string* out) {
  bool needs_quotes = field.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) {
    *out += field;
    return;
  }
  *out += '"';
  for (char c : field) {
    if (c == '"') *out += '"';
    *out += c;
  }
  *out += '"';
}

// Splits one CSV record; handles quoted fields with embedded separators.
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(field));
      field.clear();
    } else if (c == '\r') {
      // Ignore CR of CRLF endings.
    } else {
      field += c;
    }
  }
  fields.push_back(std::move(field));
  return fields;
}

bool ParseLong(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(begin, end, *out);
  return ec == std::errc() && ptr == end;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

}  // namespace

std::string ToCsvString(const Schema& schema, const std::vector<Row>& rows) {
  std::string out;
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    if (c > 0) out += ',';
    WriteCsvField(schema.column(c).name, &out);
  }
  out += '\n';
  for (const Row& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += ',';
      if (!row[c].is_null()) WriteCsvField(row[c].ToString(), &out);
    }
    out += '\n';
  }
  return out;
}

Status SaveCsv(const Table& table, const std::string& path, Env* env) {
  if (env == nullptr) env = Env::Default();
  return env->WriteStringToFile(path, ToCsvString(*table.schema(),
                                                  table.rows()))
      .WithContext("saving table '" + table.name() + "' to CSV");
}

Status SaveCsv(const Rowset& rowset, const std::string& path, Env* env) {
  for (const ColumnDef& col : rowset.schema()->columns()) {
    if (col.type == DataType::kTable) {
      return NotSupported() << "cannot export nested-table column '" << col.name
                            << "' to CSV";
    }
  }
  if (env == nullptr) env = Env::Default();
  return env->WriteStringToFile(path, ToCsvString(*rowset.schema(),
                                                  rowset.rows()))
      .WithContext("saving rowset to CSV");
}

Result<Rowset> ParseCsvString(const std::string& data,
                              std::shared_ptr<const Schema> schema) {
  std::istringstream in(data);
  std::string line;
  if (!std::getline(in, line)) {
    return IOError() << "CSV data is empty (no header row)";
  }
  std::vector<std::string> header = SplitCsvLine(line);
  std::vector<std::vector<std::string>> raw_rows;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != header.size()) {
      return IOError() << "CSV row " << raw_rows.size() + 2 << " has "
                       << fields.size() << " fields, header has "
                       << header.size();
    }
    raw_rows.push_back(std::move(fields));
  }

  if (schema == nullptr) {
    // Infer per-column types from the data.
    std::vector<ColumnDef> columns;
    columns.reserve(header.size());
    for (size_t c = 0; c < header.size(); ++c) {
      bool all_long = true;
      bool all_double = true;
      bool any_value = false;
      for (const auto& row : raw_rows) {
        const std::string& cell = row[c];
        if (cell.empty()) continue;
        any_value = true;
        int64_t l;
        double d;
        if (!ParseLong(cell, &l)) all_long = false;
        if (!ParseDouble(cell, &d)) all_double = false;
        if (!all_long && !all_double) break;
      }
      DataType type = DataType::kText;
      if (any_value && all_long) {
        type = DataType::kLong;
      } else if (any_value && all_double) {
        type = DataType::kDouble;
      }
      columns.emplace_back(header[c], type);
    }
    schema = Schema::Make(std::move(columns));
  } else {
    if (schema->num_columns() != header.size()) {
      return IOError() << "CSV has " << header.size()
                       << " columns, expected schema has "
                       << schema->num_columns();
    }
  }

  Rowset out(schema);
  for (auto& raw : raw_rows) {
    Row row;
    row.reserve(raw.size());
    for (size_t c = 0; c < raw.size(); ++c) {
      const std::string& cell = raw[c];
      if (cell.empty()) {
        row.push_back(Value::Null());
        continue;
      }
      switch (schema->column(c).type) {
        case DataType::kLong: {
          int64_t l;
          if (!ParseLong(cell, &l)) {
            return IOError() << "cell '" << cell << "' is not a LONG in column '"
                             << schema->column(c).name << "'";
          }
          row.push_back(Value::Long(l));
          break;
        }
        case DataType::kDouble: {
          double d;
          if (!ParseDouble(cell, &d)) {
            return IOError() << "cell '" << cell
                             << "' is not a DOUBLE in column '"
                             << schema->column(c).name << "'";
          }
          row.push_back(Value::Double(d));
          break;
        }
        case DataType::kBool:
          row.push_back(Value::Bool(EqualsCi(cell, "TRUE") || cell == "1"));
          break;
        case DataType::kText:
          row.push_back(Value::Text(cell));
          break;
        case DataType::kTable:
          return NotSupported() << "CSV cannot carry nested tables";
      }
    }
    DMX_RETURN_IF_ERROR(out.Append(std::move(row)));
  }
  return out;
}

Result<Rowset> LoadCsv(const std::string& path,
                       std::shared_ptr<const Schema> schema, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::string> data = env->ReadFileToString(path);
  if (!data.ok()) {
    return data.status().WithContext("loading CSV '" + path + "'");
  }
  Result<Rowset> rowset = ParseCsvString(*data, std::move(schema));
  if (!rowset.ok()) {
    return rowset.status().WithContext("loading CSV '" + path + "'");
  }
  return rowset;
}

}  // namespace dmx::rel
