// Recursive-descent parser for the SQL subset (see sql_ast.h for the
// grammar). The parser is also used as a sub-parser: the SHAPE service and
// DMX INSERT/PREDICTION JOIN statements embed `{SELECT ...}` blocks, parsed
// via ParseSelectFrom(TokenStream&).

#ifndef DMX_RELATIONAL_SQL_PARSER_H_
#define DMX_RELATIONAL_SQL_PARSER_H_

#include <string>

#include "common/status.h"
#include "common/tokenizer.h"
#include "relational/sql_ast.h"

namespace dmx::rel {

/// Parses a complete SQL statement from `text`.
Result<SqlStatement> ParseSql(const std::string& text);

/// Parses a SELECT statement starting at the current stream position (the
/// leading SELECT keyword must still be in the stream). Used by embedding
/// grammars (SHAPE, DMX).
Result<SelectStatement> ParseSelectFrom(TokenStream* tokens);

/// Parses a scalar expression (exposed for tests and embedding grammars).
Result<ExprPtr> ParseExpression(TokenStream* tokens);

}  // namespace dmx::rel

#endif  // DMX_RELATIONAL_SQL_PARSER_H_
