#include "pmml/pmml.h"

#include <sstream>

#include "algorithms/association_rules.h"
#include "algorithms/clustering.h"
#include "algorithms/decision_tree.h"
#include "algorithms/linear_regression.h"
#include "algorithms/naive_bayes.h"
#include "algorithms/sequence_analysis.h"
#include "core/dmx_parser.h"
#include "pmml/xml.h"

namespace dmx {

namespace {

// ---------------------------------------------------------------------------
// Scalar helpers
// ---------------------------------------------------------------------------

void WriteValue(xml::Element* parent, const std::string& element_name,
                const Value& value) {
  xml::Element* e = parent->AddChild(element_name);
  switch (value.kind()) {
    case Value::Kind::kNull:
      e->SetAttr("type", std::string("NULL"));
      break;
    case Value::Kind::kBool:
      e->SetAttr("type", std::string("BOOL"));
      e->set_text(value.bool_value() ? "1" : "0");
      break;
    case Value::Kind::kLong:
      e->SetAttr("type", std::string("LONG"));
      e->set_text(std::to_string(value.long_value()));
      break;
    case Value::Kind::kDouble:
      e->SetAttr("type", std::string("DOUBLE"));
      e->set_text(FormatDouble(value.double_value()));
      break;
    case Value::Kind::kText:
      e->SetAttr("type", std::string("TEXT"));
      e->set_text(value.text_value());
      break;
    case Value::Kind::kTable:
      e->SetAttr("type", std::string("NULL"));  // Tables never occur here.
      break;
  }
}

Result<Value> ReadValue(const xml::Element& e) {
  DMX_ASSIGN_OR_RETURN(std::string type, e.GetAttr("type"));
  if (type == "NULL") return Value::Null();
  if (type == "BOOL") return Value::Bool(e.text() == "1");
  if (type == "LONG") return Value::Long(std::strtoll(e.text().c_str(),
                                                      nullptr, 10));
  if (type == "DOUBLE") return Value::Double(std::strtod(e.text().c_str(),
                                                         nullptr));
  if (type == "TEXT") return Value::Text(e.text());
  return IOError() << "unknown serialized value type '" << type << "'";
}

std::string JoinDoubles(const std::vector<double>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ' ';
    out += FormatDouble(values[i]);
  }
  return out;
}

std::vector<double> SplitDoubles(const std::string& text) {
  std::vector<double> out;
  std::istringstream in(text);
  double v;
  while (in >> v) out.push_back(v);
  return out;
}

std::string JoinInts(const std::vector<int>& values) {
  std::string out;
  for (size_t i = 0; i < values.size(); ++i) {
    if (i > 0) out += ' ';
    out += std::to_string(values[i]);
  }
  return out;
}

std::vector<int> SplitInts(const std::string& text) {
  std::vector<int> out;
  std::istringstream in(text);
  int v;
  while (in >> v) out.push_back(v);
  return out;
}

// Writes a [class][state] count table as <Class i="0">counts</Class> rows.
void WriteCountTable(xml::Element* parent,
                     const std::vector<std::vector<double>>& table) {
  for (size_t cls = 0; cls < table.size(); ++cls) {
    xml::Element* row = parent->AddChild("Class");
    row->SetAttr("i", static_cast<int64_t>(cls));
    row->set_text(JoinDoubles(table[cls]));
  }
}

Result<std::vector<std::vector<double>>> ReadCountTable(
    const xml::Element& parent) {
  std::vector<std::vector<double>> table;
  for (const xml::Element* row : parent.FindChildren("Class")) {
    DMX_ASSIGN_OR_RETURN(int64_t i, row->GetLongAttr("i"));
    if (table.size() <= static_cast<size_t>(i)) table.resize(i + 1);
    table[i] = SplitDoubles(row->text());
  }
  return table;
}

// ---------------------------------------------------------------------------
// AttributeSet dictionaries
// ---------------------------------------------------------------------------

void WriteAttributeSet(xml::Element* root, const AttributeSet& attrs) {
  xml::Element* holder = root->AddChild("X-AttributeSet");
  for (const Attribute& attr : attrs.attributes) {
    xml::Element* e = holder->AddChild("Attribute");
    e->SetAttr("name", attr.name);
    for (const Value& category : attr.categories) {
      WriteValue(e, "Category", category);
    }
    if (!attr.bucket_bounds.empty()) {
      e->AddChild("Bounds")->set_text(JoinDoubles(attr.bucket_bounds));
    }
  }
  for (const NestedGroup& group : attrs.groups) {
    xml::Element* e = holder->AddChild("Group");
    e->SetAttr("name", group.name);
    for (const Value& key : group.keys) {
      WriteValue(e, "Key", key);
    }
  }
}

Status ReadAttributeSet(const xml::Element& root, AttributeSet* attrs) {
  const xml::Element* holder = root.FindChild("X-AttributeSet");
  if (holder == nullptr) {
    return IOError() << "document has no X-AttributeSet element";
  }
  for (const xml::Element* e : holder->FindChildren("Attribute")) {
    DMX_ASSIGN_OR_RETURN(std::string name, e->GetAttr("name"));
    int idx = attrs->FindAttribute(name);
    if (idx < 0) {
      return IOError() << "serialized attribute '" << name
                       << "' is not part of the model definition";
    }
    Attribute& attr = attrs->attributes[idx];
    attr.categories.clear();
    attr.category_index.clear();
    for (const xml::Element* c : e->FindChildren("Category")) {
      DMX_ASSIGN_OR_RETURN(Value v, ReadValue(*c));
      attr.InternCategory(v);
    }
    const xml::Element* bounds = e->FindChild("Bounds");
    if (bounds != nullptr) attr.bucket_bounds = SplitDoubles(bounds->text());
  }
  for (const xml::Element* e : holder->FindChildren("Group")) {
    DMX_ASSIGN_OR_RETURN(std::string name, e->GetAttr("name"));
    int idx = attrs->FindGroup(name);
    if (idx < 0) {
      return IOError() << "serialized group '" << name
                       << "' is not part of the model definition";
    }
    NestedGroup& group = attrs->groups[idx];
    group.keys.clear();
    group.key_index.clear();
    for (const xml::Element* k : e->FindChildren("Key")) {
      DMX_ASSIGN_OR_RETURN(Value v, ReadValue(*k));
      group.InternKey(v);
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Per-service trained state
// ---------------------------------------------------------------------------

void WriteDecisionTree(xml::Element* root, const DecisionTreeModel& model) {
  xml::Element* e = root->AddChild("TreeModel");
  e->SetAttr("caseCount", model.case_count());
  for (const DecisionTreeModel::TargetTree& tree : model.trees()) {
    xml::Element* t = e->AddChild("Tree");
    t->SetAttr("target", static_cast<int64_t>(tree.target));
    t->SetAttr("regression", static_cast<int64_t>(tree.regression ? 1 : 0));
    for (size_t i = 0; i < tree.nodes.size(); ++i) {
      const DecisionTreeModel::Node& node = tree.nodes[i];
      xml::Element* n = t->AddChild("Node");
      n->SetAttr("i", static_cast<int64_t>(i));
      n->SetAttr("then", static_cast<int64_t>(node.then_child));
      n->SetAttr("else", static_cast<int64_t>(node.else_child));
      n->SetAttr("support", node.support);
      n->SetAttr("score", node.score);
      n->SetAttr("mean", node.mean);
      n->SetAttr("variance", node.variance);
      if (!node.is_leaf()) {
        xml::Element* s = n->AddChild("Split");
        s->SetAttr("kind", static_cast<int64_t>(node.split.kind));
        s->SetAttr("attribute", static_cast<int64_t>(node.split.attribute));
        s->SetAttr("state", static_cast<int64_t>(node.split.state));
        s->SetAttr("threshold", node.split.threshold);
        s->SetAttr("group", static_cast<int64_t>(node.split.group));
        s->SetAttr("item", static_cast<int64_t>(node.split.item));
      }
      if (!node.class_counts.empty()) {
        n->AddChild("Counts")->set_text(JoinDoubles(node.class_counts));
      }
    }
  }
}

Result<std::unique_ptr<TrainedModel>> ReadDecisionTree(const xml::Element& e) {
  DMX_ASSIGN_OR_RETURN(double case_count, e.GetDoubleAttr("caseCount"));
  std::vector<DecisionTreeModel::TargetTree> trees;
  for (const xml::Element* t : e.FindChildren("Tree")) {
    DecisionTreeModel::TargetTree tree;
    DMX_ASSIGN_OR_RETURN(int64_t target, t->GetLongAttr("target"));
    DMX_ASSIGN_OR_RETURN(int64_t regression, t->GetLongAttr("regression"));
    tree.target = static_cast<int>(target);
    tree.regression = regression != 0;
    auto nodes = t->FindChildren("Node");
    tree.nodes.resize(nodes.size());
    for (const xml::Element* n : nodes) {
      DMX_ASSIGN_OR_RETURN(int64_t i, n->GetLongAttr("i"));
      if (static_cast<size_t>(i) >= tree.nodes.size()) {
        return IOError() << "tree node index " << i << " out of range";
      }
      DecisionTreeModel::Node& node = tree.nodes[i];
      DMX_ASSIGN_OR_RETURN(int64_t then_child, n->GetLongAttr("then"));
      DMX_ASSIGN_OR_RETURN(int64_t else_child, n->GetLongAttr("else"));
      node.then_child = static_cast<int>(then_child);
      node.else_child = static_cast<int>(else_child);
      DMX_ASSIGN_OR_RETURN(node.support, n->GetDoubleAttr("support"));
      DMX_ASSIGN_OR_RETURN(node.score, n->GetDoubleAttr("score"));
      DMX_ASSIGN_OR_RETURN(node.mean, n->GetDoubleAttr("mean"));
      DMX_ASSIGN_OR_RETURN(node.variance, n->GetDoubleAttr("variance"));
      const xml::Element* s = n->FindChild("Split");
      if (s != nullptr) {
        DMX_ASSIGN_OR_RETURN(int64_t kind, s->GetLongAttr("kind"));
        node.split.kind = static_cast<DecisionTreeModel::Split::Kind>(kind);
        DMX_ASSIGN_OR_RETURN(int64_t attribute, s->GetLongAttr("attribute"));
        node.split.attribute = static_cast<int>(attribute);
        DMX_ASSIGN_OR_RETURN(int64_t state, s->GetLongAttr("state"));
        node.split.state = static_cast<int>(state);
        DMX_ASSIGN_OR_RETURN(node.split.threshold,
                             s->GetDoubleAttr("threshold"));
        DMX_ASSIGN_OR_RETURN(int64_t group, s->GetLongAttr("group"));
        node.split.group = static_cast<int>(group);
        DMX_ASSIGN_OR_RETURN(int64_t item, s->GetLongAttr("item"));
        node.split.item = static_cast<int>(item);
      }
      const xml::Element* counts = n->FindChild("Counts");
      if (counts != nullptr) node.class_counts = SplitDoubles(counts->text());
    }
    trees.push_back(std::move(tree));
  }
  return std::unique_ptr<TrainedModel>(
      new DecisionTreeModel(std::move(trees), case_count));
}

void WriteNaiveBayes(xml::Element* root, const NaiveBayesModel& model) {
  xml::Element* e = root->AddChild("NaiveBayesModel");
  e->SetAttr("caseCount", model.case_count());
  e->SetAttr("alpha", model.alpha());
  for (const NaiveBayesModel::TargetStats& stats : model.targets()) {
    xml::Element* t = e->AddChild("Target");
    t->SetAttr("attribute", static_cast<int64_t>(stats.target));
    t->AddChild("ClassCounts")->set_text(JoinDoubles(stats.class_counts));
    for (const auto& [attr, table] : stats.cat_counts) {
      xml::Element* c = t->AddChild("Cat");
      c->SetAttr("attribute", static_cast<int64_t>(attr));
      WriteCountTable(c, table);
    }
    for (const auto& [attr, moments] : stats.cont_stats) {
      xml::Element* c = t->AddChild("Cont");
      c->SetAttr("attribute", static_cast<int64_t>(attr));
      for (size_t cls = 0; cls < moments.size(); ++cls) {
        xml::Element* m = c->AddChild("Moments");
        m->SetAttr("i", static_cast<int64_t>(cls));
        m->SetAttr("weight", moments[cls].weight);
        m->SetAttr("mean", moments[cls].mean);
        m->SetAttr("m2", moments[cls].m2);
      }
    }
    for (const auto& [group, table] : stats.group_counts) {
      xml::Element* g = t->AddChild("Group");
      g->SetAttr("group", static_cast<int64_t>(group));
      WriteCountTable(g, table);
    }
  }
}

Result<std::unique_ptr<TrainedModel>> ReadNaiveBayes(const xml::Element& e) {
  DMX_ASSIGN_OR_RETURN(double case_count, e.GetDoubleAttr("caseCount"));
  DMX_ASSIGN_OR_RETURN(double alpha, e.GetDoubleAttr("alpha"));
  std::vector<int> targets;
  auto target_elements = e.FindChildren("Target");
  for (const xml::Element* t : target_elements) {
    DMX_ASSIGN_OR_RETURN(int64_t attr, t->GetLongAttr("attribute"));
    targets.push_back(static_cast<int>(attr));
  }
  auto model = std::make_unique<NaiveBayesModel>(targets, alpha);
  model->set_case_count(case_count);
  for (size_t i = 0; i < target_elements.size(); ++i) {
    const xml::Element* t = target_elements[i];
    NaiveBayesModel::TargetStats& stats = model->mutable_targets()[i];
    const xml::Element* class_counts = t->FindChild("ClassCounts");
    if (class_counts != nullptr) {
      stats.class_counts = SplitDoubles(class_counts->text());
    }
    for (const xml::Element* c : t->FindChildren("Cat")) {
      DMX_ASSIGN_OR_RETURN(int64_t attr, c->GetLongAttr("attribute"));
      DMX_ASSIGN_OR_RETURN(stats.cat_counts[static_cast<int>(attr)],
                           ReadCountTable(*c));
    }
    for (const xml::Element* c : t->FindChildren("Cont")) {
      DMX_ASSIGN_OR_RETURN(int64_t attr, c->GetLongAttr("attribute"));
      auto& moments = stats.cont_stats[static_cast<int>(attr)];
      for (const xml::Element* m : c->FindChildren("Moments")) {
        DMX_ASSIGN_OR_RETURN(int64_t cls, m->GetLongAttr("i"));
        if (moments.size() <= static_cast<size_t>(cls)) {
          moments.resize(cls + 1);
        }
        DMX_ASSIGN_OR_RETURN(moments[cls].weight, m->GetDoubleAttr("weight"));
        DMX_ASSIGN_OR_RETURN(moments[cls].mean, m->GetDoubleAttr("mean"));
        DMX_ASSIGN_OR_RETURN(moments[cls].m2, m->GetDoubleAttr("m2"));
      }
    }
    for (const xml::Element* g : t->FindChildren("Group")) {
      DMX_ASSIGN_OR_RETURN(int64_t group, g->GetLongAttr("group"));
      DMX_ASSIGN_OR_RETURN(stats.group_counts[static_cast<int>(group)],
                           ReadCountTable(*g));
    }
  }
  return std::unique_ptr<TrainedModel>(std::move(model));
}

void WriteClustering(xml::Element* root, const ClusteringModel& model) {
  xml::Element* e = root->AddChild("ClusteringModel");
  e->SetAttr("caseCount", model.case_count());
  e->SetAttr("alpha", model.alpha());
  for (const ClusteringModel::ClusterStats& cluster : model.clusters()) {
    xml::Element* c = e->AddChild("Cluster");
    c->SetAttr("weight", cluster.weight);
    for (const auto& [attr, counts] : cluster.cat_counts) {
      xml::Element* a = c->AddChild("Cat");
      a->SetAttr("attribute", static_cast<int64_t>(attr));
      a->set_text(JoinDoubles(counts));
    }
    for (const auto& [attr, moments] : cluster.cont_stats) {
      xml::Element* a = c->AddChild("Cont");
      a->SetAttr("attribute", static_cast<int64_t>(attr));
      a->SetAttr("weight", moments.weight);
      a->SetAttr("mean", moments.mean);
      a->SetAttr("m2", moments.m2);
    }
    for (const auto& [group, counts] : cluster.group_counts) {
      xml::Element* a = c->AddChild("Group");
      a->SetAttr("group", static_cast<int64_t>(group));
      a->set_text(JoinDoubles(counts));
    }
  }
}

Result<std::unique_ptr<TrainedModel>> ReadClustering(const xml::Element& e) {
  DMX_ASSIGN_OR_RETURN(double case_count, e.GetDoubleAttr("caseCount"));
  DMX_ASSIGN_OR_RETURN(double alpha, e.GetDoubleAttr("alpha"));
  std::vector<ClusteringModel::ClusterStats> clusters;
  for (const xml::Element* c : e.FindChildren("Cluster")) {
    ClusteringModel::ClusterStats cluster;
    DMX_ASSIGN_OR_RETURN(cluster.weight, c->GetDoubleAttr("weight"));
    for (const xml::Element* a : c->FindChildren("Cat")) {
      DMX_ASSIGN_OR_RETURN(int64_t attr, a->GetLongAttr("attribute"));
      cluster.cat_counts[static_cast<int>(attr)] = SplitDoubles(a->text());
    }
    for (const xml::Element* a : c->FindChildren("Cont")) {
      DMX_ASSIGN_OR_RETURN(int64_t attr, a->GetLongAttr("attribute"));
      auto& moments = cluster.cont_stats[static_cast<int>(attr)];
      DMX_ASSIGN_OR_RETURN(moments.weight, a->GetDoubleAttr("weight"));
      DMX_ASSIGN_OR_RETURN(moments.mean, a->GetDoubleAttr("mean"));
      DMX_ASSIGN_OR_RETURN(moments.m2, a->GetDoubleAttr("m2"));
    }
    for (const xml::Element* a : c->FindChildren("Group")) {
      DMX_ASSIGN_OR_RETURN(int64_t group, a->GetLongAttr("group"));
      cluster.group_counts[static_cast<int>(group)] = SplitDoubles(a->text());
    }
    clusters.push_back(std::move(cluster));
  }
  return std::unique_ptr<TrainedModel>(
      new ClusteringModel(std::move(clusters), case_count, alpha));
}

void WriteAssociation(xml::Element* root, const AssociationModel& model) {
  xml::Element* e = root->AddChild("AssociationModel");
  e->SetAttr("caseCount", model.case_count());
  for (const AssociationModel::Item& item : model.items()) {
    xml::Element* i = e->AddChild("Item");
    i->SetAttr("group", static_cast<int64_t>(item.group));
    i->SetAttr("attribute", static_cast<int64_t>(item.attribute));
    i->SetAttr("state", static_cast<int64_t>(item.state));
  }
  for (const AssociationModel::Itemset& itemset : model.itemsets()) {
    xml::Element* i = e->AddChild("Itemset");
    i->SetAttr("support", itemset.support);
    i->set_text(JoinInts(itemset.items));
  }
  for (const AssociationModel::Rule& rule : model.rules()) {
    xml::Element* r = e->AddChild("Rule");
    r->SetAttr("consequent", static_cast<int64_t>(rule.consequent));
    r->SetAttr("support", rule.support);
    r->SetAttr("confidence", rule.confidence);
    r->SetAttr("lift", rule.lift);
    r->set_text(JoinInts(rule.antecedent));
  }
}

Result<std::unique_ptr<TrainedModel>> ReadAssociation(const xml::Element& e) {
  DMX_ASSIGN_OR_RETURN(double case_count, e.GetDoubleAttr("caseCount"));
  std::vector<AssociationModel::Item> items;
  for (const xml::Element* i : e.FindChildren("Item")) {
    AssociationModel::Item item;
    DMX_ASSIGN_OR_RETURN(int64_t group, i->GetLongAttr("group"));
    DMX_ASSIGN_OR_RETURN(int64_t attribute, i->GetLongAttr("attribute"));
    DMX_ASSIGN_OR_RETURN(int64_t state, i->GetLongAttr("state"));
    item.group = static_cast<int>(group);
    item.attribute = static_cast<int>(attribute);
    item.state = static_cast<int>(state);
    items.push_back(item);
  }
  std::vector<AssociationModel::Itemset> itemsets;
  for (const xml::Element* i : e.FindChildren("Itemset")) {
    AssociationModel::Itemset itemset;
    DMX_ASSIGN_OR_RETURN(itemset.support, i->GetDoubleAttr("support"));
    itemset.items = SplitInts(i->text());
    itemsets.push_back(std::move(itemset));
  }
  std::vector<AssociationModel::Rule> rules;
  for (const xml::Element* r : e.FindChildren("Rule")) {
    AssociationModel::Rule rule;
    DMX_ASSIGN_OR_RETURN(int64_t consequent, r->GetLongAttr("consequent"));
    rule.consequent = static_cast<int>(consequent);
    DMX_ASSIGN_OR_RETURN(rule.support, r->GetDoubleAttr("support"));
    DMX_ASSIGN_OR_RETURN(rule.confidence, r->GetDoubleAttr("confidence"));
    DMX_ASSIGN_OR_RETURN(rule.lift, r->GetDoubleAttr("lift"));
    rule.antecedent = SplitInts(r->text());
    rules.push_back(std::move(rule));
  }
  return std::unique_ptr<TrainedModel>(
      new AssociationModel(std::move(items), std::move(itemsets),
                           std::move(rules), case_count));
}

void WriteRegression(xml::Element* root, const LinearRegressionModel& model) {
  xml::Element* e = root->AddChild("RegressionModel");
  e->SetAttr("caseCount", model.case_count());
  e->SetAttr("ridge", model.ridge_lambda());
  for (const LinearRegressionModel::Feature& feature : model.features()) {
    xml::Element* f = e->AddChild("Feature");
    f->SetAttr("kind", static_cast<int64_t>(feature.kind));
    f->SetAttr("attribute", static_cast<int64_t>(feature.attribute));
    f->SetAttr("state", static_cast<int64_t>(feature.state));
    f->SetAttr("group", static_cast<int64_t>(feature.group));
    f->SetAttr("item", static_cast<int64_t>(feature.item));
  }
  for (const LinearRegressionModel::TargetRegression& reg : model.targets()) {
    xml::Element* t = e->AddChild("Target");
    t->SetAttr("attribute", static_cast<int64_t>(reg.target));
    t->SetAttr("yty", reg.yty);
    t->SetAttr("ySum", reg.y_sum);
    t->SetAttr("weightSum", reg.weight_sum);
    t->AddChild("XtX")->set_text(JoinDoubles(reg.xtx));
    t->AddChild("XtY")->set_text(JoinDoubles(reg.xty));
  }
}

Result<std::unique_ptr<TrainedModel>> ReadRegression(const xml::Element& e) {
  DMX_ASSIGN_OR_RETURN(double case_count, e.GetDoubleAttr("caseCount"));
  DMX_ASSIGN_OR_RETURN(double ridge, e.GetDoubleAttr("ridge"));
  std::vector<LinearRegressionModel::Feature> features;
  for (const xml::Element* f : e.FindChildren("Feature")) {
    LinearRegressionModel::Feature feature;
    DMX_ASSIGN_OR_RETURN(int64_t kind, f->GetLongAttr("kind"));
    feature.kind = static_cast<LinearRegressionModel::Feature::Kind>(kind);
    DMX_ASSIGN_OR_RETURN(int64_t attribute, f->GetLongAttr("attribute"));
    feature.attribute = static_cast<int>(attribute);
    DMX_ASSIGN_OR_RETURN(int64_t state, f->GetLongAttr("state"));
    feature.state = static_cast<int>(state);
    DMX_ASSIGN_OR_RETURN(int64_t group, f->GetLongAttr("group"));
    feature.group = static_cast<int>(group);
    DMX_ASSIGN_OR_RETURN(int64_t item, f->GetLongAttr("item"));
    feature.item = static_cast<int>(item);
    features.push_back(feature);
  }
  std::vector<int> targets;
  auto target_elements = e.FindChildren("Target");
  for (const xml::Element* t : target_elements) {
    DMX_ASSIGN_OR_RETURN(int64_t attr, t->GetLongAttr("attribute"));
    targets.push_back(static_cast<int>(attr));
  }
  auto model = std::make_unique<LinearRegressionModel>(std::move(features),
                                                       targets, ridge);
  model->set_case_count(case_count);
  for (size_t i = 0; i < target_elements.size(); ++i) {
    const xml::Element* t = target_elements[i];
    LinearRegressionModel::TargetRegression& reg = model->mutable_targets()[i];
    DMX_ASSIGN_OR_RETURN(reg.yty, t->GetDoubleAttr("yty"));
    DMX_ASSIGN_OR_RETURN(reg.y_sum, t->GetDoubleAttr("ySum"));
    DMX_ASSIGN_OR_RETURN(reg.weight_sum, t->GetDoubleAttr("weightSum"));
    const xml::Element* xtx = t->FindChild("XtX");
    const xml::Element* xty = t->FindChild("XtY");
    if (xtx != nullptr) reg.xtx = SplitDoubles(xtx->text());
    if (xty != nullptr) reg.xty = SplitDoubles(xty->text());
  }
  return std::unique_ptr<TrainedModel>(std::move(model));
}

void WriteSequence(xml::Element* root, const MarkovSequenceModel& model) {
  xml::Element* e = root->AddChild("SequenceModel");
  e->SetAttr("caseCount", model.case_count());
  e->SetAttr("alpha", model.alpha());
  for (const MarkovSequenceModel::Chain& chain : model.chains()) {
    xml::Element* c = e->AddChild("Chain");
    c->SetAttr("group", static_cast<int64_t>(chain.group));
    c->SetAttr("sequenceCount", chain.sequence_count);
    c->AddChild("Initial")->set_text(JoinDoubles(chain.initial));
    WriteCountTable(c, chain.transitions);
  }
}

Result<std::unique_ptr<TrainedModel>> ReadSequence(const xml::Element& e) {
  DMX_ASSIGN_OR_RETURN(double case_count, e.GetDoubleAttr("caseCount"));
  DMX_ASSIGN_OR_RETURN(double alpha, e.GetDoubleAttr("alpha"));
  std::vector<int> groups;
  auto chain_elements = e.FindChildren("Chain");
  for (const xml::Element* c : chain_elements) {
    DMX_ASSIGN_OR_RETURN(int64_t group, c->GetLongAttr("group"));
    groups.push_back(static_cast<int>(group));
  }
  auto model = std::make_unique<MarkovSequenceModel>(groups, alpha);
  model->set_case_count(case_count);
  for (size_t i = 0; i < chain_elements.size(); ++i) {
    const xml::Element* c = chain_elements[i];
    MarkovSequenceModel::Chain& chain = model->mutable_chains()[i];
    DMX_ASSIGN_OR_RETURN(chain.sequence_count,
                         c->GetDoubleAttr("sequenceCount"));
    const xml::Element* initial = c->FindChild("Initial");
    if (initial != nullptr) chain.initial = SplitDoubles(initial->text());
    DMX_ASSIGN_OR_RETURN(chain.transitions, ReadCountTable(*c));
  }
  return std::unique_ptr<TrainedModel>(std::move(model));
}

}  // namespace

Result<std::string> SerializeModel(const MiningModel& model) {
  xml::Element root("PMML");
  root.SetAttr("version", std::string("1.0"));
  root.SetAttr("x-generator", std::string("OpenDMX"));
  xml::Element* header = root.AddChild("Header");
  header->SetAttr("description",
                  "OpenDMX mining model '" + model.definition().model_name +
                      "' (" + model.definition().service_name + ")");
  root.AddChild("X-Definition")->set_text(model.definition().ToDmx());
  WriteAttributeSet(&root, model.attributes());

  if (model.is_trained()) {
    const TrainedModel* trained = model.trained();
    if (const auto* dt = dynamic_cast<const DecisionTreeModel*>(trained)) {
      WriteDecisionTree(&root, *dt);
    } else if (const auto* nb =
                   dynamic_cast<const NaiveBayesModel*>(trained)) {
      WriteNaiveBayes(&root, *nb);
    } else if (const auto* cl =
                   dynamic_cast<const ClusteringModel*>(trained)) {
      WriteClustering(&root, *cl);
    } else if (const auto* ar =
                   dynamic_cast<const AssociationModel*>(trained)) {
      WriteAssociation(&root, *ar);
    } else if (const auto* lr =
                   dynamic_cast<const LinearRegressionModel*>(trained)) {
      WriteRegression(&root, *lr);
    } else if (const auto* seq =
                   dynamic_cast<const MarkovSequenceModel*>(trained)) {
      WriteSequence(&root, *seq);
    } else {
      return NotSupported() << "service '" << trained->service_name()
                            << "' has no PMML serializer";
    }
  }
  return "<?xml version=\"1.0\"?>\n" + root.ToString();
}

Result<std::unique_ptr<MiningModel>> DeserializeModel(
    const std::string& document, const ServiceRegistry& registry) {
  DMX_ASSIGN_OR_RETURN(xml::ElementPtr root, xml::Parse(document));
  if (root->name() != "PMML") {
    return IOError() << "expected a <PMML> root element, got <" << root->name()
                     << ">";
  }
  const xml::Element* definition_element = root->FindChild("X-Definition");
  if (definition_element == nullptr) {
    return IOError() << "document has no X-Definition element";
  }
  DMX_ASSIGN_OR_RETURN(ModelDefinition definition,
                       ParseCreateMiningModel(definition_element->text()));
  DMX_ASSIGN_OR_RETURN(std::shared_ptr<MiningService> service,
                       registry.Find(definition.service_name));
  DMX_ASSIGN_OR_RETURN(ParamMap params,
                       service->ResolveParams(definition.parameters));
  auto model = std::make_unique<MiningModel>(std::move(definition),
                                             std::move(service),
                                             std::move(params));
  DMX_RETURN_IF_ERROR(ReadAttributeSet(*root, model->mutable_attributes()));

  struct Reader {
    const char* element;
    Result<std::unique_ptr<TrainedModel>> (*read)(const xml::Element&);
  };
  static const Reader kReaders[] = {
      {"TreeModel", ReadDecisionTree},
      {"NaiveBayesModel", ReadNaiveBayes},
      {"ClusteringModel", ReadClustering},
      {"AssociationModel", ReadAssociation},
      {"RegressionModel", ReadRegression},
      {"SequenceModel", ReadSequence},
  };
  for (const Reader& reader : kReaders) {
    const xml::Element* e = root->FindChild(reader.element);
    if (e == nullptr) continue;
    DMX_ASSIGN_OR_RETURN(std::unique_ptr<TrainedModel> trained,
                         reader.read(*e));
    model->AdoptTrainedState(std::move(trained));
    break;
  }
  return model;
}

Status SaveModelToFile(const MiningModel& model, const std::string& path,
                       Env* env) {
  if (env == nullptr) env = Env::Default();
  DMX_ASSIGN_OR_RETURN(std::string document, SerializeModel(model));
  return env->AtomicWriteFile(path, document)
      .WithContext("exporting model '" + model.definition().model_name + "'");
}

Result<std::unique_ptr<MiningModel>> LoadModelFromFile(
    const std::string& path, const ServiceRegistry& registry, Env* env) {
  if (env == nullptr) env = Env::Default();
  Result<std::string> document = env->ReadFileToString(path);
  if (!document.ok()) {
    return document.status().WithContext("importing model from '" + path +
                                         "'");
  }
  return DeserializeModel(*document, registry);
}

}  // namespace dmx
