// PMML-inspired model persistence (paper §4: "We are currently working with
// the PMML group to use PMML format as an open persistence format"). A
// serialized model is one XML document carrying:
//
//   * the DMX definition (re-parsed on load, so the definition grammar is
//     the single source of truth),
//   * the bound attribute dictionaries / discretization bounds,
//   * the trained state of the producing service, rendered with PMML-style
//     model elements (TreeModel, NaiveBayesModel, ClusteringModel,
//     AssociationModel, RegressionModel).
//
// Deserialization reconstructs a fully working MiningModel: predictions,
// content browsing and incremental refresh continue where the saved model
// left off.

#ifndef DMX_PMML_PMML_H_
#define DMX_PMML_PMML_H_

#include <memory>
#include <string>

#include "common/env.h"
#include "core/mining_model.h"
#include "model/service_registry.h"

namespace dmx {

/// Serializes a model (trained or not) into a PMML-style XML document.
Result<std::string> SerializeModel(const MiningModel& model);

/// Reconstructs a model from SerializeModel output. The service is resolved
/// through `registry` (it must be registered, as for CREATE MINING MODEL).
Result<std::unique_ptr<MiningModel>> DeserializeModel(
    const std::string& document, const ServiceRegistry& registry);

/// Convenience file round-trip through `env` (Env::Default() when null).
/// Saves atomically (write-temp, fsync, rename); every write is checked and
/// failures return kIOError/kResourceExhausted naming the path.
Status SaveModelToFile(const MiningModel& model, const std::string& path,
                       Env* env = nullptr);
Result<std::unique_ptr<MiningModel>> LoadModelFromFile(
    const std::string& path, const ServiceRegistry& registry,
    Env* env = nullptr);

}  // namespace dmx

#endif  // DMX_PMML_PMML_H_
