#include "pmml/xml.h"

#include <cctype>
#include <cstdlib>

#include "common/string_util.h"

namespace dmx::xml {

Element* Element::AddChild(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return children_.back().get();
}

void Element::SetAttr(const std::string& key, std::string value) {
  for (auto& [k, v] : attributes_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(key, std::move(value));
}

void Element::SetAttr(const std::string& key, double value) {
  SetAttr(key, FormatDouble(value));
}

void Element::SetAttr(const std::string& key, int64_t value) {
  SetAttr(key, std::to_string(value));
}

const std::string* Element::FindAttr(const std::string& key) const {
  for (const auto& [k, v] : attributes_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<std::string> Element::GetAttr(const std::string& key) const {
  const std::string* v = FindAttr(key);
  if (v == nullptr) {
    return NotFound() << "element <" << name_ << "> has no attribute '" << key
                      << "'";
  }
  return *v;
}

Result<double> Element::GetDoubleAttr(const std::string& key) const {
  DMX_ASSIGN_OR_RETURN(std::string raw, GetAttr(key));
  char* end = nullptr;
  double value = std::strtod(raw.c_str(), &end);
  if (end != raw.c_str() + raw.size()) {
    return IOError() << "attribute " << key << "='" << raw
                     << "' is not a number";
  }
  return value;
}

Result<int64_t> Element::GetLongAttr(const std::string& key) const {
  DMX_ASSIGN_OR_RETURN(double value, GetDoubleAttr(key));
  return static_cast<int64_t>(value);
}

const Element* Element::FindChild(const std::string& name) const {
  for (const ElementPtr& child : children_) {
    if (child->name() == name) return child.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::FindChildren(
    const std::string& name) const {
  std::vector<const Element*> out;
  for (const ElementPtr& child : children_) {
    if (child->name() == name) out.push_back(child.get());
  }
  return out;
}

std::string Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out += c;
    }
  }
  return out;
}

void Element::Write(int indent, std::string* out) const {
  out->append(indent, ' ');
  *out += '<';
  *out += name_;
  for (const auto& [k, v] : attributes_) {
    *out += ' ';
    *out += k;
    *out += "=\"";
    *out += Escape(v);
    *out += '"';
  }
  if (children_.empty() && text_.empty()) {
    *out += "/>\n";
    return;
  }
  *out += '>';
  if (!text_.empty()) *out += Escape(text_);
  if (!children_.empty()) {
    *out += '\n';
    for (const ElementPtr& child : children_) {
      child->Write(indent + 2, out);
    }
    out->append(indent, ' ');
  }
  *out += "</";
  *out += name_;
  *out += ">\n";
}

std::string Element::ToString() const {
  std::string out;
  Write(0, &out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<ElementPtr> ParseDocument() {
    SkipProlog();
    DMX_ASSIGN_OR_RETURN(ElementPtr root, ParseElement());
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return IOError() << "trailing content after the XML root element";
    }
    return root;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  void SkipProlog() {
    SkipWhitespace();
    while (pos_ + 1 < text_.size() && text_[pos_] == '<' &&
           (text_[pos_ + 1] == '?' || text_[pos_ + 1] == '!')) {
      size_t end = text_.find('>', pos_);
      pos_ = end == std::string::npos ? text_.size() : end + 1;
      SkipWhitespace();
    }
  }

  Result<std::string> ParseName() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_' || text_[pos_] == '-' || text_[pos_] == ':' ||
            text_[pos_] == '.')) {
      ++pos_;
    }
    if (pos_ == start) {
      return IOError() << "expected XML name at offset " << pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  std::string Unescape(const std::string& raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i] != '&') {
        out += raw[i];
        continue;
      }
      size_t semi = raw.find(';', i);
      std::string entity =
          semi == std::string::npos ? "" : raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else {
        out += raw[i];
        continue;
      }
      i = semi;
    }
    return out;
  }

  Result<ElementPtr> ParseElement() {
    SkipWhitespace();
    if (pos_ >= text_.size() || text_[pos_] != '<') {
      return IOError() << "expected '<' at offset " << pos_;
    }
    ++pos_;
    DMX_ASSIGN_OR_RETURN(std::string name, ParseName());
    auto element = std::make_unique<Element>(name);
    // Attributes.
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size()) return IOError() << "unterminated element";
      if (text_[pos_] == '/') {
        if (pos_ + 1 >= text_.size() || text_[pos_ + 1] != '>') {
          return IOError() << "malformed empty-element tag";
        }
        pos_ += 2;
        return element;
      }
      if (text_[pos_] == '>') {
        ++pos_;
        break;
      }
      DMX_ASSIGN_OR_RETURN(std::string key, ParseName());
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '=') {
        return IOError() << "expected '=' after attribute '" << key << "'";
      }
      ++pos_;
      SkipWhitespace();
      if (pos_ >= text_.size() || (text_[pos_] != '"' && text_[pos_] != '\'')) {
        return IOError() << "expected quoted attribute value";
      }
      char quote = text_[pos_++];
      size_t end = text_.find(quote, pos_);
      if (end == std::string::npos) {
        return IOError() << "unterminated attribute value";
      }
      element->SetAttr(key, Unescape(text_.substr(pos_, end - pos_)));
      pos_ = end + 1;
    }
    // Content: text and child elements until the closing tag.
    std::string text;
    while (true) {
      if (pos_ >= text_.size()) {
        return IOError() << "unterminated element <" << name << ">";
      }
      if (text_[pos_] == '<') {
        if (pos_ + 1 < text_.size() && text_[pos_ + 1] == '/') {
          pos_ += 2;
          DMX_ASSIGN_OR_RETURN(std::string closing, ParseName());
          if (closing != name) {
            return IOError() << "mismatched closing tag </" << closing
                             << "> for <" << name << ">";
          }
          SkipWhitespace();
          if (pos_ >= text_.size() || text_[pos_] != '>') {
            return IOError() << "malformed closing tag";
          }
          ++pos_;
          element->set_text(Unescape(std::string(Trim(text))));
          return element;
        }
        DMX_ASSIGN_OR_RETURN(ElementPtr child, ParseElement());
        element->AdoptChild(std::move(child));
        continue;
      }
      text += text_[pos_++];
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<ElementPtr> Parse(const std::string& text) {
  Parser parser(text);
  return parser.ParseDocument();
}

}  // namespace dmx::xml
