// Minimal XML element tree: writer + parser sufficient for PMML-style model
// persistence (elements, attributes, text content, escaping). No DTDs,
// namespaces or processing instructions — PMML documents we emit and consume
// never need them.

#ifndef DMX_PMML_XML_H_
#define DMX_PMML_XML_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace dmx::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

/// \brief One XML element: name, attributes, children, text content.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  Element* AddChild(std::string name);
  void AdoptChild(ElementPtr child) { children_.push_back(std::move(child)); }
  const std::vector<ElementPtr>& children() const { return children_; }

  void SetAttr(const std::string& key, std::string value);
  void SetAttr(const std::string& key, double value);
  void SetAttr(const std::string& key, int64_t value);

  /// nullptr when absent.
  const std::string* FindAttr(const std::string& key) const;

  /// Typed attribute access with NotFound/parse errors.
  Result<std::string> GetAttr(const std::string& key) const;
  Result<double> GetDoubleAttr(const std::string& key) const;
  Result<int64_t> GetLongAttr(const std::string& key) const;

  /// First child with the given element name; nullptr when absent.
  const Element* FindChild(const std::string& name) const;

  /// All children with the given element name.
  std::vector<const Element*> FindChildren(const std::string& name) const;

  /// Serializes the subtree with 2-space indentation.
  std::string ToString() const;

 private:
  void Write(int indent, std::string* out) const;

  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<ElementPtr> children_;
};

/// Parses one XML document (a single root element).
Result<ElementPtr> Parse(const std::string& text);

/// Escapes &<>"' for attribute/text contexts.
std::string Escape(const std::string& raw);

}  // namespace dmx::xml

#endif  // DMX_PMML_XML_H_
