# Empty dependencies file for dmx_relational.
# This may be replaced when dependencies are built.
