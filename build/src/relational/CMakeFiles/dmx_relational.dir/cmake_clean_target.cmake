file(REMOVE_RECURSE
  "libdmx_relational.a"
)
