file(REMOVE_RECURSE
  "CMakeFiles/dmx_relational.dir/database.cc.o"
  "CMakeFiles/dmx_relational.dir/database.cc.o.d"
  "CMakeFiles/dmx_relational.dir/expression.cc.o"
  "CMakeFiles/dmx_relational.dir/expression.cc.o.d"
  "CMakeFiles/dmx_relational.dir/sql_executor.cc.o"
  "CMakeFiles/dmx_relational.dir/sql_executor.cc.o.d"
  "CMakeFiles/dmx_relational.dir/sql_parser.cc.o"
  "CMakeFiles/dmx_relational.dir/sql_parser.cc.o.d"
  "CMakeFiles/dmx_relational.dir/table.cc.o"
  "CMakeFiles/dmx_relational.dir/table.cc.o.d"
  "libdmx_relational.a"
  "libdmx_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
