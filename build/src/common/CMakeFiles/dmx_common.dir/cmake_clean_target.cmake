file(REMOVE_RECURSE
  "libdmx_common.a"
)
