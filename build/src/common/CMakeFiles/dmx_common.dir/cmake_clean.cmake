file(REMOVE_RECURSE
  "CMakeFiles/dmx_common.dir/nested_table.cc.o"
  "CMakeFiles/dmx_common.dir/nested_table.cc.o.d"
  "CMakeFiles/dmx_common.dir/rowset.cc.o"
  "CMakeFiles/dmx_common.dir/rowset.cc.o.d"
  "CMakeFiles/dmx_common.dir/schema.cc.o"
  "CMakeFiles/dmx_common.dir/schema.cc.o.d"
  "CMakeFiles/dmx_common.dir/status.cc.o"
  "CMakeFiles/dmx_common.dir/status.cc.o.d"
  "CMakeFiles/dmx_common.dir/string_util.cc.o"
  "CMakeFiles/dmx_common.dir/string_util.cc.o.d"
  "CMakeFiles/dmx_common.dir/tokenizer.cc.o"
  "CMakeFiles/dmx_common.dir/tokenizer.cc.o.d"
  "CMakeFiles/dmx_common.dir/value.cc.o"
  "CMakeFiles/dmx_common.dir/value.cc.o.d"
  "libdmx_common.a"
  "libdmx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
