file(REMOVE_RECURSE
  "libdmx_pmml.a"
)
