# Empty dependencies file for dmx_pmml.
# This may be replaced when dependencies are built.
