file(REMOVE_RECURSE
  "CMakeFiles/dmx_pmml.dir/pmml.cc.o"
  "CMakeFiles/dmx_pmml.dir/pmml.cc.o.d"
  "CMakeFiles/dmx_pmml.dir/xml.cc.o"
  "CMakeFiles/dmx_pmml.dir/xml.cc.o.d"
  "libdmx_pmml.a"
  "libdmx_pmml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_pmml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
