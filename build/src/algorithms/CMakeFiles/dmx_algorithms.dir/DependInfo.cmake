
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algorithms/association_rules.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/association_rules.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/association_rules.cc.o.d"
  "/root/repo/src/algorithms/builtin_services.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/builtin_services.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/builtin_services.cc.o.d"
  "/root/repo/src/algorithms/clustering.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/clustering.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/clustering.cc.o.d"
  "/root/repo/src/algorithms/decision_tree.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/decision_tree.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/decision_tree.cc.o.d"
  "/root/repo/src/algorithms/discretizer.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/discretizer.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/discretizer.cc.o.d"
  "/root/repo/src/algorithms/linear_regression.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/linear_regression.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/linear_regression.cc.o.d"
  "/root/repo/src/algorithms/naive_bayes.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/naive_bayes.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/naive_bayes.cc.o.d"
  "/root/repo/src/algorithms/sequence_analysis.cc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/sequence_analysis.cc.o" "gcc" "src/algorithms/CMakeFiles/dmx_algorithms.dir/sequence_analysis.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/model/CMakeFiles/dmx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
