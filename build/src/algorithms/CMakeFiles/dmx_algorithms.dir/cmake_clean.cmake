file(REMOVE_RECURSE
  "CMakeFiles/dmx_algorithms.dir/association_rules.cc.o"
  "CMakeFiles/dmx_algorithms.dir/association_rules.cc.o.d"
  "CMakeFiles/dmx_algorithms.dir/builtin_services.cc.o"
  "CMakeFiles/dmx_algorithms.dir/builtin_services.cc.o.d"
  "CMakeFiles/dmx_algorithms.dir/clustering.cc.o"
  "CMakeFiles/dmx_algorithms.dir/clustering.cc.o.d"
  "CMakeFiles/dmx_algorithms.dir/decision_tree.cc.o"
  "CMakeFiles/dmx_algorithms.dir/decision_tree.cc.o.d"
  "CMakeFiles/dmx_algorithms.dir/discretizer.cc.o"
  "CMakeFiles/dmx_algorithms.dir/discretizer.cc.o.d"
  "CMakeFiles/dmx_algorithms.dir/linear_regression.cc.o"
  "CMakeFiles/dmx_algorithms.dir/linear_regression.cc.o.d"
  "CMakeFiles/dmx_algorithms.dir/naive_bayes.cc.o"
  "CMakeFiles/dmx_algorithms.dir/naive_bayes.cc.o.d"
  "CMakeFiles/dmx_algorithms.dir/sequence_analysis.cc.o"
  "CMakeFiles/dmx_algorithms.dir/sequence_analysis.cc.o.d"
  "libdmx_algorithms.a"
  "libdmx_algorithms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_algorithms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
