# Empty dependencies file for dmx_algorithms.
# This may be replaced when dependencies are built.
