file(REMOVE_RECURSE
  "libdmx_algorithms.a"
)
