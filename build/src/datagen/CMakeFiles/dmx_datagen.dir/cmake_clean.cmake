file(REMOVE_RECURSE
  "CMakeFiles/dmx_datagen.dir/warehouse.cc.o"
  "CMakeFiles/dmx_datagen.dir/warehouse.cc.o.d"
  "libdmx_datagen.a"
  "libdmx_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
