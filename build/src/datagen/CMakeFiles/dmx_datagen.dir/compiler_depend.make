# Empty compiler generated dependencies file for dmx_datagen.
# This may be replaced when dependencies are built.
