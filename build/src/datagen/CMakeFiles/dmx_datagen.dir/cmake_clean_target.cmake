file(REMOVE_RECURSE
  "libdmx_datagen.a"
)
