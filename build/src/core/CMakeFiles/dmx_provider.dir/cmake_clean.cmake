file(REMOVE_RECURSE
  "CMakeFiles/dmx_provider.dir/provider.cc.o"
  "CMakeFiles/dmx_provider.dir/provider.cc.o.d"
  "libdmx_provider.a"
  "libdmx_provider.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_provider.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
