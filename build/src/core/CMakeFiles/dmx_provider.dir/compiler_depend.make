# Empty compiler generated dependencies file for dmx_provider.
# This may be replaced when dependencies are built.
