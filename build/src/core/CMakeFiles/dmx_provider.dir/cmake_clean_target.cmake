file(REMOVE_RECURSE
  "libdmx_provider.a"
)
