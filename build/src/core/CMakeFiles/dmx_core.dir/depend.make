# Empty dependencies file for dmx_core.
# This may be replaced when dependencies are built.
