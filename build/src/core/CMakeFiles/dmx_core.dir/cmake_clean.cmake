file(REMOVE_RECURSE
  "CMakeFiles/dmx_core.dir/case_binder.cc.o"
  "CMakeFiles/dmx_core.dir/case_binder.cc.o.d"
  "CMakeFiles/dmx_core.dir/caseset_source.cc.o"
  "CMakeFiles/dmx_core.dir/caseset_source.cc.o.d"
  "CMakeFiles/dmx_core.dir/catalog.cc.o"
  "CMakeFiles/dmx_core.dir/catalog.cc.o.d"
  "CMakeFiles/dmx_core.dir/dmx_ast.cc.o"
  "CMakeFiles/dmx_core.dir/dmx_ast.cc.o.d"
  "CMakeFiles/dmx_core.dir/dmx_parser.cc.o"
  "CMakeFiles/dmx_core.dir/dmx_parser.cc.o.d"
  "CMakeFiles/dmx_core.dir/mining_model.cc.o"
  "CMakeFiles/dmx_core.dir/mining_model.cc.o.d"
  "CMakeFiles/dmx_core.dir/prediction_join.cc.o"
  "CMakeFiles/dmx_core.dir/prediction_join.cc.o.d"
  "CMakeFiles/dmx_core.dir/schema_rowsets.cc.o"
  "CMakeFiles/dmx_core.dir/schema_rowsets.cc.o.d"
  "CMakeFiles/dmx_core.dir/udf.cc.o"
  "CMakeFiles/dmx_core.dir/udf.cc.o.d"
  "libdmx_core.a"
  "libdmx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
