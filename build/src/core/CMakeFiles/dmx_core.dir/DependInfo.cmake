
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/case_binder.cc" "src/core/CMakeFiles/dmx_core.dir/case_binder.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/case_binder.cc.o.d"
  "/root/repo/src/core/caseset_source.cc" "src/core/CMakeFiles/dmx_core.dir/caseset_source.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/caseset_source.cc.o.d"
  "/root/repo/src/core/catalog.cc" "src/core/CMakeFiles/dmx_core.dir/catalog.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/catalog.cc.o.d"
  "/root/repo/src/core/dmx_ast.cc" "src/core/CMakeFiles/dmx_core.dir/dmx_ast.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/dmx_ast.cc.o.d"
  "/root/repo/src/core/dmx_parser.cc" "src/core/CMakeFiles/dmx_core.dir/dmx_parser.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/dmx_parser.cc.o.d"
  "/root/repo/src/core/mining_model.cc" "src/core/CMakeFiles/dmx_core.dir/mining_model.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/mining_model.cc.o.d"
  "/root/repo/src/core/prediction_join.cc" "src/core/CMakeFiles/dmx_core.dir/prediction_join.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/prediction_join.cc.o.d"
  "/root/repo/src/core/schema_rowsets.cc" "src/core/CMakeFiles/dmx_core.dir/schema_rowsets.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/schema_rowsets.cc.o.d"
  "/root/repo/src/core/udf.cc" "src/core/CMakeFiles/dmx_core.dir/udf.cc.o" "gcc" "src/core/CMakeFiles/dmx_core.dir/udf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/algorithms/CMakeFiles/dmx_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dmx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/dmx_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/dmx_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
