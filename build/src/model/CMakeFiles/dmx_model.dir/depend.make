# Empty dependencies file for dmx_model.
# This may be replaced when dependencies are built.
