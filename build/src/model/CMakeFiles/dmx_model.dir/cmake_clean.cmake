file(REMOVE_RECURSE
  "CMakeFiles/dmx_model.dir/attribute_set.cc.o"
  "CMakeFiles/dmx_model.dir/attribute_set.cc.o.d"
  "CMakeFiles/dmx_model.dir/column_spec.cc.o"
  "CMakeFiles/dmx_model.dir/column_spec.cc.o.d"
  "CMakeFiles/dmx_model.dir/content_node.cc.o"
  "CMakeFiles/dmx_model.dir/content_node.cc.o.d"
  "CMakeFiles/dmx_model.dir/mining_service.cc.o"
  "CMakeFiles/dmx_model.dir/mining_service.cc.o.d"
  "CMakeFiles/dmx_model.dir/model_definition.cc.o"
  "CMakeFiles/dmx_model.dir/model_definition.cc.o.d"
  "CMakeFiles/dmx_model.dir/service_registry.cc.o"
  "CMakeFiles/dmx_model.dir/service_registry.cc.o.d"
  "libdmx_model.a"
  "libdmx_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
