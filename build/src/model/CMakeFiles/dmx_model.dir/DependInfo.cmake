
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/attribute_set.cc" "src/model/CMakeFiles/dmx_model.dir/attribute_set.cc.o" "gcc" "src/model/CMakeFiles/dmx_model.dir/attribute_set.cc.o.d"
  "/root/repo/src/model/column_spec.cc" "src/model/CMakeFiles/dmx_model.dir/column_spec.cc.o" "gcc" "src/model/CMakeFiles/dmx_model.dir/column_spec.cc.o.d"
  "/root/repo/src/model/content_node.cc" "src/model/CMakeFiles/dmx_model.dir/content_node.cc.o" "gcc" "src/model/CMakeFiles/dmx_model.dir/content_node.cc.o.d"
  "/root/repo/src/model/mining_service.cc" "src/model/CMakeFiles/dmx_model.dir/mining_service.cc.o" "gcc" "src/model/CMakeFiles/dmx_model.dir/mining_service.cc.o.d"
  "/root/repo/src/model/model_definition.cc" "src/model/CMakeFiles/dmx_model.dir/model_definition.cc.o" "gcc" "src/model/CMakeFiles/dmx_model.dir/model_definition.cc.o.d"
  "/root/repo/src/model/service_registry.cc" "src/model/CMakeFiles/dmx_model.dir/service_registry.cc.o" "gcc" "src/model/CMakeFiles/dmx_model.dir/service_registry.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
