file(REMOVE_RECURSE
  "libdmx_model.a"
)
