
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/shape/shape_executor.cc" "src/shape/CMakeFiles/dmx_shape.dir/shape_executor.cc.o" "gcc" "src/shape/CMakeFiles/dmx_shape.dir/shape_executor.cc.o.d"
  "/root/repo/src/shape/shape_parser.cc" "src/shape/CMakeFiles/dmx_shape.dir/shape_parser.cc.o" "gcc" "src/shape/CMakeFiles/dmx_shape.dir/shape_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/dmx_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
