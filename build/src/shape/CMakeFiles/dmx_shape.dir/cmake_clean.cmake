file(REMOVE_RECURSE
  "CMakeFiles/dmx_shape.dir/shape_executor.cc.o"
  "CMakeFiles/dmx_shape.dir/shape_executor.cc.o.d"
  "CMakeFiles/dmx_shape.dir/shape_parser.cc.o"
  "CMakeFiles/dmx_shape.dir/shape_parser.cc.o.d"
  "libdmx_shape.a"
  "libdmx_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
