# Empty dependencies file for dmx_shape.
# This may be replaced when dependencies are built.
