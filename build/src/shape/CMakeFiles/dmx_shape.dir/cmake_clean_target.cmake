file(REMOVE_RECURSE
  "libdmx_shape.a"
)
