
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/dmx_provider.dir/DependInfo.cmake"
  "/root/repo/build/src/pmml/CMakeFiles/dmx_pmml.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/dmx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/algorithms/CMakeFiles/dmx_algorithms.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/dmx_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/dmx_model.dir/DependInfo.cmake"
  "/root/repo/build/src/shape/CMakeFiles/dmx_shape.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/dmx_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
