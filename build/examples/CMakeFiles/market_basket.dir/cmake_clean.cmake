file(REMOVE_RECURSE
  "CMakeFiles/market_basket.dir/market_basket.cpp.o"
  "CMakeFiles/market_basket.dir/market_basket.cpp.o.d"
  "market_basket"
  "market_basket.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/market_basket.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
