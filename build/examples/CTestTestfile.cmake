# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;8;dmx_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_market_basket "/root/repo/build/examples/market_basket")
set_tests_properties(example_market_basket PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;9;dmx_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_customer_segmentation "/root/repo/build/examples/customer_segmentation")
set_tests_properties(example_customer_segmentation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;10;dmx_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_model_lifecycle "/root/repo/build/examples/model_lifecycle")
set_tests_properties(example_model_lifecycle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;11;dmx_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_next_purchase "/root/repo/build/examples/next_purchase")
set_tests_properties(example_next_purchase PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;5;add_test;/root/repo/examples/CMakeLists.txt;12;dmx_add_example;/root/repo/examples/CMakeLists.txt;0;")
