# Empty compiler generated dependencies file for dmxsh.
# This may be replaced when dependencies are built.
