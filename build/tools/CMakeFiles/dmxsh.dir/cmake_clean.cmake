file(REMOVE_RECURSE
  "CMakeFiles/dmxsh.dir/dmxsh.cpp.o"
  "CMakeFiles/dmxsh.dir/dmxsh.cpp.o.d"
  "dmxsh"
  "dmxsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmxsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
