# Empty dependencies file for dmxsh.
# This may be replaced when dependencies are built.
