# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/status_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/string_util_test[1]_include.cmake")
include("/root/repo/build/tests/tokenizer_test[1]_include.cmake")
include("/root/repo/build/tests/sql_test[1]_include.cmake")
include("/root/repo/build/tests/shape_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/discretizer_test[1]_include.cmake")
include("/root/repo/build/tests/naive_bayes_test[1]_include.cmake")
include("/root/repo/build/tests/decision_tree_test[1]_include.cmake")
include("/root/repo/build/tests/clustering_test[1]_include.cmake")
include("/root/repo/build/tests/association_test[1]_include.cmake")
include("/root/repo/build/tests/linear_regression_test[1]_include.cmake")
include("/root/repo/build/tests/dmx_parser_test[1]_include.cmake")
include("/root/repo/build/tests/case_binder_test[1]_include.cmake")
include("/root/repo/build/tests/prediction_join_test[1]_include.cmake")
include("/root/repo/build/tests/mining_model_test[1]_include.cmake")
include("/root/repo/build/tests/xml_test[1]_include.cmake")
include("/root/repo/build/tests/pmml_test[1]_include.cmake")
include("/root/repo/build/tests/schema_rowsets_test[1]_include.cmake")
include("/root/repo/build/tests/provider_test[1]_include.cmake")
include("/root/repo/build/tests/sequence_analysis_test[1]_include.cmake")
include("/root/repo/build/tests/sql_extensions_test[1]_include.cmake")
include("/root/repo/build/tests/content_invariants_test[1]_include.cmake")
include("/root/repo/build/tests/udf_inference_test[1]_include.cmake")
include("/root/repo/build/tests/robustness_test[1]_include.cmake")
