# Empty dependencies file for content_invariants_test.
# This may be replaced when dependencies are built.
