file(REMOVE_RECURSE
  "CMakeFiles/content_invariants_test.dir/content_invariants_test.cc.o"
  "CMakeFiles/content_invariants_test.dir/content_invariants_test.cc.o.d"
  "content_invariants_test"
  "content_invariants_test.pdb"
  "content_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/content_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
