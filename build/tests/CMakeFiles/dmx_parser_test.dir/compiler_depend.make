# Empty compiler generated dependencies file for dmx_parser_test.
# This may be replaced when dependencies are built.
