file(REMOVE_RECURSE
  "CMakeFiles/dmx_parser_test.dir/dmx_parser_test.cc.o"
  "CMakeFiles/dmx_parser_test.dir/dmx_parser_test.cc.o.d"
  "dmx_parser_test"
  "dmx_parser_test.pdb"
  "dmx_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmx_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
