# Empty compiler generated dependencies file for udf_inference_test.
# This may be replaced when dependencies are built.
