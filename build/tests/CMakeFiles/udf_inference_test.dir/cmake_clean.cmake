file(REMOVE_RECURSE
  "CMakeFiles/udf_inference_test.dir/udf_inference_test.cc.o"
  "CMakeFiles/udf_inference_test.dir/udf_inference_test.cc.o.d"
  "udf_inference_test"
  "udf_inference_test.pdb"
  "udf_inference_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/udf_inference_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
