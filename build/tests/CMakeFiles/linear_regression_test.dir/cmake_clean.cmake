file(REMOVE_RECURSE
  "CMakeFiles/linear_regression_test.dir/linear_regression_test.cc.o"
  "CMakeFiles/linear_regression_test.dir/linear_regression_test.cc.o.d"
  "linear_regression_test"
  "linear_regression_test.pdb"
  "linear_regression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_regression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
