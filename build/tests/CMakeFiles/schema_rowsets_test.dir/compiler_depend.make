# Empty compiler generated dependencies file for schema_rowsets_test.
# This may be replaced when dependencies are built.
