file(REMOVE_RECURSE
  "CMakeFiles/schema_rowsets_test.dir/schema_rowsets_test.cc.o"
  "CMakeFiles/schema_rowsets_test.dir/schema_rowsets_test.cc.o.d"
  "schema_rowsets_test"
  "schema_rowsets_test.pdb"
  "schema_rowsets_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_rowsets_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
