file(REMOVE_RECURSE
  "CMakeFiles/pmml_test.dir/pmml_test.cc.o"
  "CMakeFiles/pmml_test.dir/pmml_test.cc.o.d"
  "pmml_test"
  "pmml_test.pdb"
  "pmml_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmml_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
