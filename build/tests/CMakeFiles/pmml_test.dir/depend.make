# Empty dependencies file for pmml_test.
# This may be replaced when dependencies are built.
