file(REMOVE_RECURSE
  "CMakeFiles/sequence_analysis_test.dir/sequence_analysis_test.cc.o"
  "CMakeFiles/sequence_analysis_test.dir/sequence_analysis_test.cc.o.d"
  "sequence_analysis_test"
  "sequence_analysis_test.pdb"
  "sequence_analysis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sequence_analysis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
