# Empty dependencies file for sequence_analysis_test.
# This may be replaced when dependencies are built.
