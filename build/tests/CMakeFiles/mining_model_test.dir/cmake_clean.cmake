file(REMOVE_RECURSE
  "CMakeFiles/mining_model_test.dir/mining_model_test.cc.o"
  "CMakeFiles/mining_model_test.dir/mining_model_test.cc.o.d"
  "mining_model_test"
  "mining_model_test.pdb"
  "mining_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mining_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
