# Empty dependencies file for mining_model_test.
# This may be replaced when dependencies are built.
