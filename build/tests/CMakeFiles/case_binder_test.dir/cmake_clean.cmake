file(REMOVE_RECURSE
  "CMakeFiles/case_binder_test.dir/case_binder_test.cc.o"
  "CMakeFiles/case_binder_test.dir/case_binder_test.cc.o.d"
  "case_binder_test"
  "case_binder_test.pdb"
  "case_binder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/case_binder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
