file(REMOVE_RECURSE
  "CMakeFiles/prediction_join_test.dir/prediction_join_test.cc.o"
  "CMakeFiles/prediction_join_test.dir/prediction_join_test.cc.o.d"
  "prediction_join_test"
  "prediction_join_test.pdb"
  "prediction_join_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prediction_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
