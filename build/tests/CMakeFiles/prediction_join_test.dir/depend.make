# Empty dependencies file for prediction_join_test.
# This may be replaced when dependencies are built.
