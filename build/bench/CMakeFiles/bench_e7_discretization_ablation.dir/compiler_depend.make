# Empty compiler generated dependencies file for bench_e7_discretization_ablation.
# This may be replaced when dependencies are built.
