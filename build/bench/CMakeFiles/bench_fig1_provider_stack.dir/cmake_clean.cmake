file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_provider_stack.dir/bench_fig1_provider_stack.cc.o"
  "CMakeFiles/bench_fig1_provider_stack.dir/bench_fig1_provider_stack.cc.o.d"
  "bench_fig1_provider_stack"
  "bench_fig1_provider_stack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_provider_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
