# Empty compiler generated dependencies file for bench_e2_flat_vs_nested_quality.
# This may be replaced when dependencies are built.
