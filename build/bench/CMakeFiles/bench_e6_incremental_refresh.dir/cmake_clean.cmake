file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_incremental_refresh.dir/bench_e6_incremental_refresh.cc.o"
  "CMakeFiles/bench_e6_incremental_refresh.dir/bench_e6_incremental_refresh.cc.o.d"
  "bench_e6_incremental_refresh"
  "bench_e6_incremental_refresh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_incremental_refresh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
