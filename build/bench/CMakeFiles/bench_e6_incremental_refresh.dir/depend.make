# Empty dependencies file for bench_e6_incremental_refresh.
# This may be replaced when dependencies are built.
