file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_streaming_cases.dir/bench_e3_streaming_cases.cc.o"
  "CMakeFiles/bench_e3_streaming_cases.dir/bench_e3_streaming_cases.cc.o.d"
  "bench_e3_streaming_cases"
  "bench_e3_streaming_cases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_streaming_cases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
