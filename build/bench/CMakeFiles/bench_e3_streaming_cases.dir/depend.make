# Empty dependencies file for bench_e3_streaming_cases.
# This may be replaced when dependencies are built.
