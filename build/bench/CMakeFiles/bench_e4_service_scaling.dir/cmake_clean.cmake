file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_service_scaling.dir/bench_e4_service_scaling.cc.o"
  "CMakeFiles/bench_e4_service_scaling.dir/bench_e4_service_scaling.cc.o.d"
  "bench_e4_service_scaling"
  "bench_e4_service_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_service_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
