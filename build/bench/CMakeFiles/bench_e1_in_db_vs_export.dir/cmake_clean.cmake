file(REMOVE_RECURSE
  "CMakeFiles/bench_e1_in_db_vs_export.dir/bench_e1_in_db_vs_export.cc.o"
  "CMakeFiles/bench_e1_in_db_vs_export.dir/bench_e1_in_db_vs_export.cc.o.d"
  "bench_e1_in_db_vs_export"
  "bench_e1_in_db_vs_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_in_db_vs_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
