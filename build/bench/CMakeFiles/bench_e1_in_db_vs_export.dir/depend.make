# Empty dependencies file for bench_e1_in_db_vs_export.
# This may be replaced when dependencies are built.
