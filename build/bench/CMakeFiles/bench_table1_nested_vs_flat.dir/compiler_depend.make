# Empty compiler generated dependencies file for bench_table1_nested_vs_flat.
# This may be replaced when dependencies are built.
