file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_nested_vs_flat.dir/bench_table1_nested_vs_flat.cc.o"
  "CMakeFiles/bench_table1_nested_vs_flat.dir/bench_table1_nested_vs_flat.cc.o.d"
  "bench_table1_nested_vs_flat"
  "bench_table1_nested_vs_flat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_nested_vs_flat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
