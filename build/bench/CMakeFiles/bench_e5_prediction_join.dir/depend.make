# Empty dependencies file for bench_e5_prediction_join.
# This may be replaced when dependencies are built.
