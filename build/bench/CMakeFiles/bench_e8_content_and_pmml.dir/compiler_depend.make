# Empty compiler generated dependencies file for bench_e8_content_and_pmml.
# This may be replaced when dependencies are built.
