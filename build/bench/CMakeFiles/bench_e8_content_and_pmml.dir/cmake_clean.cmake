file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_content_and_pmml.dir/bench_e8_content_and_pmml.cc.o"
  "CMakeFiles/bench_e8_content_and_pmml.dir/bench_e8_content_and_pmml.cc.o.d"
  "bench_e8_content_and_pmml"
  "bench_e8_content_and_pmml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_content_and_pmml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
