// Market-basket analysis: the paper's "set of products that the customer is
// likely to buy" scenario (§3.2.4). An association-rules model is trained on
// purchase baskets (a PREDICT nested table), its discovered rules are browsed
// through the content graph, and cross-sell recommendations are produced with
// Predict([Product Purchases], n) in a NATURAL PREDICTION JOIN.

#include <cstdlib>
#include <iostream>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace {

dmx::Rowset Run(dmx::Connection* conn, const std::string& command) {
  auto result = conn->Execute(command);
  if (!result.ok()) {
    std::cerr << "command failed: " << result.status().ToString() << "\n"
              << command << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  dmx::Provider provider;
  auto conn = provider.Connect();

  dmx::datagen::WarehouseConfig config;
  config.num_customers = 3000;
  config.avg_purchases = 6.0;
  auto status = dmx::datagen::PopulateWarehouse(provider.database(), config);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  std::cout << "== 1. Define the basket model ==\n";
  Run(conn.get(), R"(
    CREATE MINING MODEL [Cross Sell] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name]
      ) PREDICT
    ) USING Association_Rules(MINIMUM_SUPPORT = 0.05,
                              MINIMUM_PROBABILITY = 0.5,
                              MAXIMUM_ITEMSET_SIZE = 3)
  )");

  std::cout << "== 2. Train on 3000 customer baskets ==\n";
  Run(conn.get(), R"(
    INSERT INTO [Cross Sell] (
      [Customer ID], [Gender],
      [Product Purchases]([Product Name], [Product Type]))
    SHAPE
      {SELECT [Customer ID], [Gender] FROM Customers ORDER BY [Customer ID]}
    APPEND (
      {SELECT [CustID], [Product Name], [Product Type] FROM Sales
       ORDER BY [CustID]}
      RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
  )");

  std::cout << "== 3. Discovered rules (content browsing) ==\n";
  dmx::Rowset content = Run(conn.get(), "SELECT * FROM [Cross Sell].CONTENT");
  // The RELATED TO column also yields (trivially certain) product => type
  // rules; show the behavioural ones first.
  int rules_shown = 0;
  for (int pass = 0; pass < 2 && rules_shown < 12; ++pass) {
    for (const dmx::Row& row : content.rows()) {
      if (row[3].ToString() != "Rule") continue;
      bool trivial = row[8].double_value() > 0.999;
      if ((pass == 0) == trivial) continue;
      std::cout << "  " << row[4].ToString()
                << "  (confidence=" << row[8].ToString()
                << ", support=" << row[7].ToString() << ")\n";
      if (++rules_shown >= 12) break;
    }
  }
  if (rules_shown == 0) {
    std::cout << "  (no rules above the thresholds)\n";
  }

  std::cout << "\n== 4. Recommendations for three sample baskets ==\n";
  // Build a tiny prospect table: customers whose baskets we type in by hand.
  Run(conn.get(), "CREATE TABLE Prospects (Id LONG, Gender TEXT)");
  Run(conn.get(), "CREATE TABLE ProspectBaskets (Id LONG, Product TEXT)");
  Run(conn.get(), R"(
    INSERT INTO Prospects VALUES (1, 'Male'), (2, 'Female'), (3, 'Male'))");
  Run(conn.get(), R"(
    INSERT INTO ProspectBaskets VALUES
      (1, 'TV'), (1, 'Beer'),
      (2, 'Seeds'), (2, 'Coffee'),
      (3, 'Video Game'))");

  dmx::Rowset recommendations = Run(conn.get(), R"(
    SELECT FLATTENED t.[Id],
           TopCount(Predict([Product Purchases], 20), $Probability, 3)
             AS [Recommended]
    FROM [Cross Sell]
    PREDICTION JOIN
      (SHAPE {SELECT [Id], [Gender] FROM Prospects ORDER BY [Id]}
       APPEND ({SELECT [Id] AS [BId], [Product] FROM ProspectBaskets
                ORDER BY [BId]}
               RELATE [Id] TO [BId]) AS [Basket]) AS t
    ON [Cross Sell].[Gender] = t.[Gender] AND
       [Cross Sell].[Product Purchases].[Product Name] = t.[Basket].[Product]
  )");
  std::cout << recommendations.ToString() << "\n";
  std::cout << "(planted bundles: TV=>VCR, Beer=>Ham, Seeds=>Garden Tools, "
               "Video Game=>Game Console)\n";
  return 0;
}
