// Next-purchase prediction: the "sequence analysis" capability class the
// paper lists among provider capabilities (§3), driven by the SEQUENCE_TIME
// content type (§3.2.2). A Markov sequence model is trained on time-ordered
// purchase histories, its transition rules are browsed, and next-purchase
// recommendations are produced — including for an ad-hoc shopper typed in as
// a prediction-query over hand-built tables, filtered by confidence with the
// prediction WHERE clause.

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace {

dmx::Rowset Run(dmx::Connection* conn, const std::string& command) {
  auto result = conn->Execute(command);
  if (!result.ok()) {
    std::cerr << "command failed: " << result.status().ToString() << "\n"
              << command << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  dmx::Provider provider;
  auto conn = provider.Connect();
  dmx::datagen::WarehouseConfig config;
  config.num_customers = 4000;
  auto status = dmx::datagen::PopulateWarehouse(provider.database(), config);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  std::cout << "== 1. Define and train the sequence model ==\n";
  Run(conn.get(), R"(
    CREATE MINING MODEL [Next Purchase] (
      [Customer ID] LONG KEY,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Purchase Time] DOUBLE SEQUENCE_TIME
      ) PREDICT
    ) USING Sequence_Analysis(ALPHA = 0.25))");
  Run(conn.get(), R"(
    INSERT INTO [Next Purchase]
    SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
    APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
             ORDER BY [CustID]}
            RELATE [Customer ID] TO [CustID]) AS [Product Purchases])");
  std::cout << "trained on 4000 time-ordered purchase histories\n\n";

  std::cout << "== 2. Strongest learned transitions (content graph) ==\n";
  dmx::Rowset content = Run(conn.get(),
                            "SELECT * FROM [Next Purchase].CONTENT");
  struct RuleRow {
    std::string caption;
    double probability;
    double support;
  };
  std::vector<RuleRow> rules;
  for (const dmx::Row& row : content.rows()) {
    if (row[3].ToString() != "Rule") continue;
    rules.push_back({row[4].ToString(), row[8].double_value(),
                     row[7].double_value()});
  }
  std::sort(rules.begin(), rules.end(), [](const RuleRow& a, const RuleRow& b) {
    return a.probability * a.support > b.probability * b.support;
  });
  for (size_t i = 0; i < rules.size() && i < 8; ++i) {
    std::cout << "  " << rules[i].caption << "  (p=" << rules[i].probability
              << ", support=" << rules[i].support << ")\n";
  }
  std::cout << "  (planted orders: TV then VCR, Beer then Ham, Seeds then "
               "Garden Tools, ...)\n\n";

  std::cout << "== 3. What will existing customers buy next? ==\n";
  dmx::Rowset next = Run(conn.get(), R"(
    SELECT TOP 5 t.[Customer ID], Predict([Product Purchases], 1) AS [Next]
    FROM [Next Purchase]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID] FROM Customers ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Purchase Time] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
    WHERE PredictProbability([Product Purchases]) > 0.2)");
  std::cout << next.ToString(/*expand_nested=*/true) << "\n";
  std::cout << "(WHERE keeps only confident recommendations)\n\n";

  std::cout << "== 4. An ad-hoc shopper who just bought a TV ==\n";
  Run(conn.get(), "CREATE TABLE Shopper (Id LONG)");
  Run(conn.get(), "INSERT INTO Shopper VALUES (1)");
  Run(conn.get(), "CREATE TABLE ShopperBasket (Id LONG, Product TEXT, "
                  "Seen LONG)");
  Run(conn.get(), "INSERT INTO ShopperBasket VALUES (1, 'TV', 1)");
  dmx::Rowset adhoc = Run(conn.get(), R"(
    SELECT Predict([Product Purchases], 3) AS [Recommended]
    FROM [Next Purchase]
    PREDICTION JOIN
      (SHAPE {SELECT [Id] FROM Shopper ORDER BY [Id]}
       APPEND ({SELECT [Id] AS [BId], [Product], [Seen] FROM ShopperBasket
                ORDER BY [BId]}
               RELATE [Id] TO [BId]) AS [Basket]) AS t
    ON [Next Purchase].[Product Purchases].[Product Name] =
         t.[Basket].[Product] AND
       [Next Purchase].[Product Purchases].[Purchase Time] =
         t.[Basket].[Seen])");
  std::cout << adhoc.ToString(/*expand_nested=*/true);
  return 0;
}
