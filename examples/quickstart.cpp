// Quickstart: the paper's running example, end to end.
//
// Builds the 3-table customer warehouse from Table 1, defines the
// [Age Prediction] decision-tree model of §3.2 over a hierarchical caseset,
// populates it with INSERT INTO ... SHAPE (§3.3), predicts ages with a
// PREDICTION JOIN, and browses the learned tree through
// SELECT * FROM [Age Prediction].CONTENT.

#include <cstdlib>
#include <iostream>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace {

dmx::Rowset Run(dmx::Connection* conn, const std::string& command) {
  auto result = conn->Execute(command);
  if (!result.ok()) {
    std::cerr << "command failed: " << result.status().ToString() << "\n"
              << command << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  dmx::Provider provider;
  auto conn = provider.Connect();

  // A realistic warehouse: 2000 customers drawn from latent segments, plus
  // 500 held-out customers we will predict for.
  dmx::datagen::WarehouseConfig train_config;
  train_config.num_customers = 2000;
  auto status = dmx::datagen::PopulateWarehouse(provider.database(),
                                                train_config);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }
  dmx::datagen::WarehouseConfig test_config;
  test_config.num_customers = 500;
  test_config.seed = 7;
  test_config.first_customer_id = 1000000;
  test_config.customers_table = "TestCustomers";
  test_config.sales_table = "TestSales";
  test_config.cars_table = "TestCars";
  status = dmx::datagen::PopulateWarehouse(provider.database(), test_config);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  std::cout << "== 1. Define the mining model (paper §3.2) ==\n";
  Run(conn.get(), R"(
    CREATE MINING MODEL [Age Prediction] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Age] DOUBLE DISCRETIZED(EQUAL_FREQUENCIES, 4) PREDICT,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Quantity] DOUBLE NORMAL CONTINUOUS,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name]
      )
    ) USING [Decision_Trees_101](MINIMUM_SUPPORT = 25.0)
  )");
  std::cout << "model [Age Prediction] created\n\n";

  std::cout << "== 2. Populate it from the warehouse (paper §3.3) ==\n";
  Run(conn.get(), R"(
    INSERT INTO [Age Prediction] (
      [Customer ID], [Gender], [Age],
      [Product Purchases]([Product Name], [Quantity], [Product Type]))
    SHAPE
      {SELECT [Customer ID], [Gender], [Age] FROM Customers
       ORDER BY [Customer ID]}
    APPEND (
      {SELECT [CustID], [Product Name], [Quantity], [Product Type] FROM Sales
       ORDER BY [CustID]}
      RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
  )");
  auto models = conn->GetSchemaRowset(dmx::SchemaRowsetKind::kMiningModels);
  std::cout << models->ToString() << "\n";

  std::cout << "== 3. Predict ages for unseen customers ==\n";
  dmx::Rowset predictions = Run(conn.get(), R"(
    SELECT TOP 8 t.[Customer ID], [Age Prediction].[Age],
           PredictProbability([Age]) AS [Probability],
           PredictSupport([Age]) AS [Support],
           RangeMid([Age]) AS [Age Bucket Mid]
    FROM [Age Prediction]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender] FROM TestCustomers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Quantity], [Product Type]
                FROM TestSales ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
  )");
  std::cout << predictions.ToString() << "\n";

  std::cout << "== 4. Full prediction histogram for one customer ==\n";
  dmx::Rowset histogram = Run(conn.get(), R"(
    SELECT FLATTENED TOP 1 t.[Customer ID],
           PredictHistogram([Age]) AS [H]
    FROM [Age Prediction]
    NATURAL PREDICTION JOIN
      (SELECT [Customer ID], [Gender] FROM TestCustomers) AS t
  )");
  std::cout << histogram.ToString() << "\n";

  std::cout << "== 5. Browse the learned tree (paper §3.3) ==\n";
  dmx::Rowset content = Run(conn.get(),
                            "SELECT * FROM [Age Prediction].CONTENT");
  size_t shown = 0;
  for (const dmx::Row& row : content.rows()) {
    if (shown++ >= 10) break;
    std::cout << "  [" << row[3].ToString() << "] "
              << (row[5].ToString().empty() ? row[4].ToString()
                                            : row[5].ToString())
              << " (support=" << row[7].ToString() << ")\n";
  }
  std::cout << "  ... " << content.num_rows() << " content nodes total\n";
  return 0;
}
