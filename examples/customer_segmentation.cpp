// Customer segmentation: the paper's "segmentation model" class (§3.3). An
// EM clustering model is trained over demographics and purchase behaviour,
// segments are inspected through the content graph, customers are assigned
// to segments with the Cluster() / ClusterProbability() UDFs, and the
// recovered segments are compared against the generator's planted ones.

#include <cstdlib>
#include <iostream>
#include <map>
#include <vector>

#include "core/provider.h"
#include "datagen/warehouse.h"

namespace {

dmx::Rowset Run(dmx::Connection* conn, const std::string& command) {
  auto result = conn->Execute(command);
  if (!result.ok()) {
    std::cerr << "command failed: " << result.status().ToString() << "\n"
              << command << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

}  // namespace

int main() {
  dmx::Provider provider;
  auto conn = provider.Connect();

  constexpr int kCustomers = 2000;
  constexpr uint64_t kSeed = 42;
  dmx::datagen::WarehouseConfig config;
  config.num_customers = kCustomers;
  config.seed = kSeed;
  auto status = dmx::datagen::PopulateWarehouse(provider.database(), config);
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    return 1;
  }

  std::cout << "== 1. Define and train the segmentation model ==\n";
  Run(conn.get(), R"(
    CREATE MINING MODEL [Customer Segments] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Age] DOUBLE CONTINUOUS,
      [Income] DOUBLE NORMAL CONTINUOUS,
      [Customer Loyalty] LONG ORDERED,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name]
      )
    ) USING Clustering(CLUSTER_COUNT = 4, CLUSTER_METHOD = 'EM',
                       MAX_ITERATIONS = 40, SEED = 17)
  )");
  Run(conn.get(), R"(
    INSERT INTO [Customer Segments]
    SHAPE
      {SELECT [Customer ID], [Gender], [Age], [Income], [Customer Loyalty]
       FROM Customers ORDER BY [Customer ID]}
    APPEND (
      {SELECT [CustID], [Product Name], [Product Type] FROM Sales
       ORDER BY [CustID]}
      RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
  )");

  std::cout << "== 2. Inspect the segments (content graph) ==\n";
  dmx::Rowset content = Run(
      conn.get(), "SELECT * FROM [Customer Segments].CONTENT");
  for (const dmx::Row& row : content.rows()) {
    if (row[3].ToString() != "Cluster") continue;
    std::cout << "  " << row[4].ToString() << ": support=" << row[7].ToString()
              << " (" << row[9].ToString() << " of cases)\n";
    // Show the age component of the cluster from its NODE_DISTRIBUTION.
    const auto& dist = row[12].table_value();
    for (const dmx::Row& entry : dist->rows()) {
      if (entry[0].ToString() == "Age") {
        std::cout << "      mean age " << entry[1].ToString()
                  << " (variance " << entry[4].ToString() << ")\n";
      }
    }
  }

  std::cout << "\n== 3. Assign customers to segments ==\n";
  dmx::Rowset assignments = Run(conn.get(), R"(
    SELECT t.[Customer ID], Cluster() AS [Segment],
           ClusterProbability() AS [P]
    FROM [Customer Segments]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender], [Age], [Income],
              [Customer Loyalty] FROM Customers ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
  )");
  std::cout << "  first assignments:\n";
  for (size_t r = 0; r < 5 && r < assignments.num_rows(); ++r) {
    std::cout << "    customer " << assignments.at(r, 0).ToString() << " -> "
              << assignments.at(r, 1).ToString() << " (p="
              << assignments.at(r, 2).ToString() << ")\n";
  }

  std::cout << "\n== 4. Recovered vs planted segments ==\n";
  // Cross-tabulate cluster assignment against the generator's latent segment.
  std::map<std::string, std::vector<int>> crosstab;
  for (size_t r = 0; r < assignments.num_rows(); ++r) {
    int64_t id = assignments.at(r, 0).long_value();
    int planted = dmx::datagen::SegmentOfCustomer(id, kSeed, kCustomers);
    auto& row = crosstab[assignments.at(r, 1).ToString()];
    row.resize(dmx::datagen::kNumSegments, 0);
    row[planted]++;
  }
  std::cout << "  cluster        planted segment counts [0..3]\n";
  int pure = 0;
  for (const auto& [cluster, counts] : crosstab) {
    std::cout << "  " << cluster << ":  ";
    int best = 0;
    int total = 0;
    for (int c : counts) {
      std::cout << c << " ";
      best = std::max(best, c);
      total += c;
    }
    std::cout << "\n";
    pure += best;
    (void)total;
  }
  std::cout << "  purity (majority-planted fraction): "
            << static_cast<double>(pure) / assignments.num_rows() << "\n";
  return 0;
}
