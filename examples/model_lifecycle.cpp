// Model lifecycle and deployment: the management story the paper argues past
// work ignored (§1: "how to store, maintain, and refresh [a model] as data
// in the warehouse is updated"). This example:
//
//   1. trains an incremental Naive-Bayes model,
//   2. refreshes it with new warehouse data via a second INSERT INTO,
//   3. persists it in the PMML-inspired XML format (§4),
//   4. reloads it in a fresh provider (a "deployment" server) and keeps
//      predicting and refreshing there,
//   5. shows the provider self-description consumers would use to discover
//      all of this (schema rowsets).

#include <cstdlib>
#include <iostream>

#include "core/provider.h"
#include "datagen/warehouse.h"
#include "pmml/pmml.h"

namespace {

dmx::Rowset Run(dmx::Connection* conn, const std::string& command) {
  auto result = conn->Execute(command);
  if (!result.ok()) {
    std::cerr << "command failed: " << result.status().ToString() << "\n"
              << command << "\n";
    std::exit(1);
  }
  return std::move(result).value();
}

void Check(const dmx::Status& status) {
  if (!status.ok()) {
    std::cerr << status.ToString() << "\n";
    std::exit(1);
  }
}

constexpr const char* kInsert = R"(
  INSERT INTO [Loyalty Model]
  SHAPE
    {SELECT [Customer ID], [Gender], [Age], [Income], [Customer Loyalty]
     FROM %TABLE% ORDER BY [Customer ID]}
  APPEND (
    {SELECT [CustID], [Product Name], [Product Type] FROM %SALES%
     ORDER BY [CustID]}
    RELATE [Customer ID] TO [CustID]) AS [Product Purchases]
)";

std::string InsertFrom(const std::string& customers, const std::string& sales) {
  std::string command = kInsert;
  command.replace(command.find("%TABLE%"), 7, customers);
  command.replace(command.find("%SALES%"), 7, sales);
  return command;
}

}  // namespace

int main() {
  dmx::Provider dev;  // The "development" server of Figure 1.
  auto conn = dev.Connect();

  dmx::datagen::WarehouseConfig initial;
  initial.num_customers = 1500;
  Check(dmx::datagen::PopulateWarehouse(dev.database(), initial));

  std::cout << "== 1. Create + train (incremental service) ==\n";
  Run(conn.get(), R"(
    CREATE MINING MODEL [Loyalty Model] (
      [Customer ID] LONG KEY,
      [Gender] TEXT DISCRETE,
      [Age] DOUBLE DISCRETIZED(EQUAL_RANGES, 5),
      [Income] DOUBLE NORMAL CONTINUOUS,
      [Customer Loyalty] LONG DISCRETE PREDICT,
      [Product Purchases] TABLE(
        [Product Name] TEXT KEY,
        [Product Type] TEXT DISCRETE RELATED TO [Product Name]
      )
    ) USING Naive_Bayes(ALPHA = 1.0)
  )");
  Run(conn.get(), InsertFrom("Customers", "Sales"));
  auto models = conn->GetSchemaRowset(dmx::SchemaRowsetKind::kMiningModels);
  std::cout << "  trained on " << models->Get(0, "CASE_COUNT")->ToString()
            << " cases\n";

  std::cout << "== 2. Refresh with a new month of data ==\n";
  dmx::datagen::WarehouseConfig fresh;
  fresh.num_customers = 500;
  fresh.seed = 99;
  fresh.first_customer_id = 500000;
  fresh.customers_table = "NewCustomers";
  fresh.sales_table = "NewSales";
  fresh.cars_table = "NewCars";
  Check(dmx::datagen::PopulateWarehouse(dev.database(), fresh));
  Run(conn.get(), InsertFrom("NewCustomers", "NewSales"));
  models = conn->GetSchemaRowset(dmx::SchemaRowsetKind::kMiningModels);
  std::cout << "  after refresh: " << models->Get(0, "CASE_COUNT")->ToString()
            << " cases (no retraining: Naive_Bayes is incremental)\n";

  std::cout << "== 3. Persist to PMML-style XML ==\n";
  const std::string path = "/tmp/opendmx_loyalty_model.xml";
  {
    auto model = dev.models()->GetModel("Loyalty Model");
    Check(model.status());
    Check(dmx::SaveModelToFile(**model, path));
    auto serialized = dmx::SerializeModel(**model);
    std::cout << "  saved " << serialized->size() << " bytes to " << path
              << "\n";
  }

  std::cout << "== 4. Deploy: load into a fresh provider and predict ==\n";
  dmx::Provider production;
  {
    auto loaded = dmx::LoadModelFromFile(path, *production.services());
    Check(loaded.status());
    Check(production.models()->AdoptModel(std::move(*loaded)));
  }
  // The production server has its own (new) customers.
  dmx::datagen::WarehouseConfig prod_data;
  prod_data.num_customers = 10;
  prod_data.seed = 123;
  Check(dmx::datagen::PopulateWarehouse(production.database(), prod_data));
  auto prod_conn = production.Connect();
  dmx::Rowset predictions = Run(prod_conn.get(), R"(
    SELECT t.[Customer ID], Predict([Customer Loyalty]) AS [Loyalty],
           PredictProbability([Customer Loyalty]) AS [P]
    FROM [Loyalty Model]
    NATURAL PREDICTION JOIN
      (SHAPE {SELECT [Customer ID], [Gender], [Age], [Income] FROM Customers
              ORDER BY [Customer ID]}
       APPEND ({SELECT [CustID], [Product Name], [Product Type] FROM Sales
                ORDER BY [CustID]}
               RELATE [Customer ID] TO [CustID]) AS [Product Purchases]) AS t
  )");
  std::cout << predictions.ToString() << "\n";

  std::cout << "== 5. Provider self-description (schema rowsets) ==\n";
  auto services =
      prod_conn->GetSchemaRowset(dmx::SchemaRowsetKind::kMiningServices);
  std::cout << "  installed services:\n";
  for (const dmx::Row& row : services->rows()) {
    std::cout << "    " << row[0].ToString()
              << (row[6].bool_value() ? "  [incremental]" : "") << "\n";
  }
  auto columns = prod_conn->GetSchemaRowset(
      dmx::SchemaRowsetKind::kMiningColumns, "Loyalty Model");
  std::cout << "  deployed model columns: " << columns->num_rows() << "\n";
  return 0;
}
